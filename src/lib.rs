//! Umbrella crate for the *"Give MPI Threading a Fair Chance"* (CLUSTER
//! 2019) reproduction.
//!
//! Re-exports the public crates of the workspace so the examples and
//! integration tests have a single dependency root:
//!
//! * [`fairmpi`] — the MPI-like runtime (the paper's proposed design and
//!   every baseline design axis),
//! * [`fairmpi_multirate`] / [`fairmpi_rmamt`] — the paper's two
//!   benchmarks, with native and virtual-time backends,
//! * [`fairmpi_vsim`] — the deterministic virtual-time executor behind the
//!   figure harnesses,
//! * [`fairmpi_spc`] / [`fairmpi_fabric`] / [`fairmpi_matching`] /
//!   [`fairmpi_cri`] / [`fairmpi_progress`] — the substrates.
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-vs-measured record.

pub use fairmpi;
pub use fairmpi_cri;
pub use fairmpi_fabric;
pub use fairmpi_matching;
pub use fairmpi_multirate;
pub use fairmpi_progress;
pub use fairmpi_rmamt;
pub use fairmpi_spc;
pub use fairmpi_vsim;
