//! Conservation laws over the software performance counters: whatever the
//! design, the books must balance after quiescence.

use std::sync::Arc;

use fairmpi::{Counter, DesignConfig, World};

/// Drive random-ish mixed traffic and return the merged snapshot.
fn run_mixed(design: DesignConfig, pairs: u32, msgs: u32) -> fairmpi::SpcSnapshot {
    let world = Arc::new(World::builder().ranks(2).design(design).build());
    let comm = world.comm_world();
    let mut handles = Vec::new();
    for t in 0..pairs {
        let w = Arc::clone(&world);
        handles.push(std::thread::spawn(move || {
            let p = w.proc(0);
            for i in 0..msgs {
                // Mix of eager sizes, including the envelope-only case.
                let len = (i as usize * 37) % 600;
                p.send(&vec![t as u8; len], 1, t as i32, comm).unwrap();
            }
        }));
        let w = Arc::clone(&world);
        handles.push(std::thread::spawn(move || {
            let p = w.proc(1);
            for _ in 0..msgs {
                p.recv(600, 0, t as i32, comm).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    world.spc_merged()
}

#[test]
fn sent_equals_received_at_quiescence() {
    for design in [
        DesignConfig::default(),
        DesignConfig::builder().proposed(4).build().unwrap(),
    ] {
        let spc = run_mixed(design, 3, 40);
        assert_eq!(spc[Counter::MessagesSent], 3 * 40);
        assert_eq!(
            spc[Counter::MessagesSent],
            spc[Counter::MessagesReceived],
            "conservation violated under {design:?}"
        );
    }
}

#[test]
fn received_splits_into_expected_plus_unexpected_matches() {
    let spc = run_mixed(DesignConfig::builder().proposed(2).build().unwrap(), 2, 50);
    // Every received message was matched exactly once, either against a
    // posted receive (expected) or later from the unexpected queue.
    let received = spc[Counter::MessagesReceived];
    let expected = spc[Counter::ExpectedMessages];
    let unexpected = spc[Counter::UnexpectedMessages];
    assert_eq!(received, 2 * 50);
    assert!(expected <= received);
    // Unexpected messages are *admissions*, each later consumed by a post:
    // expected + (matches made at post time == unexpected admitted) is the
    // total; equivalently expected + unexpected >= received.
    assert!(
        expected + unexpected >= received,
        "expected {expected} + unexpected {unexpected} < received {received}"
    );
}

#[test]
fn out_of_sequence_never_exceeds_arrivals_and_drains_fully() {
    let spc = run_mixed(DesignConfig::builder().proposed(8).build().unwrap(), 8, 30);
    let received = spc[Counter::MessagesReceived];
    assert_eq!(received, 240);
    assert!(spc[Counter::OutOfSequenceMessages] <= received);
    // Everything buffered was eventually replayed: no message is lost, so
    // the high-water mark is bounded by what was in flight.
    assert!(spc[Counter::MaxOutOfSequenceBuffered] <= received);
}

#[test]
fn byte_accounting_includes_envelopes() {
    let world = World::builder().ranks(2).build();
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let t = std::thread::spawn(move || {
        p0.send(&[9u8; 100], 1, 0, comm).unwrap();
        p0.send(&[], 1, 0, comm).unwrap();
    });
    p1.recv(128, 0, 0, comm).unwrap();
    p1.recv(128, 0, 0, comm).unwrap();
    t.join().unwrap();
    let s0 = world.proc(0).spc_snapshot();
    let s1 = world.proc(1).spc_snapshot();
    let env = world.fabric_config().envelope_bytes as u64;
    assert_eq!(s0[Counter::BytesSent], 100 + 2 * env, "wire bytes");
    assert_eq!(s1[Counter::BytesReceived], 100, "payload bytes only");
}

#[test]
fn progress_and_lock_counters_are_active() {
    let spc = run_mixed(DesignConfig::builder().proposed(2).build().unwrap(), 2, 20);
    assert!(spc[Counter::ProgressCalls] > 0);
    assert!(spc[Counter::InstanceLockAcquisitions] > 0);
    assert!(spc[Counter::CompletionsDrained] > 0);
    // Dedicated assignment was in effect: the TLS cache served repeats.
    assert!(spc[Counter::CriDedicatedHits] > 0);
}

#[test]
fn reset_clears_between_phases() {
    let world = World::builder().ranks(2).build();
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let t = std::thread::spawn(move || p0.send(b"warmup", 1, 0, comm).unwrap());
    p1.recv(16, 0, 0, comm).unwrap();
    t.join().unwrap();
    assert!(world.spc_merged()[Counter::MessagesSent] > 0);
    world.spc_reset();
    let clean = world.spc_merged();
    for c in fairmpi::Counter::ALL {
        assert_eq!(clean[c], 0, "{} not reset", c.name());
    }
}

#[test]
fn delta_snapshots_isolate_a_measured_phase() {
    let world = World::builder().ranks(2).build();
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    // Warmup phase.
    let t = std::thread::spawn({
        let p0 = p0.clone();
        move || p0.send(b"w", 1, 0, comm).unwrap()
    });
    p1.recv(8, 0, 0, comm).unwrap();
    t.join().unwrap();
    let before = world.proc(0).spc_snapshot();
    // Measured phase: 5 sends.
    let t = std::thread::spawn({
        let p0 = p0.clone();
        move || {
            for _ in 0..5 {
                p0.send(b"m", 1, 0, comm).unwrap();
            }
        }
    });
    for _ in 0..5 {
        p1.recv(8, 0, 0, comm).unwrap();
    }
    t.join().unwrap();
    let delta = world.proc(0).spc_snapshot().delta_since(&before);
    assert_eq!(delta[Counter::MessagesSent], 5, "warmup excluded");
}
