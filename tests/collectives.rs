//! Integration tests for the collective operations and typed-data helpers.

use std::sync::Arc;

use fairmpi::datatypes::{decode_slice, encode_slice};
use fairmpi::{ReduceOp, World};

fn spawn_all<R: Send + 'static>(
    world: &Arc<World>,
    f: impl Fn(fairmpi::Proc, u32) -> R + Send + Sync + Copy + 'static,
) -> Vec<R> {
    let n = world.num_ranks() as u32;
    (0..n)
        .map(|r| {
            let world = Arc::clone(world);
            std::thread::spawn(move || f(world.proc(r), r))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect()
}

#[test]
fn scatter_distributes_per_rank_chunks() {
    let world = Arc::new(World::builder().ranks(4).build());
    let comm = world.comm_world();
    let results = spawn_all(&world, move |p, r| {
        let chunks: Option<Vec<Vec<u8>>> =
            (r == 1).then(|| (0..4u8).map(|i| vec![i; (i as usize + 1) * 3]).collect());
        p.scatter(chunks.as_deref(), 1, comm).unwrap()
    });
    for (r, chunk) in results.iter().enumerate() {
        assert_eq!(chunk, &vec![r as u8; (r + 1) * 3], "rank {r}");
    }
}

#[test]
fn allgather_collects_ragged_contributions() {
    let world = Arc::new(World::builder().ranks(3).build());
    let comm = world.comm_world();
    let results = spawn_all(&world, move |p, r| {
        let mine = vec![r as u8 + 10; r as usize + 1];
        p.allgather(&mine, comm).unwrap()
    });
    for gathered in results {
        assert_eq!(gathered.len(), 3);
        for (r, part) in gathered.iter().enumerate() {
            assert_eq!(part, &vec![r as u8 + 10; r + 1]);
        }
    }
}

#[test]
fn alltoall_full_exchange() {
    let world = Arc::new(World::builder().ranks(3).build());
    let comm = world.comm_world();
    let results = spawn_all(&world, move |p, r| {
        // Rank r sends the byte pattern [r, dst] to every dst.
        let sends: Vec<Vec<u8>> = (0..3u8).map(|dst| vec![r as u8, dst]).collect();
        p.alltoall(&sends, comm).unwrap()
    });
    for (me, received) in results.iter().enumerate() {
        for (src, payload) in received.iter().enumerate() {
            assert_eq!(payload, &vec![src as u8, me as u8], "rank {me} from {src}");
        }
    }
}

#[test]
fn reduce_elems_all_ops() {
    let world = Arc::new(World::builder().ranks(3).build());
    let comm = world.comm_world();
    for (op, expect) in [
        (ReduceOp::Sum, vec![10 + 20, 7 + 17 + 27]),
        (ReduceOp::Max, vec![20, 27]),
        (ReduceOp::Min, vec![0, 7]),
        (ReduceOp::BitOr, vec![10 | 20, 7 | 17 | 27]),
        (ReduceOp::BitAnd, vec![0, 7 & 17 & 27]), // rank 0 contributes 0
    ] {
        let results = spawn_all(&world, move |p, r| {
            let vals = [r as u64 * 10, r as u64 * 10 + 7];
            p.reduce_elems(&vals, op, 0, comm).unwrap()
        });
        assert_eq!(results[0], expect, "{op:?}");
        assert!(results[1].is_empty() && results[2].is_empty());
    }
}

#[test]
fn repeated_collectives_on_one_communicator() {
    // Back-to-back collectives must not cross-talk (tag/seq discipline).
    let world = Arc::new(World::builder().ranks(3).build());
    let comm = world.comm_world();
    spawn_all(&world, move |p, r| {
        for round in 0..10u64 {
            let sum = p.allreduce_sum(round + r as u64, comm).unwrap();
            assert_eq!(sum, (3 * round) + 1 + 2);
            p.barrier(comm).unwrap();
        }
    });
}

#[test]
fn collectives_coexist_with_wildcard_user_traffic() {
    // A user ANY_TAG receive posted *before* a barrier must not swallow
    // barrier control messages (reserved negative tags).
    let world = Arc::new(World::builder().ranks(2).build());
    let comm = world.comm_world();
    let w0 = Arc::clone(&world);
    let t0 = std::thread::spawn(move || {
        let p = w0.proc(0);
        // Posted early; matched only by the real user message at the end.
        let req = p
            .irecv(16, fairmpi::ANY_SOURCE, fairmpi::ANY_TAG, comm)
            .unwrap();
        p.barrier(comm).unwrap();
        let msg = p.wait(&req).unwrap();
        assert_eq!(msg.data, b"user");
        assert_eq!(msg.tag, 5);
    });
    let p1 = world.proc(1);
    p1.barrier(comm).unwrap();
    p1.send(b"user", 0, 5, comm).unwrap();
    t0.join().unwrap();
}

#[test]
fn typed_helpers_cover_all_widths() {
    // Pure encode/decode across every impl'd datatype.
    assert_eq!(
        decode_slice::<i8>(&encode_slice(&[-1i8, 2])).unwrap(),
        [-1, 2]
    );
    assert_eq!(
        decode_slice::<u16>(&encode_slice(&[u16::MAX])).unwrap(),
        [u16::MAX]
    );
    assert_eq!(
        decode_slice::<i32>(&encode_slice(&[i32::MIN])).unwrap(),
        [i32::MIN]
    );
    assert_eq!(
        decode_slice::<f32>(&encode_slice(&[1.5f32])).unwrap(),
        [1.5]
    );
    assert_eq!(
        decode_slice::<i64>(&encode_slice(&[i64::MIN, i64::MAX])).unwrap(),
        [i64::MIN, i64::MAX]
    );
}
