//! Integration tests for the virtual-time experiment pipeline: the shape
//! invariants the figures rely on, at reduced scale so `cargo test` stays
//! fast.

use fairmpi_spc::Counter;
use fairmpi_vsim::workload::multirate::SimMatchLayout;
use fairmpi_vsim::{
    Machine, MachinePreset, MultirateSim, RmamtSim, SimAssignment, SimDesign, SimProgress,
};

fn multirate(pairs: usize, design: SimDesign) -> fairmpi_vsim::MultirateResult {
    MultirateSim {
        machine: Machine::preset(MachinePreset::Alembert),
        pairs,
        window: 32,
        iterations: 6,
        design,
        seed: 0xFEED,
        cost: None,
    }
    .run()
}

#[test]
fn fig3a_shape_more_instances_help_serial_progress() {
    let mut one = SimDesign::baseline();
    one.assignment = SimAssignment::Dedicated;
    let mut twenty = one;
    twenty.instances = 20;
    let r1 = multirate(16, one);
    let r20 = multirate(16, twenty);
    assert!(
        r20.msg_rate_per_s > 1.4 * r1.msg_rate_per_s,
        "20 CRIs {:.0}/s must clearly beat 1 CRI {:.0}/s",
        r20.msg_rate_per_s,
        r1.msg_rate_per_s
    );
}

#[test]
fn fig3b_shape_concurrent_progress_does_not_help_alone() {
    let mut serial = SimDesign::baseline();
    serial.instances = 20;
    serial.assignment = SimAssignment::Dedicated;
    let mut conc = serial;
    conc.progress = SimProgress::Concurrent;
    let rs = multirate(16, serial);
    let rc = multirate(16, conc);
    assert!(
        rc.msg_rate_per_s <= 1.15 * rs.msg_rate_per_s,
        "concurrent progress {:.0}/s must not beat serial {:.0}/s while \
         matching stays serial",
        rc.msg_rate_per_s,
        rs.msg_rate_per_s
    );
    // And it costs more match time (Table II).
    assert!(rc.spc.match_time_ms() > rs.spc.match_time_ms());
}

#[test]
fn fig3c_shape_concurrent_matching_scales() {
    let mut star = SimDesign::baseline();
    star.instances = 20;
    star.assignment = SimAssignment::Dedicated;
    star.progress = SimProgress::Concurrent;
    star.matching = SimMatchLayout::CommPerPair;
    let r1 = multirate(1, star);
    let r16 = multirate(16, star);
    assert!(
        r16.msg_rate_per_s > 2.2 * r1.msg_rate_per_s,
        "per-pair matching must scale: 1 pair {:.0}/s, 16 pairs {:.0}/s",
        r1.msg_rate_per_s,
        r16.msg_rate_per_s
    );
    // Out-of-sequence all but vanishes (Table II right columns).
    assert!(r16.spc.out_of_sequence_fraction() < 0.02);
}

#[test]
fn fig4_shape_overtaking_lifts_the_ordered_serial_rate() {
    let mut ordered = SimDesign::baseline();
    ordered.instances = 20;
    ordered.assignment = SimAssignment::Dedicated;
    let mut overtaking = ordered;
    overtaking.allow_overtaking = true;
    overtaking.any_tag = true;
    let ro = multirate(16, ordered);
    let rv = multirate(16, overtaking);
    assert!(
        rv.msg_rate_per_s >= 0.9 * ro.msg_rate_per_s,
        "minimal matching cost {:.0}/s must not fall below ordered {:.0}/s",
        rv.msg_rate_per_s,
        ro.msg_rate_per_s
    );
    assert_eq!(rv.spc[Counter::OutOfSequenceMessages], 0);
}

#[test]
fn fig5_shape_process_mode_dwarfs_big_lock_threads() {
    let process = multirate(16, SimDesign::process_mode());
    let mut big = SimDesign::baseline();
    big.big_lock = true;
    let big = multirate(16, big);
    assert!(
        process.msg_rate_per_s > 5.0 * big.msg_rate_per_s,
        "process {:.0}/s vs big-lock {:.0}/s",
        process.msg_rate_per_s,
        big.msg_rate_per_s
    );
}

#[test]
fn table2_shape_oos_fraction_is_high_when_sharing_a_comm() {
    let mut d = SimDesign::baseline();
    d.instances = 10;
    d.assignment = SimAssignment::Dedicated;
    let r = multirate(16, d);
    assert!(
        r.spc.out_of_sequence_fraction() > 0.5,
        "16 threads on one communicator must mostly overtake each other \
         (got {:.1}%)",
        r.spc.out_of_sequence_fraction() * 100.0
    );
}

#[test]
fn fig6_shape_holds_at_reduced_scale() {
    let run = |threads: usize, instances: usize, assignment: SimAssignment| {
        RmamtSim {
            machine: Machine::preset(MachinePreset::TrinititeHaswell),
            threads,
            msg_size: 128,
            ops_per_thread: 150,
            instances,
            assignment,
            progress: SimProgress::Serial,
            seed: 3,
        }
        .run()
    };
    let ded1 = run(1, 32, SimAssignment::Dedicated);
    let ded16 = run(16, 32, SimAssignment::Dedicated);
    let rr16 = run(16, 32, SimAssignment::RoundRobin);
    let single16 = run(16, 1, SimAssignment::Dedicated);
    assert!(
        ded16.msg_rate_per_s > 6.0 * ded1.msg_rate_per_s,
        "dedicated scales"
    );
    assert!(
        ded16.msg_rate_per_s > rr16.msg_rate_per_s,
        "dedicated beats RR"
    );
    assert!(
        single16.msg_rate_per_s < 0.35 * ded16.msg_rate_per_s,
        "single instance collapses: {:.0} vs {:.0}",
        single16.msg_rate_per_s,
        ded16.msg_rate_per_s
    );
}

#[test]
fn fig7_shape_knl_is_slower_per_thread_but_still_scales() {
    let run = |machine: MachinePreset, threads: usize| {
        let m = Machine::preset(machine);
        let inst = m.default_rma_instances;
        RmamtSim {
            machine: m,
            threads,
            msg_size: 128,
            ops_per_thread: 150,
            instances: inst,
            assignment: SimAssignment::Dedicated,
            progress: SimProgress::Serial,
            seed: 3,
        }
        .run()
    };
    let knl1 = run(MachinePreset::TrinititeKnl, 1);
    let hsw1 = run(MachinePreset::TrinititeHaswell, 1);
    assert!(
        knl1.msg_rate_per_s < 0.6 * hsw1.msg_rate_per_s,
        "KNL single-thread {:.0}/s must trail Haswell {:.0}/s",
        knl1.msg_rate_per_s,
        hsw1.msg_rate_per_s
    );
    let knl64 = run(MachinePreset::TrinititeKnl, 64);
    assert!(
        knl64.msg_rate_per_s > 10.0 * knl1.msg_rate_per_s,
        "64 KNL threads with 72 dedicated instances must scale"
    );
}

#[test]
fn virtual_runs_are_reproducible_across_invocations() {
    let d = SimDesign::baseline();
    let a = multirate(8, d);
    let b = multirate(8, d);
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(
        a.spc[Counter::OutOfSequenceMessages],
        b.spc[Counter::OutOfSequenceMessages]
    );
    assert_eq!(
        a.spc[Counter::MatchTimeNanos],
        b.spc[Counter::MatchTimeNanos]
    );
}

#[test]
fn native_and_virtual_backends_agree_on_semantics() {
    // Same benchmark config through both backends: identical message
    // totals and a complete delivery on each.
    use fairmpi::DesignConfig;
    use fairmpi_multirate::{run_native, run_virtual, Mode, MultirateConfig};
    let cfg = MultirateConfig {
        pairs: 3,
        mode: Mode::Threads,
        window: 16,
        iterations: 3,
        comm_per_pair: true,
        design: DesignConfig::builder().proposed(3).build().unwrap(),
        ..MultirateConfig::default()
    };
    let native = run_native(&cfg);
    let virt = run_virtual(&cfg, &Machine::preset(MachinePreset::Alembert), 1);
    assert_eq!(native.total_messages, virt.total_messages);
    assert_eq!(native.spc[Counter::MessagesReceived], native.total_messages);
    assert_eq!(virt.spc[Counter::MessagesReceived], virt.total_messages);
}
