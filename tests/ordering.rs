//! Integration + randomized (seeded, deterministic) tests for MPI's
//! ordering guarantees — the semantics the paper's sequence-number
//! machinery exists to provide.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fairmpi::{DesignConfig, World, ANY_TAG};

/// The non-overtaking rule: messages from one thread on one (comm, tag)
/// stream arrive in send order, whatever the design.
#[test]
fn fifo_holds_across_designs_and_thread_counts() {
    for design in [
        DesignConfig::default(),
        DesignConfig::builder().proposed(4).build().unwrap(),
        DesignConfig::builder().proposed(1).build().unwrap(),
    ] {
        let world = Arc::new(World::builder().ranks(2).design(design).build());
        let comm = world.comm_world();
        let threads = 4;
        let n = 60u32;
        let mut handles = Vec::new();
        for t in 0..threads {
            let sender_world = Arc::clone(&world);
            handles.push(std::thread::spawn(move || {
                let p = sender_world.proc(0);
                for i in 0..n {
                    p.send(&i.to_le_bytes(), 1, t, comm).unwrap();
                }
            }));
            let recv_world = Arc::clone(&world);
            handles.push(std::thread::spawn(move || {
                let p = recv_world.proc(1);
                for i in 0..n {
                    let m = p.recv(8, 0, t, comm).unwrap();
                    assert_eq!(
                        m.data,
                        i.to_le_bytes(),
                        "stream {t} out of order under {design:?}"
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}

/// Wildcard-tag receives see one sender's messages in send order even when
/// tags vary (FIFO is per (source, communicator), not per tag).
#[test]
fn wildcard_tag_preserves_source_order() {
    let world = World::builder().ranks(2).build();
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let tags = [5i32, 3, 9, 3, 7, 5, 1, 9];
    let t = std::thread::spawn(move || {
        for (i, &tag) in tags.iter().enumerate() {
            p0.send(&(i as u32).to_le_bytes(), 1, tag, comm).unwrap();
        }
    });
    for (i, &tag) in tags.iter().enumerate() {
        let m = p1.recv(8, 0, ANY_TAG, comm).unwrap();
        assert_eq!(m.data, (i as u32).to_le_bytes());
        assert_eq!(m.tag, tag);
    }
    t.join().unwrap();
}

/// Any mix of tags and payload lengths round-trips completely and in
/// per-tag-stream order, concurrently.
#[test]
fn random_traffic_round_trips() {
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7AFF);
        let n = rng.gen_range(1usize..60);
        let plan: Vec<(i32, usize)> = (0..n)
            .map(|_| (rng.gen_range(0u64..4) as i32, rng.gen_range(0usize..200)))
            .collect();
        let world = Arc::new(
            World::builder()
                .ranks(2)
                .design(DesignConfig::builder().proposed(2).build().unwrap())
                .build(),
        );
        let comm = world.comm_world();
        let send_plan = plan.clone();
        let world2 = Arc::clone(&world);
        let sender = std::thread::spawn(move || {
            let p = world2.proc(0);
            for (seq, (tag, len)) in send_plan.iter().enumerate() {
                let mut payload = vec![0u8; *len + 4];
                payload[..4].copy_from_slice(&(seq as u32).to_le_bytes());
                p.send(&payload, 1, *tag, comm).unwrap();
            }
        });
        let p1 = world.proc(1);
        // Per-tag expected sequence numbers must increase.
        let mut last_per_tag = [None::<u32>; 4];
        for (tag, len) in &plan {
            let m = p1.recv(len + 4, 0, *tag, comm).unwrap();
            let seq = u32::from_le_bytes(m.data[..4].try_into().unwrap());
            if let Some(prev) = last_per_tag[*tag as usize] {
                assert!(seq > prev, "tag {tag} reordered");
            }
            last_per_tag[*tag as usize] = Some(seq);
            assert_eq!(m.data.len(), len + 4);
        }
        sender.join().unwrap();
    }
}

/// Overtaking communicators may reorder but never lose or duplicate.
#[test]
fn overtaking_is_lossless() {
    for count in [1u32, 9, 64, 149] {
        let world = Arc::new(
            World::builder()
                .ranks(2)
                .design(DesignConfig::builder().proposed(4).build().unwrap())
                .build(),
        );
        let comm = world.new_comm_with(true);
        let world2 = Arc::clone(&world);
        let sender = std::thread::spawn(move || {
            let p = world2.proc(0);
            for i in 0..count {
                p.send(&i.to_le_bytes(), 1, 0, comm).unwrap();
            }
        });
        let p1 = world.proc(1);
        let mut got: Vec<u32> = (0..count)
            .map(|_| {
                let m = p1.recv(8, 0, 0, comm).unwrap();
                u32::from_le_bytes(m.data.try_into().unwrap())
            })
            .collect();
        sender.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..count).collect::<Vec<_>>());
    }
}

/// Sequence validation is per destination: traffic to a third rank never
/// stalls the stream to the second.
#[test]
fn per_destination_sequencing_is_independent() {
    let world = Arc::new(World::builder().ranks(3).build());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    // Interleave sends to ranks 1 and 2.
    let t = {
        let p0 = p0.clone();
        std::thread::spawn(move || {
            for i in 0..20u32 {
                p0.send(&i.to_le_bytes(), 1 + (i % 2), 0, comm).unwrap();
            }
        })
    };
    let world1 = Arc::clone(&world);
    let r1 = std::thread::spawn(move || {
        let p = world1.proc(1);
        for i in (0..20u32).step_by(2) {
            assert_eq!(p.recv(8, 0, 0, comm).unwrap().data, i.to_le_bytes());
        }
    });
    let p2 = world.proc(2);
    for i in (1..20u32).step_by(2) {
        assert_eq!(p2.recv(8, 0, 0, comm).unwrap().data, i.to_le_bytes());
    }
    t.join().unwrap();
    r1.join().unwrap();
}
