//! Integration: control variables (the paper §III-B `MPI_T`/MCA surface)
//! driving real world construction end to end.

use fairmpi::tuning::Cvars;
use fairmpi::{Assignment, Counter, ProgressMode, World};

#[test]
fn cvars_build_the_proposed_design_end_to_end() {
    let design = Cvars::new()
        .set("num_instances", "4")
        .unwrap()
        .set("assignment", "dedicated")
        .unwrap()
        .set("progress", "concurrent")
        .unwrap()
        .resolve()
        .unwrap();
    let world = World::builder().ranks(2).design(design).build();
    assert_eq!(world.design().num_instances, 4);
    assert_eq!(world.design().assignment, Assignment::Dedicated);
    assert_eq!(world.design().progress, ProgressMode::Concurrent);

    // And the configured world actually communicates.
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let t = std::thread::spawn(move || p0.send(b"tuned", 1, 0, comm).unwrap());
    assert_eq!(p1.recv(16, 0, 0, comm).unwrap().data, b"tuned");
    t.join().unwrap();
}

#[test]
fn overtaking_cvar_affects_new_communicators() {
    let design = Cvars::new()
        .set("allow_overtaking", "true")
        .unwrap()
        .resolve()
        .unwrap();
    let world = World::builder().ranks(2).design(design).build();
    let comm = world.new_comm(); // inherits the design default
    let p0 = world.proc(0);
    assert!(p0.comm_allows_overtaking(comm).unwrap());
    let strict = world.new_comm_with(false);
    assert!(!p0.comm_allows_overtaking(strict).unwrap());

    // Messages on the overtaking communicator never count out-of-sequence.
    let p1 = world.proc(1);
    let t = std::thread::spawn(move || {
        for i in 0..20u32 {
            p0.send(&i.to_le_bytes(), 1, 0, comm).unwrap();
        }
    });
    for _ in 0..20 {
        p1.recv(8, 0, 0, comm).unwrap();
    }
    t.join().unwrap();
    assert_eq!(
        world.proc(1).spc_snapshot()[Counter::OutOfSequenceMessages],
        0
    );
}

#[test]
fn big_lock_cvar_is_usable() {
    let design = Cvars::new()
        .set("lock_model", "global_critical_section")
        .unwrap()
        .set("matching", "global")
        .unwrap()
        .resolve()
        .unwrap();
    let world = World::builder().ranks(2).design(design).build();
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let t = std::thread::spawn(move || {
        for i in 0..10u8 {
            p0.send(&[i], 1, 0, comm).unwrap();
        }
    });
    for i in 0..10u8 {
        assert_eq!(p1.recv(4, 0, 0, comm).unwrap().data, vec![i]);
    }
    t.join().unwrap();
}
