//! Failure injection and edge cases: orphaned dedicated instances, thread
//! churn, cancellation races, truncation, zero-sized everything, and
//! resource exhaustion behaviors the paper's design must tolerate.

use std::sync::Arc;

use fairmpi::{Counter, DesignConfig, MpiError, World};

/// Paper §III-E: "the user might destroy the thread and create orphaned
/// CRIs that cannot be reused by other threads" — other threads' fallback
/// sweeps must still progress the orphan's instance.
#[test]
fn orphaned_dedicated_instance_is_progressed_by_survivors() {
    let world = Arc::new(
        World::builder()
            .ranks(2)
            .design(DesignConfig::builder().proposed(3).build().unwrap())
            .build(),
    );
    let comm = world.comm_world();

    // A short-lived receiver thread binds instance 0 on rank 1, posts a
    // receive it never completes, and exits.
    {
        let world = Arc::clone(&world);
        std::thread::spawn(move || {
            let p = world.proc(1);
            // Bind a dedicated instance by making a call that acquires one.
            let _ = p.irecv(8, 0, 77, comm).unwrap();
            // The thread dies without waiting; its CRI is now an orphan.
        })
        .join()
        .unwrap();
    }

    // The sender's message lands in an instance no living receiver thread
    // is bound to; a *different* rank-1 thread must still complete it.
    let p0 = world.proc(0);
    let t = std::thread::spawn(move || p0.send(b"orphan", 1, 77, comm).unwrap());
    let p1 = world.proc(1);
    // Wait on the request we can't see — instead receive a second message
    // posted by this thread and verify the first matched too.
    let done = p1.send(b"", 0, 1, comm); // trivial traffic to drive progress
    assert!(done.is_ok());
    t.join().unwrap();
    // Drive progress until the orphan message is matched.
    let mut spins = 0;
    while world.proc(1).spc().get(Counter::MessagesReceived) < 1 {
        world.proc(1).progress();
        spins += 1;
        assert!(spins < 1_000_000, "orphaned instance never progressed");
    }
}

#[test]
fn thread_churn_with_dedicated_assignment() {
    // Waves of short-lived threads: dedicated TLS bindings are dropped and
    // re-acquired; traffic must keep flowing.
    let world = Arc::new(
        World::builder()
            .ranks(2)
            .design(DesignConfig::builder().proposed(2).build().unwrap())
            .build(),
    );
    let comm = world.comm_world();
    for wave in 0..5u32 {
        let mut handles = Vec::new();
        for t in 0..3u32 {
            let sender_world = Arc::clone(&world);
            handles.push(std::thread::spawn(move || {
                let p = sender_world.proc(0);
                p.send(&wave.to_le_bytes(), 1, t as i32, comm).unwrap();
                p.forget_dedicated_instance();
            }));
            let recv_world = Arc::clone(&world);
            handles.push(std::thread::spawn(move || {
                let p = recv_world.proc(1);
                let m = p.recv(8, 0, t as i32, comm).unwrap();
                assert_eq!(m.data, wave.to_le_bytes());
                p.forget_dedicated_instance();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}

#[test]
fn cancel_then_late_message_goes_unexpected() {
    let world = World::builder().ranks(2).build();
    let comm = world.comm_world();
    let p1 = world.proc(1);
    let req = p1.irecv(8, 0, 3, comm).unwrap();
    assert!(p1.cancel_recv(&req, comm).unwrap());
    assert_eq!(p1.wait(&req).unwrap_err(), MpiError::Cancelled);
    // The message sent afterwards must not vanish into the cancelled
    // request: a fresh receive gets it.
    let p0 = world.proc(0);
    let t = std::thread::spawn(move || p0.send(b"late", 1, 3, comm).unwrap());
    let m = p1.recv(8, 0, 3, comm).unwrap();
    assert_eq!(m.data, b"late");
    t.join().unwrap();
}

#[test]
fn cancel_after_match_reports_failure() {
    let world = World::builder().ranks(2).build();
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let req = p1.irecv(8, 0, 0, comm).unwrap();
    let t = std::thread::spawn(move || p0.send(b"x", 1, 0, comm).unwrap());
    // Drain until the message has matched the posted receive.
    while p1.spc_snapshot()[Counter::MessagesReceived] < 1 {
        p1.progress();
    }
    assert!(!p1.cancel_recv(&req, comm).unwrap(), "too late to cancel");
    assert_eq!(p1.wait(&req).unwrap().data, b"x");
    t.join().unwrap();
}

#[test]
fn truncation_does_not_poison_the_stream() {
    let world = World::builder().ranks(2).build();
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let t = std::thread::spawn(move || {
        p0.send(&[1u8; 64], 1, 0, comm).unwrap();
        p0.send(&[2u8; 8], 1, 0, comm).unwrap();
    });
    assert!(matches!(
        p1.recv(16, 0, 0, comm).unwrap_err(),
        MpiError::Truncated {
            message_len: 64,
            ..
        }
    ));
    // The next message on the same stream still arrives.
    let m = p1.recv(16, 0, 0, comm).unwrap();
    assert_eq!(m.data, [2u8; 8]);
    t.join().unwrap();
}

#[test]
fn zero_byte_messages_and_zero_capacity_receives() {
    let world = World::builder().ranks(2).build();
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let t = std::thread::spawn(move || {
        for _ in 0..10 {
            p0.send(&[], 1, 0, comm).unwrap();
        }
    });
    for _ in 0..10 {
        let m = p1.recv(0, 0, 0, comm).unwrap();
        assert!(m.data.is_empty());
    }
    t.join().unwrap();
}

#[test]
fn zero_sized_window_rejects_all_access() {
    let world = World::builder().ranks(2).build();
    let id = world.allocate_window(0);
    let w = world.proc(0).window(id).unwrap();
    assert!(w.is_empty());
    assert!(w.put(1, 0, &[1]).is_err());
    assert!(w.get(1, 0, 1).is_err());
    // Zero-length access at offset 0 is legal (a no-op).
    assert!(w.put(1, 0, &[]).is_ok());
    w.flush(1).unwrap();
}

#[test]
fn single_rank_world_self_messaging() {
    let world = World::builder().ranks(1).build();
    let comm = world.comm_world();
    let p = world.proc(0);
    let req = p.irecv(16, 0, 0, comm).unwrap();
    p.send(b"self", 0, 0, comm).unwrap();
    assert_eq!(p.wait(&req).unwrap().data, b"self");
    p.barrier(comm).unwrap();
}

#[test]
fn instance_cap_smaller_than_thread_count_still_works() {
    // Aries-style cap: 2 contexts, 6 threads. Sharing must stay correct.
    let mut fabric = fairmpi::FabricConfig::test_default();
    fabric.max_contexts = Some(2);
    let world = Arc::new(
        World::builder()
            .ranks(2)
            .fabric(fabric)
            .design(DesignConfig::builder().proposed(16).build().unwrap())
            .build(),
    );
    let comm = world.comm_world();
    let handles: Vec<_> = (0..6u32)
        .map(|t| {
            let world = Arc::clone(&world);
            std::thread::spawn(move || {
                let p0 = world.proc(0);
                let p1 = world.proc(1);
                let rreq = p1.irecv(8, 0, t as i32, comm).unwrap();
                p0.send(&t.to_le_bytes(), 1, t as i32, comm).unwrap();
                assert_eq!(p1.wait(&rreq).unwrap().data, t.to_le_bytes());
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn double_wait_is_an_error_not_a_hang() {
    let world = World::builder().ranks(2).build();
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let req = p0.isend(b"x", 1, 0, comm).unwrap();
    // Let rank 1 receive.
    let p1 = world.proc(1);
    let t = std::thread::spawn(move || p1.recv(8, 0, 0, comm).unwrap());
    p0.wait(&req).unwrap();
    assert!(matches!(
        p0.wait(&req).unwrap_err(),
        MpiError::InvalidRequest(_)
    ));
    t.join().unwrap();
}
