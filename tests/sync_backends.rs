//! Backend identity: the `fairmpi-sync` native and traced backends must be
//! observationally equivalent.
//!
//! The traced backend (built with `--features trace`) routes every lock
//! acquisition through fairmpi-trace's contention profiler; the native
//! backend compiles down to bare `parking_lot` primitives. Neither may
//! change what the runtime *does* — only how it is observed. This test
//! drives the Fig. 5 flagship design point (the proposed design: dedicated
//! CRIs with concurrent progress and matching) with a native-thread stress
//! workload and asserts the deterministic subset of the SPC snapshot
//! against exact expected values.
//!
//! ci.sh runs this test twice — once in the default (native) build and
//! once with `--features trace` — so the same constants are checked under
//! both backends: any divergence in message/byte accounting between them
//! fails one of the two runs.

use std::sync::Arc;

use fairmpi::{Counter, DesignConfig, SpcSnapshot, World};

const PAIRS: u32 = 4;
const MSGS: u32 = 50;

fn payload_len(i: u32) -> usize {
    (i as usize * 37) % 600
}

/// Drive the flagship point and return the merged snapshot.
fn run_flagship() -> SpcSnapshot {
    let design = DesignConfig::builder().proposed(4).build().unwrap();
    let world = Arc::new(World::builder().ranks(2).design(design).build());
    let comm = world.comm_world();
    let mut handles = Vec::new();
    for t in 0..PAIRS {
        let w = Arc::clone(&world);
        handles.push(std::thread::spawn(move || {
            let p = w.proc(0);
            for i in 0..MSGS {
                p.send(&vec![t as u8; payload_len(i)], 1, t as i32, comm)
                    .unwrap();
            }
        }));
        let w = Arc::clone(&world);
        handles.push(std::thread::spawn(move || {
            let p = w.proc(1);
            for _ in 0..MSGS {
                p.recv(600, 0, t as i32, comm).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    world.spc_merged()
}

/// The deterministic counter subset: values fixed by the workload alone,
/// independent of thread interleaving (unlike, say, lock acquisition or
/// out-of-sequence counts, which legitimately vary run to run).
fn deterministic_subset(spc: &SpcSnapshot) -> Vec<(Counter, u64)> {
    [
        Counter::MessagesSent,
        Counter::MessagesReceived,
        Counter::BytesSent,
        Counter::BytesReceived,
    ]
    .into_iter()
    .map(|c| (c, spc[c]))
    .collect()
}

#[test]
fn flagship_point_spc_subset_matches_exact_expectations() {
    let spc = run_flagship();
    let total_msgs = (PAIRS * MSGS) as u64;
    let payload: u64 = (0..MSGS).map(|i| payload_len(i) as u64).sum::<u64>() * PAIRS as u64;
    // The envelope size comes from the fabric config, identical in both
    // backends (it is data, not code).
    let env = World::builder()
        .ranks(2)
        .build()
        .fabric_config()
        .envelope_bytes as u64;
    let expected = vec![
        (Counter::MessagesSent, total_msgs),
        (Counter::MessagesReceived, total_msgs),
        (Counter::BytesSent, payload + total_msgs * env),
        (Counter::BytesReceived, payload),
    ];
    assert_eq!(
        deterministic_subset(&spc),
        expected,
        "sync backend changed the runtime's observable accounting \
         (trace feature: {})",
        cfg!(feature = "trace"),
    );
}

#[test]
fn flagship_point_subset_is_stable_across_runs() {
    // Run-to-run determinism of the subset within one backend: a
    // prerequisite for the cross-backend comparison above to mean anything.
    let a = deterministic_subset(&run_flagship());
    let b = deterministic_subset(&run_flagship());
    assert_eq!(a, b, "deterministic subset varied between identical runs");
}
