//! Integration: the software-offload design point (dedicated communication
//! workers fed by lock-free command queues) against the direct path,
//! through the full native stack with real OS threads.

use std::sync::{Arc, Mutex};

use fairmpi::{Counter, DesignConfig, FaultPlan, World};

/// Builds that touch the `FAIRMPI_OFFLOAD_*` process environment serialize
/// here so a concurrently running test never builds its world under a
/// surprise queue capacity.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Run `producers` sender threads on rank 0 (each a private tag stream)
/// against one receiver on rank 1; return the payloads per stream in
/// arrival order.
fn producer_streams(design: DesignConfig, producers: u32, per_producer: u32) -> Vec<Vec<u32>> {
    let world = Arc::new(World::builder().ranks(2).design(design).build());
    let comm = world.comm_world();
    let senders: Vec<_> = (0..producers)
        .map(|t| {
            let world = Arc::clone(&world);
            std::thread::spawn(move || {
                let p0 = world.proc(0);
                for i in 0..per_producer {
                    p0.send(&i.to_le_bytes(), 1, t as i32, comm).unwrap();
                }
            })
        })
        .collect();
    let p1 = world.proc(1);
    let streams = (0..producers)
        .map(|t| {
            (0..per_producer)
                .map(|_| {
                    let m = p1.recv(8, 0, t as i32, comm).unwrap();
                    u32::from_le_bytes(m.data.clone().try_into().unwrap())
                })
                .collect()
        })
        .collect();
    for s in senders {
        s.join().unwrap();
    }
    streams
}

/// Routing the same multithreaded workload through the command queues must
/// be invisible to the application: identical message sets, and each
/// (source, tag) stream still arrives in posting order (MPI non-overtaking)
/// even though several workers inject and match concurrently.
#[test]
fn offload_matches_the_direct_path_and_preserves_ordering() {
    let _env = ENV_LOCK.lock().unwrap();
    let direct = producer_streams(DesignConfig::builder().proposed(2).build().unwrap(), 4, 50);
    let offload = producer_streams(DesignConfig::builder().offload(2).build().unwrap(), 4, 50);
    for (t, stream) in offload.iter().enumerate() {
        assert_eq!(
            stream.len(),
            50,
            "offload stream {t} lost or duplicated messages"
        );
        // Non-overtaking: a blocking-send producer's stream arrives 0..N
        // in order, so the whole sequence is fully determined.
        let expected: Vec<u32> = (0..50).collect();
        assert_eq!(stream, &expected, "offload stream {t} reordered");
    }
    assert_eq!(direct, offload, "offload and direct paths diverged");
}

/// A command queue smaller than the in-flight window forces the default
/// Yield backpressure policy to stall submitters until workers drain slots
/// — every message must still be delivered, and the stalls must show up in
/// the `offload_backpressure_stalls` probe.
#[test]
fn backpressure_with_queue_smaller_than_inflight_window() {
    let _env = ENV_LOCK.lock().unwrap();
    std::env::set_var("FAIRMPI_OFFLOAD_QUEUE_CAPACITY", "4");
    let world = World::builder()
        .ranks(2)
        .design(DesignConfig::builder().offload(1).build().unwrap())
        .build();
    std::env::remove_var("FAIRMPI_OFFLOAD_QUEUE_CAPACITY");
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    const WINDOW: u32 = 64;
    let recvs: Vec<_> = (0..WINDOW)
        .map(|_| p1.irecv(8, 0, 0, comm).unwrap())
        .collect();
    let t = std::thread::spawn(move || {
        // 64 nonblocking sends against 4 queue slots: the submitter must
        // block-and-retry inside isend, never observe a failure.
        let sends: Vec<_> = (0..WINDOW)
            .map(|i| p0.isend(&i.to_le_bytes(), 1, 0, comm).unwrap())
            .collect();
        for s in &sends {
            p0.wait(s).unwrap();
        }
    });
    let msgs = p1.waitall(&recvs).unwrap();
    for (i, m) in msgs.iter().enumerate() {
        assert_eq!(m.data, (i as u32).to_le_bytes());
    }
    t.join().unwrap();
    let spc = world.spc_merged();
    assert_eq!(spc[Counter::MessagesReceived], u64::from(WINDOW));
    assert!(
        spc[Counter::OffloadBackpressureStalls] >= 1,
        "a 4-slot queue under a 64-message burst must stall at least once"
    );
}

/// Dropping the `World` while commands are still queued must drain them —
/// the two-phase shutdown first stops admissions, then lets every worker
/// finish its backlog before joining. Requests submitted before the drop
/// remain completable afterwards through the direct-path fallback.
#[test]
fn world_drop_drains_queued_commands_without_loss() {
    let _env = ENV_LOCK.lock().unwrap();
    const N: u32 = 100;
    let world = World::builder()
        .ranks(2)
        .design(DesignConfig::builder().offload(2).build().unwrap())
        .build();
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let recvs: Vec<_> = (0..N).map(|_| p1.irecv(8, 0, 7, comm).unwrap()).collect();
    let sends: Vec<_> = (0..N)
        .map(|i| p0.isend(&i.to_le_bytes(), 1, 7, comm).unwrap())
        .collect();
    // Shut the offload engines down with the burst potentially still in
    // the command queues.
    drop(world);
    // Proc handles outlive the world; waits now run the direct path.
    for s in &sends {
        p0.wait(s).unwrap();
    }
    let msgs = p1.waitall(&recvs).unwrap();
    for (i, m) in msgs.iter().enumerate() {
        assert_eq!(
            m.data,
            (i as u32).to_le_bytes(),
            "message {i} lost in shutdown"
        );
    }
    let spc = p0.spc_snapshot();
    assert!(
        spc[Counter::OffloadCommands] >= 1,
        "the burst must have gone through the command queue"
    );
}

/// The two-phase drain must also terminate when the fault plan kills a
/// context mid-drain: the burst is still queued when the world is dropped,
/// the kill quarantines one of rank 1's contexts, and recovery — failover
/// plus retransmission of frames stranded in the dead rx ring — finishes
/// on the direct path after the workers are gone.
#[test]
fn world_drop_terminates_when_a_context_dies_mid_drain() {
    let _env = ENV_LOCK.lock().unwrap();
    const N: u32 = 100;
    let plan = FaultPlan::seeded(37).kill(1, 0, 30).timeout_ns(50_000);
    let world = World::builder()
        .ranks(2)
        .design(
            DesignConfig::builder()
                .offload(2)
                .chaos(plan)
                .build()
                .unwrap(),
        )
        .build();
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let recvs: Vec<_> = (0..N).map(|_| p1.irecv(8, 0, 7, comm).unwrap()).collect();
    let sends: Vec<_> = (0..N)
        .map(|i| p0.isend(&i.to_le_bytes(), 1, 7, comm).unwrap())
        .collect();
    // The kill fires while the burst is (at least partly) still in the
    // command queues; the drain must terminate regardless.
    drop(world);
    // The sender's retransmit tick repairs stranded frames while the
    // receiver drains the survivor context — the two sides have to run
    // concurrently for either to finish.
    let t = std::thread::spawn(move || {
        for s in &sends {
            p0.wait(s).unwrap();
        }
        p0
    });
    let msgs = p1.waitall(&recvs).unwrap();
    for (i, m) in msgs.iter().enumerate() {
        assert_eq!(m.data, (i as u32).to_le_bytes(), "message {i} lost");
    }
    let p0 = t.join().unwrap();
    assert_eq!(p0.in_flight_frames(), 0, "unacked frames survived recovery");
}
