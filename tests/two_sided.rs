//! Integration: two-sided traffic through the full stack (core runtime +
//! CRI pool + progress engine + matching + fabric) across the design
//! space.

use std::sync::Arc;

use fairmpi::{Assignment, Counter, DesignConfig, LockModel, MatchMode, ProgressMode, World};

fn designs() -> Vec<DesignConfig> {
    vec![
        DesignConfig::default(),
        DesignConfig::builder().proposed(2).build().unwrap(),
        DesignConfig::builder().proposed(8).build().unwrap(),
        DesignConfig {
            assignment: Assignment::RoundRobin,
            ..DesignConfig::builder().proposed(4).build().unwrap()
        },
        DesignConfig {
            matching: MatchMode::Global,
            ..DesignConfig::default()
        },
        DesignConfig {
            lock_model: LockModel::GlobalCriticalSection,
            matching: MatchMode::Global,
            ..DesignConfig::default()
        },
        DesignConfig {
            progress: ProgressMode::Concurrent,
            ..DesignConfig::default()
        },
    ]
}

#[test]
fn ping_pong_under_every_design() {
    for design in designs() {
        let world = World::builder().ranks(2).design(design).build();
        let comm = world.comm_world();
        let p0 = world.proc(0);
        let p1 = world.proc(1);
        let t = std::thread::spawn(move || {
            for i in 0..30u32 {
                p0.send(&i.to_le_bytes(), 1, 0, comm).unwrap();
                let echo = p0.recv(8, 1, 1, comm).unwrap();
                assert_eq!(echo.data, i.to_le_bytes());
            }
        });
        for _ in 0..30 {
            let m = p1.recv(8, 0, 0, comm).unwrap();
            p1.send(&m.data, 0, 1, comm).unwrap();
        }
        t.join().unwrap();
    }
}

#[test]
fn payload_sizes_span_eager_and_rendezvous() {
    let world = World::builder().ranks(2).build();
    let comm = world.comm_world();
    let threshold = world.fabric_config().eager_threshold;
    let sizes = [
        0usize,
        1,
        27,
        threshold - 1,
        threshold,
        threshold + 1,
        4 * threshold,
        64 * 1024,
    ];
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let sizes2 = sizes;
    let t = std::thread::spawn(move || {
        for (i, &len) in sizes2.iter().enumerate() {
            let payload: Vec<u8> = (0..len).map(|j| (j + i) as u8).collect();
            p0.send(&payload, 1, i as i32, comm).unwrap();
        }
    });
    for (i, &len) in sizes.iter().enumerate() {
        let m = p1.recv(len + 1, 0, i as i32, comm).unwrap();
        assert_eq!(m.data.len(), len);
        assert!(m.data.iter().enumerate().all(|(j, &b)| b == (j + i) as u8));
    }
    t.join().unwrap();
    let spc = world.proc(0).spc_snapshot();
    assert!(spc[Counter::EagerSends] >= 5);
    assert!(spc[Counter::RendezvousSends] >= 3);
}

#[test]
fn many_to_one_with_any_source() {
    // 3 sender ranks funnel into rank 3 with wildcard receives.
    let world = Arc::new(World::builder().ranks(4).build());
    let comm = world.comm_world();
    let handles: Vec<_> = (0..3u32)
        .map(|r| {
            let world = Arc::clone(&world);
            std::thread::spawn(move || {
                let p = world.proc(r);
                for i in 0..25u32 {
                    p.send(&(r * 1000 + i).to_le_bytes(), 3, 0, comm).unwrap();
                }
            })
        })
        .collect();
    let p3 = world.proc(3);
    let mut per_source = [0u32; 3];
    let mut last_seen = [None::<u32>; 3];
    for _ in 0..75 {
        let m = p3.recv(8, fairmpi::ANY_SOURCE, 0, comm).unwrap();
        let v = u32::from_le_bytes(m.data.clone().try_into().unwrap());
        let src = m.src as usize;
        per_source[src] += 1;
        // Per-source FIFO even under ANY_SOURCE.
        if let Some(prev) = last_seen[src] {
            assert!(v > prev, "source {src} reordered: {prev} then {v}");
        }
        last_seen[src] = Some(v);
    }
    assert_eq!(per_source, [25, 25, 25]);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn bidirectional_stress_multi_thread() {
    // Both ranks send and receive concurrently from multiple threads.
    let world = Arc::new(
        World::builder()
            .ranks(2)
            .design(DesignConfig::builder().proposed(4).build().unwrap())
            .build(),
    );
    let comm = world.comm_world();
    let mut handles = Vec::new();
    for rank in 0..2u32 {
        let peer = 1 - rank;
        for t in 0..3 {
            let world = Arc::clone(&world);
            handles.push(std::thread::spawn(move || {
                let p = world.proc(rank);
                let tag = (rank * 10 + t) as i32;
                let peer_tag = (peer * 10 + t) as i32;
                let rreqs: Vec<_> = (0..40)
                    .map(|_| p.irecv(8, peer as i32, peer_tag, comm).unwrap())
                    .collect();
                for i in 0..40u32 {
                    p.send(&i.to_le_bytes(), peer, tag, comm).unwrap();
                }
                let msgs = p.waitall(&rreqs).unwrap();
                for (i, m) in msgs.iter().enumerate() {
                    assert_eq!(m.data, (i as u32).to_le_bytes());
                }
            }));
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    // Conservation: everything sent was received.
    let spc = world.spc_merged();
    assert_eq!(spc[Counter::MessagesSent], spc[Counter::MessagesReceived]);
}

#[test]
fn communicators_isolate_traffic() {
    let world = World::builder().ranks(2).build();
    let a = world.new_comm();
    let b = world.new_comm();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let t = std::thread::spawn(move || {
        p0.send(b"on-a", 1, 0, a).unwrap();
        p0.send(b"on-b", 1, 0, b).unwrap();
    });
    // Receive from b first: a's message must not match even though it was
    // sent first with the same (src, tag).
    let mb = p1.recv(16, 0, 0, b).unwrap();
    assert_eq!(mb.data, b"on-b");
    let ma = p1.recv(16, 0, 0, a).unwrap();
    assert_eq!(ma.data, b"on-a");
    t.join().unwrap();
}

#[test]
fn three_rank_ring_with_collectives() {
    let world = Arc::new(World::builder().ranks(3).build());
    let comm = world.comm_world();
    let handles: Vec<_> = (0..3u32)
        .map(|r| {
            let world = Arc::clone(&world);
            std::thread::spawn(move || {
                let p = world.proc(r);
                let next = (r + 1) % 3;
                let prev = (r + 2) % 3;
                // Ring shift, then a barrier, then an allreduce.
                let got = p
                    .sendrecv(&r.to_le_bytes(), next, 0, 8, prev as i32, 0, comm)
                    .unwrap();
                assert_eq!(got.data, prev.to_le_bytes());
                p.barrier(comm).unwrap();
                let sum = p.allreduce_sum(r as u64, comm).unwrap();
                assert_eq!(sum, 1 + 2);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}
