//! Integration: the fault-injection fabric and the recovery machinery above
//! it — retransmit/backoff, duplicate suppression, CRI failover, error
//! surfacing — through the full native stack with real OS threads.
//!
//! Every test arms an explicit seeded [`FaultPlan`], so the fault schedules
//! replay identically run to run; only the assignment of faults to packets
//! varies with thread interleaving, which the recovery machinery must (and
//! these tests check it does) tolerate.

use std::sync::{Arc, Mutex};

use fairmpi::{
    Counter, DesignConfig, ErrorHandler, FaultPlan, LockModel, MpiError, Proc, World, ANY_SOURCE,
    ANY_TAG,
};

/// Tests that touch the process environment (`FAIRMPI_CHAOS_*`,
/// `FAIRMPI_WATCHDOG_NS`) serialize here.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Join a sender thread while keeping the receiving rank progressed: the
/// sender may still be waiting for acks whose previous copies the fault
/// plan ate, and those retransmits land on `receiver`'s rank.
fn join_while_progressing<T>(handle: std::thread::JoinHandle<T>, receiver: &Proc) -> T {
    while !handle.is_finished() {
        if receiver.progress() == 0 {
            std::thread::yield_now();
        }
    }
    handle.join().unwrap()
}

/// Pump `sends` eager messages through a lossy wire and require exactly-once
/// FIFO delivery: every payload arrives, in order, and nothing is left over.
fn exactly_once_fifo(design: DesignConfig, sends: u32) -> fairmpi::SpcSnapshot {
    let world = Arc::new(World::builder().ranks(2).design(design).build());
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let sender = std::thread::spawn(move || {
        let reqs: Vec<_> = (0..sends)
            .map(|i| p0.isend(&i.to_le_bytes(), 1, 0, comm).unwrap())
            .collect();
        p0.waitall(&reqs).unwrap();
    });
    let p1 = world.proc(1);
    for i in 0..sends {
        let m = p1.recv(8, 0, 0, comm).unwrap();
        assert_eq!(
            m.data,
            i.to_le_bytes(),
            "FIFO broken or message lost at position {i}"
        );
    }
    join_while_progressing(sender, &p1);
    // Nothing extra on the wire: drive residual progress (stray duplicates
    // still in flight get suppressed), then probe for leftovers.
    for _ in 0..200 {
        p1.progress();
    }
    assert_eq!(
        p1.iprobe(ANY_SOURCE, ANY_TAG, comm).unwrap(),
        None,
        "a duplicate escaped suppression"
    );
    assert_eq!(world.proc(0).in_flight_frames(), 0, "unacked frames remain");
    world.spc_merged()
}

/// The tentpole acceptance scenario: 10% drop plus duplication plus
/// reordering, and every send still completes exactly once in FIFO order —
/// recovered by retransmission, paid for in the `retransmits` and
/// `retry_backoff_ns` probes.
#[test]
fn ten_percent_drop_is_repaired_by_retransmission() {
    let plan = FaultPlan::seeded(11)
        .drop(100)
        .dup(50)
        .reorder(50)
        .timeout_ns(50_000);
    let spc = exactly_once_fifo(
        DesignConfig::builder()
            .proposed(2)
            .chaos(plan)
            .build()
            .unwrap(),
        300,
    );
    assert!(spc[Counter::ChaosDrops] > 0, "the plan must actually drop");
    assert!(
        spc[Counter::Retransmits] > 0,
        "drops must force retransmits"
    );
    assert!(
        spc[Counter::RetryBackoffNanos] > 0,
        "retransmits must be paced by backoff"
    );
}

/// The same lossy wire through the big-lock emulation and the offload
/// design: recovery is design-independent.
#[test]
fn lossy_wire_recovers_under_big_lock_and_offload_designs() {
    let plan = FaultPlan::seeded(23).drop(80).timeout_ns(50_000);
    let big_lock = DesignConfig::builder()
        .lock_model(LockModel::GlobalCriticalSection)
        .chaos(plan)
        .build()
        .unwrap();
    let spc = exactly_once_fifo(big_lock, 150);
    assert!(spc[Counter::Retransmits] > 0);
    let spc = exactly_once_fifo(
        DesignConfig::builder()
            .offload(2)
            .chaos(plan)
            .build()
            .unwrap(),
        150,
    );
    assert!(spc[Counter::Retransmits] > 0);
}

/// Duplicated frames are delivered twice by the fabric and accepted once by
/// the receiver; the suppression shows up in `duplicates_suppressed`.
#[test]
fn duplicates_are_suppressed_exactly_once() {
    let plan = FaultPlan::seeded(3).dup(300);
    let spc = exactly_once_fifo(
        DesignConfig::builder()
            .proposed(2)
            .chaos(plan)
            .build()
            .unwrap(),
        100,
    );
    assert!(spc[Counter::ChaosDups] > 0, "the plan must actually dup");
    assert!(
        spc[Counter::DuplicatesSuppressed] > 0,
        "a duplicated data frame must be swallowed by the receiver"
    );
}

/// Rendezvous transfers (RTS/CTS/DATA, all individually droppable) survive
/// the lossy wire too: the bulk payload arrives intact, once.
#[test]
fn rendezvous_protocol_survives_drops() {
    let plan = FaultPlan::seeded(7).drop(120).timeout_ns(50_000);
    let world = World::builder()
        .ranks(2)
        .design(
            DesignConfig::builder()
                .proposed(2)
                .chaos(plan)
                .build()
                .unwrap(),
        )
        .build();
    let comm = world.comm_world();
    let payload: Vec<u8> = (0..16 * 1024).map(|i| (i % 251) as u8).collect();
    let p0 = world.proc(0);
    let expect = payload.clone();
    let sender = std::thread::spawn(move || {
        for _ in 0..5 {
            p0.send(&payload, 1, 9, comm).unwrap();
        }
    });
    let p1 = world.proc(1);
    for _ in 0..5 {
        let m = p1.recv(32 * 1024, 0, 9, comm).unwrap();
        assert_eq!(m.data, expect, "rendezvous payload corrupted or lost");
    }
    join_while_progressing(sender, &p1);
    let spc = world.spc_merged();
    assert!(spc[Counter::RendezvousSends] >= 5);
    assert!(spc[Counter::Retransmits] > 0);
}

/// Transient injection refusal (the CQ-full analog): the frame waits for
/// the retransmit tick instead of failing, and the refusal is counted.
#[test]
fn transient_refusals_delay_but_never_lose_sends() {
    let plan = FaultPlan::seeded(5).refuse(200).timeout_ns(20_000);
    let spc = exactly_once_fifo(
        DesignConfig::builder()
            .proposed(2)
            .chaos(plan)
            .build()
            .unwrap(),
        150,
    );
    assert!(
        spc[Counter::ChaosRefusals] > 0,
        "the plan must actually refuse injections"
    );
}

/// A context death on the *receiving* rank: deliveries fail over to the
/// surviving context, frames stranded in the dead rx ring are repaired by
/// retransmission, and the progress engine skips the corpse.
#[test]
fn receiver_context_death_fails_over_deliveries() {
    let plan = FaultPlan::seeded(13).kill(1, 0, 40).timeout_ns(50_000);
    let spc = exactly_once_fifo(
        DesignConfig::builder()
            .proposed(2)
            .chaos(plan)
            .build()
            .unwrap(),
        200,
    );
    assert_eq!(
        spc[Counter::MessagesSent],
        200,
        "workload volume must not be inflated by recovery"
    );
}

/// A sender whose *only* instance dies: frames already on the wire deliver,
/// but their acks can no longer come home, so every send surfaces
/// `InstanceFailed` (or exhausts its retries) through `MPI_ERRORS_RETURN`;
/// the corpse is quarantined exactly once in `cri_failovers`, and the
/// surviving rank keeps communicating.
#[test]
fn all_instances_dead_surfaces_instance_failed() {
    let plan = FaultPlan::seeded(17)
        .kill(0, 0, 10)
        .timeout_ns(20_000)
        .max_retries(3);
    let world = World::builder()
        .ranks(2)
        .design(DesignConfig::builder().chaos(plan).build().unwrap())
        .build();
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);
    let reqs: Vec<_> = (0..30u32)
        .map(|i| p0.isend(&i.to_le_bytes(), 1, 0, comm).unwrap())
        .collect();
    // Rank 0's only context died after the 10th observed send: every
    // request must now resolve to an error — promptly, not by hanging.
    for req in &reqs {
        let err = p0.wait(req).unwrap_err();
        assert!(
            matches!(
                err,
                MpiError::InstanceFailed | MpiError::RetryExhausted { .. }
            ),
            "unexpected error class: {err}"
        );
    }
    assert!(
        world.spc_merged()[Counter::CriFailovers] >= 1,
        "the dead instance must be quarantined"
    );
    // The 11 frames injected before (and during) the kill still delivered;
    // the receiver drains them normally.
    for _ in 0..200 {
        p1.progress();
    }
    let mut received = 0u32;
    while p1.iprobe(0, 0, comm).unwrap().is_some() {
        let m = p1.recv(8, 0, 0, comm).unwrap();
        assert_eq!(m.data, received.to_le_bytes());
        received += 1;
    }
    assert_eq!(received, 11, "frames on the wire before the kill deliver");
    // The surviving rank is unaffected: self-traffic still round-trips.
    let req = p1.irecv(8, 1, 5, comm).unwrap();
    p1.send(b"self", 1, 5, comm).unwrap();
    assert_eq!(p1.wait(&req).unwrap().data, b"self");
}

/// With `MPI_ERRORS_ARE_FATAL`, an irrecoverable transport failure panics
/// the observing thread instead of returning.
#[test]
#[should_panic(expected = "fatal MPI error")]
fn errors_are_fatal_panics_on_retry_exhaustion() {
    let plan = FaultPlan::seeded(19)
        .drop(1000)
        .timeout_ns(1_000)
        .max_retries(2);
    let world = World::builder()
        .ranks(2)
        .design(
            DesignConfig::builder()
                .chaos(plan)
                .error_handler(ErrorHandler::ErrorsAreFatal)
                .build()
                .unwrap(),
        )
        .build();
    let comm = world.comm_world();
    // Certain drop: no ack ever arrives, the retry budget burns out, and
    // the wait's own progress pass executes the fatal handler.
    let _ = world.proc(0).send(b"doomed", 1, 0, comm);
}

/// A 100%-drop wire exhausts the retry budget and reports how many attempts
/// were made.
#[test]
fn certain_loss_reports_retry_exhausted() {
    let plan = FaultPlan::seeded(29)
        .drop(1000)
        .timeout_ns(1_000)
        .max_retries(4);
    let world = World::builder()
        .ranks(2)
        .design(DesignConfig::builder().chaos(plan).build().unwrap())
        .build();
    let comm = world.comm_world();
    let err = world.proc(0).send(b"doomed", 1, 0, comm).unwrap_err();
    assert_eq!(err, MpiError::RetryExhausted { attempts: 4 });
    let spc = world.proc(0).spc_snapshot();
    assert_eq!(spc[Counter::Retransmits], 4, "one retransmit per attempt");
    assert_eq!(spc[Counter::ChaosDrops], 5, "initial send + 4 retries");
}

/// The watchdog flags a stalled recovery as an SPC event instead of
/// aborting: a wire that drops everything makes progress passes idle long
/// past the (tiny, env-tuned) budget.
#[test]
fn watchdog_trips_while_recovery_stalls() {
    let _env = ENV_LOCK.lock().unwrap();
    std::env::set_var("FAIRMPI_WATCHDOG_NS", "1");
    let plan = FaultPlan::seeded(31)
        .drop(1000)
        .timeout_ns(1_000_000_000) // park the frame; passes stay idle
        .max_retries(0);
    let world = World::builder()
        .ranks(2)
        .design(DesignConfig::builder().chaos(plan).build().unwrap())
        .build();
    std::env::remove_var("FAIRMPI_WATCHDOG_NS");
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let _req = p0.isend(b"stuck", 1, 0, comm).unwrap();
    for _ in 0..100 {
        p0.progress();
    }
    assert!(
        p0.spc_snapshot()[Counter::WatchdogTrips] >= 1,
        "idle passes past the budget must trip the watchdog"
    );
}

/// A world can pick its whole fault plan up from `FAIRMPI_CHAOS_*` keys —
/// the bench-grid entry point.
#[test]
fn chaos_env_keys_arm_a_world() {
    let _env = ENV_LOCK.lock().unwrap();
    std::env::set_var("FAIRMPI_CHAOS_SEED", "41");
    std::env::set_var("FAIRMPI_CHAOS_DROP", "100");
    std::env::set_var("FAIRMPI_CHAOS_TIMEOUT_NS", "50000");
    let world = World::builder().ranks(2).build();
    std::env::remove_var("FAIRMPI_CHAOS_SEED");
    std::env::remove_var("FAIRMPI_CHAOS_DROP");
    std::env::remove_var("FAIRMPI_CHAOS_TIMEOUT_NS");
    let plan = world.design().chaos.expect("env keys must arm the plan");
    assert_eq!((plan.seed, plan.drop_pm), (41, 100));
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let sender = std::thread::spawn(move || {
        for i in 0..50u32 {
            p0.send(&i.to_le_bytes(), 1, 0, comm).unwrap();
        }
    });
    let p1 = world.proc(1);
    for i in 0..50u32 {
        assert_eq!(p1.recv(8, 0, 0, comm).unwrap().data, i.to_le_bytes());
    }
    join_while_progressing(sender, &p1);
}

/// An *inert* plan (seeded, but no fault class enabled) resolves to
/// chaos-off: the reliability layer is never built and the design reports
/// no chaos — the zero-fault identity gate relies on this.
#[test]
fn inert_plans_resolve_to_chaos_off() {
    let world = World::builder()
        .ranks(2)
        .design(
            DesignConfig::builder()
                .chaos(FaultPlan::seeded(99))
                .build()
                .unwrap(),
        )
        .build();
    assert_eq!(world.design().chaos, None, "inert plan must disarm");
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let t = std::thread::spawn(move || p0.send(b"clean", 1, 0, comm).unwrap());
    assert_eq!(world.proc(1).recv(8, 0, 0, comm).unwrap().data, b"clean");
    t.join().unwrap();
    let spc = world.spc_merged();
    assert_eq!(spc[Counter::Retransmits], 0);
    assert_eq!(spc[Counter::ChaosDrops], 0);
}
