//! Integration tests for one-sided communication: windows, passive/active
//! target synchronization, and atomicity under real thread concurrency.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fairmpi::{AccumulateOp, Counter, DesignConfig, MpiError, World};

#[test]
fn put_get_round_trip_between_ranks() {
    let world = World::builder().ranks(3).build();
    let id = world.allocate_window(128);
    let w0 = world.proc(0).window(id).unwrap();
    // Scatter a pattern into every rank's window.
    for target in 0..3u32 {
        let data: Vec<u8> = (0..32).map(|i| (target as u8) * 32 + i).collect();
        w0.put(target, 16, &data).unwrap();
    }
    w0.flush_all();
    for target in 0..3u32 {
        let got = w0.get(target, 16, 32).unwrap();
        assert!(got
            .iter()
            .enumerate()
            .all(|(i, &b)| b == (target as u8) * 32 + i as u8));
        // And the owner sees it locally.
        let local = world
            .proc(target)
            .window(id)
            .unwrap()
            .read_local(16, 32)
            .unwrap();
        assert_eq!(local, got);
    }
}

#[test]
fn flush_waits_for_all_pending_ops() {
    let world = World::builder().ranks(2).build();
    let id = world.allocate_window(8 * 256);
    let w = world.proc(0).window(id).unwrap();
    for i in 0..256usize {
        w.put(1, i * 8, &(i as u64).to_le_bytes()).unwrap();
    }
    w.flush(1).unwrap();
    assert_eq!(w.pending_toward(1), 0);
    let w1 = world.proc(1).window(id).unwrap();
    for i in 0..256usize {
        let v = u64::from_le_bytes(w1.read_local(i * 8, 8).unwrap().try_into().unwrap());
        assert_eq!(v, i as u64);
    }
}

#[test]
fn concurrent_fetch_add_from_both_ranks_is_atomic() {
    let world = Arc::new(
        World::builder()
            .ranks(2)
            .design(DesignConfig::builder().proposed(4).build().unwrap())
            .build(),
    );
    let id = world.allocate_window(8);
    let per_thread = 300u64;
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let world = Arc::clone(&world);
            std::thread::spawn(move || {
                // Threads of both ranks hammer rank 0's counter.
                let origin = (i % 2) as u32;
                let w = world.proc(origin).window(id).unwrap();
                for _ in 0..per_thread {
                    w.fetch_add(0, 0, 1).unwrap();
                }
                w.flush(0).unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let w = world.proc(0).window(id).unwrap();
    let v = u64::from_le_bytes(w.read_local(0, 8).unwrap().try_into().unwrap());
    assert_eq!(v, 4 * per_thread);
}

#[test]
fn compare_swap_builds_a_working_spinlock() {
    // A classic passive-target pattern: a remote lock word manipulated
    // with CAS, protecting a non-atomic remote counter.
    let world = Arc::new(
        World::builder()
            .ranks(2)
            .design(DesignConfig::builder().proposed(4).build().unwrap())
            .build(),
    );
    let id = world.allocate_window(16);
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let world = Arc::clone(&world);
            std::thread::spawn(move || {
                let w = world.proc(0).window(id).unwrap();
                for _ in 0..50 {
                    // Acquire the remote lock word (offset 0).
                    while w.compare_swap(1, 0, 0, 1).unwrap() != 0 {
                        std::thread::yield_now();
                    }
                    // Non-atomic read-modify-write of offset 8.
                    let v = u64::from_le_bytes(w.get(1, 8, 8).unwrap().try_into().unwrap());
                    w.put(1, 8, &(v + 1).to_le_bytes()).unwrap();
                    w.flush(1).unwrap();
                    // Release.
                    assert_eq!(w.compare_swap(1, 0, 1, 0).unwrap(), 1);
                    w.flush(1).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let w1 = world.proc(1).window(id).unwrap();
    let v = u64::from_le_bytes(w1.read_local(8, 8).unwrap().try_into().unwrap());
    assert_eq!(v, 150, "remote spinlock must serialize the counter updates");
}

#[test]
fn accumulate_ops_semantics() {
    let world = World::builder().ranks(2).build();
    let id = world.allocate_window(32);
    let w = world.proc(0).window(id).unwrap();
    w.accumulate(1, 0, &[10, 20], AccumulateOp::Replace)
        .unwrap();
    w.accumulate(1, 0, &[5, 30], AccumulateOp::Max).unwrap();
    w.accumulate(1, 0, &[1, 1], AccumulateOp::Sum).unwrap();
    w.accumulate(1, 0, &[100, 0], AccumulateOp::Min).unwrap();
    w.flush(1).unwrap();
    let w1 = world.proc(1).window(id).unwrap();
    let lane0 = u64::from_le_bytes(w1.read_local(0, 8).unwrap().try_into().unwrap());
    let lane1 = u64::from_le_bytes(w1.read_local(8, 8).unwrap().try_into().unwrap());
    assert_eq!(lane0, 11, "replace 10, max(10,5), +1, min(11,100)");
    assert_eq!(lane1, 0, "replace 20, max(20,30)=30, +1, min(31,0)=0");
}

#[test]
fn fence_epochs_order_bidirectional_updates() {
    let world = Arc::new(World::builder().ranks(2).build());
    let id = world.allocate_window(16);
    let handles: Vec<_> = (0..2u32)
        .map(|r| {
            let world = Arc::clone(&world);
            std::thread::spawn(move || {
                let w = world.proc(r).window(id).unwrap();
                for round in 0..10u64 {
                    w.put(
                        1 - r,
                        (r as usize) * 8,
                        &(round * 2 + r as u64).to_le_bytes(),
                    )
                    .unwrap();
                    w.fence();
                    // After the fence, the peer's write of this round is
                    // visible locally.
                    let peer_lane = (1 - r) as usize * 8;
                    let v =
                        u64::from_le_bytes(w.read_local(peer_lane, 8).unwrap().try_into().unwrap());
                    assert_eq!(v, round * 2 + (1 - r) as u64);
                    w.fence();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn error_paths() {
    let world = World::builder().ranks(2).build();
    let id = world.allocate_window(16);
    let w = world.proc(0).window(id).unwrap();
    assert!(matches!(
        w.put(1, 9, &[0u8; 8]).unwrap_err(),
        MpiError::WindowOutOfRange { .. }
    ));
    assert!(matches!(
        w.get(1, 0, 17).unwrap_err(),
        MpiError::WindowOutOfRange { .. }
    ));
    assert!(matches!(
        w.accumulate(1, 4, &[1], AccumulateOp::Sum).unwrap_err(),
        MpiError::MisalignedAtomic(4)
    ));
    assert!(matches!(
        w.compare_swap(7, 0, 0, 1).unwrap_err(),
        MpiError::InvalidRank(7)
    ));
    world.free_window(id).unwrap();
    assert!(world.proc(0).window(id).is_err());
}

/// A random sequence of puts is equivalent to replaying the same
/// writes on a local byte array.
#[test]
fn puts_match_a_reference_model() {
    for seed in 0..16u64 {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9A7C);
        let n = rng.gen_range(1usize..40);
        let writes: Vec<(usize, Vec<u8>)> = (0..n)
            .map(|_| {
                let offset = rng.gen_range(0usize..56);
                let len = rng.gen_range(1usize..8);
                let data: Vec<u8> = (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect();
                (offset, data)
            })
            .collect();
        let world = World::builder().ranks(2).build();
        let id = world.allocate_window(64);
        let w = world.proc(0).window(id).unwrap();
        let mut model = [0u8; 64];
        for (offset, data) in &writes {
            w.put(1, *offset, data).unwrap();
            model[*offset..*offset + data.len()].copy_from_slice(data);
        }
        w.flush(1).unwrap();
        let actual = world.proc(1).window(id).unwrap().read_local(0, 64).unwrap();
        assert_eq!(actual.as_slice(), &model[..]);
    }
}

/// fetch_add returns every intermediate value exactly once (a
/// linearizable counter), regardless of interleaving.
#[test]
fn fetch_add_returns_are_a_permutation() {
    for n in [1u64, 5, 17, 39] {
        let world = Arc::new(World::builder().ranks(2).build());
        let id = world.allocate_window(8);
        let w = world.proc(0).window(id).unwrap();
        let mut seen: Vec<u64> = (0..n).map(|_| w.fetch_add(1, 0, 1).unwrap()).collect();
        w.flush(1).unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }
}

#[test]
fn spc_counts_rma_traffic() {
    let world = World::builder().ranks(2).build();
    let id = world.allocate_window(64);
    let w = world.proc(0).window(id).unwrap();
    w.put(1, 0, &[1; 16]).unwrap();
    let _ = w.get(1, 0, 16).unwrap();
    w.fetch_add(1, 0, 1).unwrap();
    w.flush(1).unwrap();
    let spc = world.proc(0).spc_snapshot();
    assert_eq!(spc[Counter::RmaPuts], 1);
    assert_eq!(spc[Counter::RmaGets], 1);
    assert_eq!(spc[Counter::RmaAccumulates], 1);
    assert_eq!(spc[Counter::RmaFlushes], 1);
}
