//! Quickstart: the core `fairmpi` API in one tour.
//!
//! Builds a 2-rank world, exchanges two-sided messages (blocking,
//! nonblocking, wildcards), does some one-sided RMA, runs a collective,
//! and prints the software performance counters the study is built on.
//!
//! Run with: `cargo run --example quickstart`

use fairmpi::{AccumulateOp, Counter, DesignConfig, World, ANY_SOURCE, ANY_TAG};

fn main() {
    // The paper's proposed design: multiple CRIs with dedicated assignment
    // and a concurrent progress engine.
    let world = World::builder()
        .ranks(2)
        .design(DesignConfig::builder().proposed(4).build().unwrap())
        .build();
    let comm = world.comm_world();
    let p0 = world.proc(0);
    let p1 = world.proc(1);

    // --- blocking two-sided ---
    let sender = {
        let p0 = p0.clone();
        std::thread::spawn(move || {
            p0.send(b"hello from rank 0", 1, 7, comm).unwrap();
        })
    };
    let msg = p1.recv(64, 0, 7, comm).unwrap();
    sender.join().unwrap();
    println!(
        "rank 1 got {:?} (src={}, tag={})",
        String::from_utf8_lossy(&msg.data),
        msg.src,
        msg.tag
    );

    // --- nonblocking + wildcards ---
    let rreq = p1.irecv(64, ANY_SOURCE, ANY_TAG, comm).unwrap();
    let sreq = p0.isend(b"wildcards work", 1, 42, comm).unwrap();
    let got = loop {
        p0.progress();
        if let Some(m) = p1.test(&rreq).unwrap() {
            break m;
        }
    };
    p0.wait(&sreq).unwrap();
    println!(
        "wildcard receive matched tag {} from rank {}",
        got.tag, got.src
    );

    // --- probe before receive ---
    let t = {
        let p0 = p0.clone();
        std::thread::spawn(move || p0.send(&[1, 2, 3], 1, 5, comm).unwrap())
    };
    let (src, tag) = p1.probe(ANY_SOURCE, ANY_TAG, comm).unwrap();
    let probed = p1.recv(16, src as i32, tag, comm).unwrap();
    t.join().unwrap();
    println!("probed then received {} bytes", probed.data.len());

    // --- one-sided RMA: put, atomic accumulate, flush ---
    let win_id = world.allocate_window(64);
    let w0 = p0.window(win_id).unwrap();
    let w1 = p1.window(win_id).unwrap();
    w0.put(1, 0, &7u64.to_le_bytes()).unwrap();
    w0.accumulate(1, 8, &[100, 200], AccumulateOp::Sum).unwrap();
    let before = w0.fetch_add(1, 8, 5).unwrap();
    w0.flush(1).unwrap();
    let lane0 = u64::from_le_bytes(w1.read_local(0, 8).unwrap().try_into().unwrap());
    let lane1 = u64::from_le_bytes(w1.read_local(8, 8).unwrap().try_into().unwrap());
    println!("RMA landed: lane0={lane0}, lane1={lane1} (fetch_add saw {before})");
    assert_eq!((lane0, lane1, before), (7, 105, 100));

    // --- a collective ---
    let threads: Vec<_> = (0..2)
        .map(|r| {
            let p = world.proc(r);
            std::thread::spawn(move || p.allreduce_sum(r as u64 + 1, comm).unwrap())
        })
        .collect();
    for t in threads {
        assert_eq!(t.join().unwrap(), 3);
    }
    println!("allreduce(1 + 2) = 3 on every rank");

    // --- the counters the paper's Table II is made of ---
    let spc = world.spc_merged();
    println!("\nSPC counters:");
    for c in [
        Counter::MessagesSent,
        Counter::MessagesReceived,
        Counter::EagerSends,
        Counter::UnexpectedMessages,
        Counter::OutOfSequenceMessages,
        Counter::RmaPuts,
        Counter::RmaAccumulates,
        Counter::ProgressCalls,
    ] {
        println!("  {:<28} {}", c.name(), spc[c]);
    }
}
