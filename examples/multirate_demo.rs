//! A miniature of the paper's whole argument in one run: the Multirate
//! benchmark across the design space, on both backends.
//!
//! Executes the key design points natively (real threads over the real
//! runtime — correctness and counters) and under virtual time (the
//! contention shapes of Figs. 3 and 5), then prints them side by side.
//!
//! Run with: `cargo run --release --example multirate_demo`

use fairmpi::{Counter, DesignConfig, LockModel, MatchMode};
use fairmpi_multirate::{run_native, run_virtual, Mode, MultirateConfig};
use fairmpi_vsim::{Machine, MachinePreset};

fn main() {
    let pairs = 4;
    let base = MultirateConfig {
        pairs,
        mode: Mode::Threads,
        window: 64,
        iterations: 5,
        ..MultirateConfig::default()
    };
    let machine = Machine::preset(MachinePreset::Alembert);

    let designs: Vec<(&str, MultirateConfig)> = vec![
        ("original (1 CRI, serial)", base.clone()),
        (
            "CRIs (dedicated, serial)",
            MultirateConfig {
                design: DesignConfig {
                    num_instances: pairs,
                    assignment: fairmpi::Assignment::Dedicated,
                    ..DesignConfig::default()
                },
                ..base.clone()
            },
        ),
        (
            "CRIs* (+concurrent progress & matching)",
            MultirateConfig {
                design: DesignConfig::builder().proposed(pairs).build().unwrap(),
                comm_per_pair: true,
                ..base.clone()
            },
        ),
        (
            "big-lock emulation",
            MultirateConfig {
                design: DesignConfig {
                    lock_model: LockModel::GlobalCriticalSection,
                    matching: MatchMode::Global,
                    ..DesignConfig::default()
                },
                ..base.clone()
            },
        ),
        (
            "process mode",
            MultirateConfig {
                mode: Mode::Processes,
                ..base.clone()
            },
        ),
    ];

    println!(
        "{:<42} {:>14} {:>16} {:>10} {:>12}",
        "design", "native msg/s", "virtual msg/s", "OOS %", "match ms"
    );
    for (label, cfg) in designs {
        let native = run_native(&cfg);
        let virt = run_virtual(&cfg, &machine, 7);
        assert_eq!(
            native.spc[Counter::MessagesReceived],
            cfg.total_messages(),
            "native backend must deliver everything"
        );
        println!(
            "{:<42} {:>14.0} {:>16.0} {:>9.1}% {:>12.2}",
            label,
            native.msg_rate_per_s,
            virt.msg_rate_per_s,
            virt.spc.out_of_sequence_fraction() * 100.0,
            virt.spc.match_time_ms(),
        );
    }
    println!(
        "\n(native rates reflect this host's core count; virtual rates \
         reproduce the paper's 20-core testbed shapes deterministically)"
    );
}
