//! A task-pull runtime over an *overtaking* communicator.
//!
//! Paper §VI: relaxing the matching order "might only be suitable for some
//! categories of application that do not rely on message ordering, such as
//! task-based runtimes". This example is exactly that category: rank 0
//! produces independent work descriptors from several threads; rank 1's
//! worker threads pull whatever arrives first with `MPI_ANY_TAG` receives
//! on a communicator created with `mpi_assert_allow_overtaking`, so the
//! runtime never buffers out-of-sequence messages on the critical path.
//!
//! Run with: `cargo run --example task_queue`

use std::sync::Arc;

use fairmpi::{Counter, DesignConfig, World, ANY_SOURCE, ANY_TAG};

const PRODUCERS: usize = 3;
const WORKERS: usize = 3;
const TASKS_PER_PRODUCER: usize = 400;
const POISON: &[u8] = b"__shutdown__";

fn main() {
    let world = Arc::new(
        World::builder()
            .ranks(2)
            .design(
                DesignConfig::builder()
                    .proposed(PRODUCERS.max(WORKERS))
                    .build()
                    .unwrap(),
            )
            .build(),
    );
    // The task channel: ordering explicitly relaxed.
    let task_comm = world.new_comm_with(true);

    // Producers on rank 0: each thread streams independent task payloads.
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let world = Arc::clone(&world);
            std::thread::spawn(move || {
                let proc = world.proc(0);
                for i in 0..TASKS_PER_PRODUCER {
                    // A "task": compute the sum of bytes of this payload.
                    let payload = vec![(i % 251) as u8; 16 + (i % 48)];
                    proc.send(&payload, 1, p as i32, task_comm).unwrap();
                }
            })
        })
        .collect();

    // Workers on rank 1: pull with wildcards, process, tally.
    let workers: Vec<_> = (0..WORKERS)
        .map(|_| {
            let world = Arc::clone(&world);
            std::thread::spawn(move || {
                let proc = world.proc(1);
                let mut done = 0u64;
                let mut work_sum = 0u64;
                loop {
                    let msg = proc.recv(256, ANY_SOURCE, ANY_TAG, task_comm).unwrap();
                    if msg.data == POISON {
                        break;
                    }
                    work_sum += msg.data.iter().map(|&b| b as u64).sum::<u64>();
                    done += 1;
                }
                (done, work_sum)
            })
        })
        .collect();

    for p in producers {
        p.join().unwrap();
    }
    // Shut the workers down (one poison pill each).
    let p0 = world.proc(0);
    for _ in 0..WORKERS {
        p0.send(POISON, 1, 99, task_comm).unwrap();
    }

    let mut total_tasks = 0u64;
    let mut total_work = 0u64;
    for (i, w) in workers.into_iter().enumerate() {
        let (done, sum) = w.join().unwrap();
        println!("worker {i}: {done} tasks (work checksum {sum})");
        total_tasks += done;
        total_work += sum;
    }
    assert_eq!(total_tasks, (PRODUCERS * TASKS_PER_PRODUCER) as u64);

    // Verify against the expected checksum computed independently.
    let expected: u64 = (0..PRODUCERS as u64)
        .map(|_| {
            (0..TASKS_PER_PRODUCER as u64)
                .map(|i| (i % 251) * (16 + (i % 48)))
                .sum::<u64>()
        })
        .sum();
    assert_eq!(total_work, expected, "no task lost or corrupted");

    let spc = world.proc(1).spc_snapshot();
    println!(
        "\nall {total_tasks} tasks processed; overtaken messages: {}, \
         out-of-sequence buffering events: {} (the overtaking communicator \
         never pays the reordering tax)",
        spc[Counter::OvertakenMessages],
        spc[Counter::OutOfSequenceMessages],
    );
    assert_eq!(spc[Counter::OutOfSequenceMessages], 0);
}
