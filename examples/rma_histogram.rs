//! One-sided histogram: many threads scatter atomic updates into a window
//! owned by a "server" rank that never participates — the passive-target
//! pattern (`MPI_Accumulate`/`MPI_Fetch_and_op` + `MPI_Win_flush`) the
//! paper's §IV-F stresses with RMA-MT.
//!
//! Run with: `cargo run --example rma_histogram`

use std::sync::Arc;

use fairmpi::{Counter, DesignConfig, World};

const BINS: usize = 32;
const THREADS: usize = 4;
const SAMPLES_PER_THREAD: usize = 2_000;

/// Cheap deterministic pseudo-random stream (xorshift64*).
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

fn main() {
    // Rank 1 hosts the histogram; rank 0's threads fill it remotely.
    // One CRI per thread keeps the origin instances uncontended, exactly
    // as Figs. 6/7 recommend.
    let world = Arc::new(
        World::builder()
            .ranks(2)
            .design(DesignConfig::builder().proposed(THREADS).build().unwrap())
            .build(),
    );
    let win_id = world.allocate_window(BINS * 8);

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let world = Arc::clone(&world);
            std::thread::spawn(move || {
                let proc = world.proc(0);
                let win = proc.window(win_id).expect("window");
                let mut rng = Stream(0x9E37_79B9 ^ (t as u64 + 1));
                for _ in 0..SAMPLES_PER_THREAD {
                    let bin = (rng.next() % BINS as u64) as usize;
                    // Remote atomic increment of the bin.
                    win.fetch_add(1, bin * 8, 1).expect("fetch_add");
                }
                // Passive-target completion: nothing required of rank 1.
                win.flush(1).expect("flush");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // The target reads its own exposed memory.
    let server = world.proc(1).window(win_id).expect("window");
    let mut total = 0u64;
    let mut min = u64::MAX;
    let mut max = 0u64;
    println!(
        "histogram (32 bins, {} samples):",
        THREADS * SAMPLES_PER_THREAD
    );
    for bin in 0..BINS {
        let v = u64::from_le_bytes(server.read_local(bin * 8, 8).unwrap().try_into().unwrap());
        total += v;
        min = min.min(v);
        max = max.max(v);
        println!("  bin {bin:>2}: {v:>5} {}", "#".repeat((v / 8) as usize));
    }
    assert_eq!(
        total,
        (THREADS * SAMPLES_PER_THREAD) as u64,
        "every atomic increment must land exactly once"
    );
    println!("total {total}, min bin {min}, max bin {max}");
    println!(
        "accumulates issued: {}, flushes: {}",
        world.proc(0).spc().get(Counter::RmaAccumulates),
        world.proc(0).spc().get(Counter::RmaFlushes)
    );
}
