//! MPI+threads halo exchange: the hybrid-programming workload the paper's
//! introduction motivates.
//!
//! A 1-D heat-diffusion stencil is split across 2 ranks; within each rank,
//! several worker threads own contiguous sub-slabs. Interior halos are
//! exchanged through shared memory (threads see each other's slabs — the
//! whole point of MPI+X), while the two rank-boundary halos cross the
//! simulated network every iteration, with one communicator per boundary
//! thread pair (the paper's Fig. 3c recipe for concurrent matching).
//!
//! Run with: `cargo run --example halo_exchange`

use std::sync::{Arc, Barrier};

use fairmpi::{DesignConfig, World};

const THREADS_PER_RANK: usize = 4;
const CELLS_PER_THREAD: usize = 64;
const ITERATIONS: usize = 200;
const HOT: f64 = 100.0;

/// One thread's slab with ghost cells at both ends.
struct Slab {
    cells: Vec<f64>,
}

impl Slab {
    fn new() -> Self {
        Self {
            cells: vec![0.0; CELLS_PER_THREAD + 2],
        }
    }

    fn step(&mut self, left_ghost: f64, right_ghost: f64) {
        self.cells[0] = left_ghost;
        self.cells[CELLS_PER_THREAD + 1] = right_ghost;
        let prev = self.cells.clone();
        for i in 1..=CELLS_PER_THREAD {
            self.cells[i] = prev[i] + 0.25 * (prev[i - 1] - 2.0 * prev[i] + prev[i + 1]);
        }
    }

    fn left_edge(&self) -> f64 {
        self.cells[1]
    }

    fn right_edge(&self) -> f64 {
        self.cells[CELLS_PER_THREAD]
    }
}

fn main() {
    // The proposed design: enough CRIs for every communicating thread.
    let world = Arc::new(
        World::builder()
            .ranks(2)
            .design(
                DesignConfig::builder()
                    .proposed(THREADS_PER_RANK)
                    .build()
                    .unwrap(),
            )
            .build(),
    );
    // One dedicated communicator for the rank-boundary exchange.
    let boundary_comm = world.new_comm();

    // Shared slabs: edge values are exchanged through these between
    // iterations (intra-rank halos never touch the network).
    let edges: Arc<Vec<parking_edges::EdgeCell>> = Arc::new(
        (0..2 * THREADS_PER_RANK)
            .map(|_| parking_edges::EdgeCell::default())
            .collect(),
    );
    let barrier = Arc::new(Barrier::new(2 * THREADS_PER_RANK));

    let mut handles = Vec::new();
    for rank in 0..2u32 {
        for t in 0..THREADS_PER_RANK {
            let world = Arc::clone(&world);
            let edges = Arc::clone(&edges);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                let proc = world.proc(rank);
                let mut slab = Slab::new();
                // Global thread index across both ranks.
                let gid = rank as usize * THREADS_PER_RANK + t;
                // Fixed hot boundary at the far left of rank 0.
                let is_global_left = gid == 0;
                let is_global_right = gid == 2 * THREADS_PER_RANK - 1;
                let crosses_rank_boundary_right = t == THREADS_PER_RANK - 1 && rank == 0;
                let crosses_rank_boundary_left = t == 0 && rank == 1;

                for _ in 0..ITERATIONS {
                    // Publish edges for intra-rank neighbors.
                    edges[gid].store(slab.left_edge(), slab.right_edge());
                    barrier.wait();

                    // Left ghost.
                    let left = if is_global_left {
                        HOT
                    } else if crosses_rank_boundary_left {
                        // Receive from rank 0's last thread, send ours back.
                        let msg = proc
                            .sendrecv(
                                &slab.left_edge().to_le_bytes(),
                                0,
                                1,
                                8,
                                0,
                                0,
                                boundary_comm,
                            )
                            .expect("boundary exchange");
                        f64::from_le_bytes(msg.data.try_into().unwrap())
                    } else {
                        edges[gid - 1].right()
                    };

                    // Right ghost.
                    let right = if is_global_right {
                        0.0
                    } else if crosses_rank_boundary_right {
                        let msg = proc
                            .sendrecv(
                                &slab.right_edge().to_le_bytes(),
                                1,
                                0,
                                8,
                                1,
                                1,
                                boundary_comm,
                            )
                            .expect("boundary exchange");
                        f64::from_le_bytes(msg.data.try_into().unwrap())
                    } else {
                        edges[gid + 1].left()
                    };

                    slab.step(left, right);
                    barrier.wait();
                }
                slab.cells[1..=CELLS_PER_THREAD].iter().sum::<f64>()
            }));
        }
    }

    let total: f64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    println!(
        "halo exchange finished: {} iterations over {} cells, total heat {:.3}",
        ITERATIONS,
        2 * THREADS_PER_RANK * CELLS_PER_THREAD,
        total
    );
    // Heat flowed in from the hot boundary; the field must be warm and
    // monotonically reasonable.
    assert!(total > 0.0, "heat must have diffused into the domain");
    let spc = world.spc_merged();
    println!(
        "boundary messages exchanged over the fabric: {}",
        spc[fairmpi::Counter::MessagesReceived]
    );
}

/// Tiny atomic f64 cell pair for intra-rank edge sharing.
mod parking_edges {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    pub struct EdgeCell {
        left: AtomicU64,
        right: AtomicU64,
    }

    impl EdgeCell {
        pub fn store(&self, left: f64, right: f64) {
            self.left.store(left.to_bits(), Ordering::Release);
            self.right.store(right.to_bits(), Ordering::Release);
        }
        pub fn left(&self) -> f64 {
            f64::from_bits(self.left.load(Ordering::Acquire))
        }
        pub fn right(&self) -> f64 {
            f64::from_bits(self.right.load(Ordering::Acquire))
        }
    }
}
