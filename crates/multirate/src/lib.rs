//! The Multirate benchmark (Patinyasakdikul et al., EuroMPI'19 — reference
//! \[6\] in the paper), pairwise pattern.
//!
//! Multirate–pairwise spawns pairs of communication entities mapped to
//! either processes or threads (paper Fig. 2) and measures the aggregate
//! message rate. The paper's two-sided experiments run it with 0-byte
//! messages and a window of 128.
//!
//! Two backends share one configuration:
//!
//! * [`run_native`] executes on real OS threads over the real `fairmpi`
//!   runtime — exercising the actual locks. Meaningful wall-clock scaling
//!   requires as many hardware cores as benchmark threads; on smaller
//!   hosts it remains a correctness workout.
//! * [`run_virtual`] executes under the deterministic virtual-time
//!   executor (`fairmpi-vsim`), which reproduces the paper's contention
//!   shapes on any host. The figure harnesses use this backend.

use std::sync::Arc;
use std::time::Instant;

use fairmpi::{
    Assignment, Communicator, DesignConfig, LockModel, MatchMode, Proc, ProgressMode, Rank,
    SpcSnapshot, World, ANY_TAG,
};
use fairmpi_vsim::{
    Machine, MultirateResult, MultirateSim, SimAssignment, SimDesign, SimMatchLayout, SimProgress,
};

/// How communication entities map onto ranks (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Pair *i* is ranks (2i, 2i+1), each driven by one thread — the
    /// process-to-process baseline.
    Processes,
    /// Two ranks; pair *i* is sender thread *i* on rank 0 and receiver
    /// thread *i* on rank 1 — the `MPI_THREAD_MULTIPLE` mode under study.
    Threads,
    /// Hybrid (the middle panel of paper Fig. 2): sender threads share
    /// rank 0 while each receiver is its own single-threaded rank `1+i`.
    ThreadProcess,
}

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct MultirateConfig {
    /// Communicating pairs.
    pub pairs: usize,
    /// Entity mapping.
    pub mode: Mode,
    /// Outstanding operations per iteration (the paper uses 128).
    pub window: usize,
    /// Iterations (windows) per pair.
    pub iterations: usize,
    /// Payload size in bytes (0 in the paper's two-sided experiments:
    /// "they allow us to capture only the cost of the message envelope").
    pub msg_size: usize,
    /// Give each pair its own communicator (enables OB1's per-communicator
    /// concurrent matching — Fig. 3c).
    pub comm_per_pair: bool,
    /// Post receives with `MPI_ANY_TAG` (Fig. 4's queue-search bypass).
    pub any_tag: bool,
    /// Runtime design under test.
    pub design: DesignConfig,
    /// Fabric cost model for the native backend.
    pub fabric: fairmpi::FabricConfig,
}

impl Default for MultirateConfig {
    fn default() -> Self {
        Self {
            pairs: 2,
            mode: Mode::Threads,
            window: 128,
            iterations: 10,
            msg_size: 0,
            comm_per_pair: false,
            any_tag: false,
            design: DesignConfig::default(),
            fabric: fairmpi::FabricConfig::test_default(),
        }
    }
}

impl MultirateConfig {
    /// Total messages the run will transfer.
    pub fn total_messages(&self) -> u64 {
        (self.pairs * self.window * self.iterations) as u64
    }
}

/// Result of a native (wall-clock) run.
#[derive(Debug, Clone)]
pub struct MultirateReport {
    /// Aggregate message rate (messages per wall-clock second).
    pub msg_rate_per_s: f64,
    /// Wall-clock duration of the measured phase in nanoseconds.
    pub elapsed_ns: u64,
    /// Messages transferred.
    pub total_messages: u64,
    /// Merged counters across all ranks.
    pub spc: SpcSnapshot,
}

fn pair_tag(pair: usize) -> i32 {
    pair as i32
}

/// One sender entity: `iterations` windows of `window` isends.
fn run_sender(proc: &Proc, dst: Rank, comm: Communicator, cfg: &MultirateConfig, pair: usize) {
    let payload = vec![0u8; cfg.msg_size];
    for _ in 0..cfg.iterations {
        let reqs: Vec<_> = (0..cfg.window)
            .map(|_| {
                proc.isend(&payload, dst, pair_tag(pair), comm)
                    .expect("isend")
            })
            .collect();
        proc.waitall(&reqs).expect("sender waitall");
    }
}

/// One receiver entity: `iterations` windows of `window` irecvs.
fn run_receiver(proc: &Proc, src: Rank, comm: Communicator, cfg: &MultirateConfig, pair: usize) {
    let tag = if cfg.any_tag { ANY_TAG } else { pair_tag(pair) };
    for _ in 0..cfg.iterations {
        let reqs: Vec<_> = (0..cfg.window)
            .map(|_| {
                proc.irecv(cfg.msg_size, src as i32, tag, comm)
                    .expect("irecv")
            })
            .collect();
        proc.waitall(&reqs).expect("receiver waitall");
    }
}

/// Execute the benchmark on real OS threads over the real runtime.
pub fn run_native(cfg: &MultirateConfig) -> MultirateReport {
    assert!(cfg.pairs >= 1 && cfg.window >= 1 && cfg.iterations >= 1);
    let (world, endpoints) = build_world(cfg);
    let world = Arc::new(world);

    let start = Instant::now();
    crossbeam::thread::scope(|scope| {
        for (pair, &(s_rank, r_rank, comm)) in endpoints.iter().enumerate() {
            let sender_world = Arc::clone(&world);
            let cfg2 = cfg.clone();
            scope.spawn(move |_| {
                let p = sender_world.proc(s_rank);
                run_sender(&p, r_rank, comm, &cfg2, pair);
            });
            let receiver_world = Arc::clone(&world);
            let cfg2 = cfg.clone();
            scope.spawn(move |_| {
                let p = receiver_world.proc(r_rank);
                run_receiver(&p, s_rank, comm, &cfg2, pair);
            });
        }
    })
    .expect("benchmark threads");
    let elapsed_ns = start.elapsed().as_nanos() as u64;

    let total = cfg.total_messages();
    MultirateReport {
        msg_rate_per_s: total as f64 / (elapsed_ns as f64 / 1e9),
        elapsed_ns,
        total_messages: total,
        spc: world.spc_merged(),
    }
}

/// Build the world and the per-pair `(sender rank, receiver rank, comm)`
/// wiring for the configured mode.
fn build_world(cfg: &MultirateConfig) -> (World, Vec<(Rank, Rank, Communicator)>) {
    let ranks = match cfg.mode {
        Mode::Processes => 2 * cfg.pairs,
        Mode::Threads => 2,
        Mode::ThreadProcess => 1 + cfg.pairs,
    };
    let world = World::builder()
        .ranks(ranks)
        .fabric(cfg.fabric.clone())
        .design(cfg.design)
        .build();
    let endpoints = (0..cfg.pairs)
        .map(|pair| {
            let comm = if cfg.comm_per_pair {
                world.new_comm_with(cfg.design.allow_overtaking)
            } else {
                world.comm_world()
            };
            match cfg.mode {
                Mode::Processes => ((2 * pair) as Rank, (2 * pair + 1) as Rank, comm),
                Mode::Threads => (0, 1, comm),
                Mode::ThreadProcess => (0, (1 + pair) as Rank, comm),
            }
        })
        .collect();
    (world, endpoints)
}

/// Execute the benchmark under the virtual-time executor.
///
/// Process mode maps to the simulator's private-resources-per-pair model;
/// thread mode maps designs axis-by-axis ([`DesignConfig`] →
/// [`SimDesign`]).
pub fn run_virtual(cfg: &MultirateConfig, machine: &Machine, seed: u64) -> MultirateResult {
    let design = SimDesign {
        instances: cfg.design.num_instances,
        assignment: match cfg.design.assignment {
            Assignment::RoundRobin => SimAssignment::RoundRobin,
            Assignment::Dedicated => SimAssignment::Dedicated,
        },
        progress: match cfg.design.progress {
            ProgressMode::Serial => SimProgress::Serial,
            ProgressMode::Concurrent => SimProgress::Concurrent,
        },
        matching: if cfg.comm_per_pair {
            SimMatchLayout::CommPerPair
        } else {
            // A global matching queue and a single shared communicator
            // serialize matching identically in this workload.
            debug_assert!(matches!(
                cfg.design.matching,
                MatchMode::PerCommunicator | MatchMode::Global
            ));
            SimMatchLayout::SingleComm
        },
        allow_overtaking: cfg.design.allow_overtaking,
        any_tag: cfg.any_tag,
        big_lock: matches!(cfg.design.lock_model, LockModel::GlobalCriticalSection),
        // The virtual-time backend models the two pure bindings; the
        // hybrid maps to thread-mode contention on the send side (its
        // receive side is uncontended, like process mode's).
        process_mode: matches!(cfg.mode, Mode::Processes),
        // run_hooked zeroes this itself for process-mode runs.
        offload_workers: cfg.design.offload_workers,
        // The virtual-time wire models the plan's drop/dup axes; the
        // other axes (reorder, refusal, context death) are native-only.
        chaos_drop_pm: cfg.design.chaos.as_ref().map_or(0, |p| p.drop_pm),
        chaos_dup_pm: cfg.design.chaos.as_ref().map_or(0, |p| p.dup_pm),
        chaos_seed: cfg.design.chaos.as_ref().map_or(0, |p| p.seed),
    };
    MultirateSim {
        machine: machine.clone(),
        pairs: cfg.pairs,
        window: cfg.window,
        iterations: cfg.iterations,
        design,
        seed,
        cost: None,
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairmpi::Counter;
    use fairmpi_vsim::MachinePreset;

    fn quick(mode: Mode, pairs: usize) -> MultirateConfig {
        MultirateConfig {
            pairs,
            mode,
            window: 8,
            iterations: 3,
            ..MultirateConfig::default()
        }
    }

    #[test]
    fn native_threads_mode_transfers_everything() {
        let cfg = quick(Mode::Threads, 2);
        let report = run_native(&cfg);
        assert_eq!(report.total_messages, 48);
        assert_eq!(report.spc[Counter::MessagesReceived], 48);
        assert!(report.msg_rate_per_s > 0.0);
    }

    #[test]
    fn native_thread_process_mode_transfers_everything() {
        let cfg = quick(Mode::ThreadProcess, 3);
        let report = run_native(&cfg);
        assert_eq!(report.spc[Counter::MessagesReceived], 72);
        // Receivers are distinct ranks; each got its pair's share.
    }

    #[test]
    fn native_process_mode_transfers_everything() {
        let cfg = quick(Mode::Processes, 3);
        let report = run_native(&cfg);
        assert_eq!(report.spc[Counter::MessagesReceived], 72);
    }

    #[test]
    fn native_comm_per_pair_and_overtaking() {
        let mut cfg = quick(Mode::Threads, 3);
        cfg.comm_per_pair = true;
        cfg.design = DesignConfig::builder().proposed(3).build().unwrap();
        cfg.design.allow_overtaking = true;
        cfg.any_tag = true;
        let report = run_native(&cfg);
        assert_eq!(report.spc[Counter::MessagesReceived], 72);
        assert_eq!(report.spc[Counter::OutOfSequenceMessages], 0);
    }

    #[test]
    fn native_nonzero_payload() {
        let mut cfg = quick(Mode::Threads, 2);
        cfg.msg_size = 512;
        let report = run_native(&cfg);
        assert_eq!(
            report.spc[Counter::BytesReceived],
            48 * 512,
            "payload bytes accounted"
        );
    }

    #[test]
    fn virtual_backend_matches_config_axes() {
        let mut cfg = quick(Mode::Threads, 4);
        cfg.design = DesignConfig::builder().proposed(4).build().unwrap();
        cfg.comm_per_pair = true;
        let machine = Machine::preset(MachinePreset::Alembert);
        let result = run_virtual(&cfg, &machine, 42);
        assert_eq!(result.total_messages, cfg.total_messages());
        assert_eq!(result.spc[Counter::MessagesReceived], result.total_messages);
    }

    #[test]
    fn virtual_process_mode() {
        let cfg = quick(Mode::Processes, 4);
        let machine = Machine::preset(MachinePreset::Alembert);
        let result = run_virtual(&cfg, &machine, 42);
        assert_eq!(result.spc[Counter::MessagesReceived], result.total_messages);
    }

    #[test]
    fn total_messages_formula() {
        let cfg = MultirateConfig {
            pairs: 20,
            window: 128,
            iterations: 1010,
            ..MultirateConfig::default()
        };
        // Table II's caption: total messages = 2,585,600 at 20 pairs.
        assert_eq!(cfg.total_messages(), 2_585_600);
    }
}
