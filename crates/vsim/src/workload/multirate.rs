//! Multirate–pairwise under virtual time.
//!
//! N sender threads on rank 0 stream 0-byte messages to N receiver threads
//! on rank 1 (paper Fig. 2, thread↔thread mode; process mode replaces the
//! threads with independent single-threaded processes). The actors run the
//! **real** matching engine and the **real** send-side sequence counters;
//! only time, locks and cores are virtual. Out-of-sequence percentages and
//! match times (Table II) therefore come out of the actual data structures.

use std::cell::RefCell;
use std::collections::{HashSet, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

use fairmpi_chaos::XorShift64;
use fairmpi_trace::SpcSeries;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fairmpi_fabric::{Envelope, Packet, ANY_TAG};
use fairmpi_matching::{MatchEvent, Matcher, PostOutcome, PostedRecv, SendSequencer};
use fairmpi_spc::{Counter, Histogram, SpcSet, SpcSnapshot, Watermark};

use crate::cost::CostModel;
use crate::engine::{Action, Actor, LockId, Resume, Sim, WorldAccess};
use crate::machine::Machine;
use crate::workload::{SimAssignment, SimProgress};

/// How matching state is laid out across pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMatchLayout {
    /// All pairs share one communicator (one matcher, one matching lock) —
    /// the configuration of paper Figs. 3a/3b.
    SingleComm,
    /// One communicator per pair (a matcher and lock each) — the
    /// "concurrent matching" configuration of Fig. 3c.
    CommPerPair,
}

/// One design point of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimDesign {
    /// Number of CRIs per rank.
    pub instances: usize,
    /// Instance assignment strategy (Algorithm 1).
    pub assignment: SimAssignment,
    /// Progress-engine design (Algorithm 2 or the serial original).
    pub progress: SimProgress,
    /// Matching layout.
    pub matching: SimMatchLayout,
    /// `mpi_assert_allow_overtaking`: skip sequence validation (Fig. 4).
    pub allow_overtaking: bool,
    /// Receivers post `MPI_ANY_TAG` so every message matches the head of
    /// the posted queue (Fig. 4's queue-search elimination).
    pub any_tag: bool,
    /// Emulate a big-lock implementation: one process-wide critical
    /// section around the send path and each whole progress pass (the
    /// IMPI / MPICH threaded baselines of Fig. 5).
    pub big_lock: bool,
    /// Process mode: each pair is a pair of single-threaded processes with
    /// private resources (the process-mode baselines of Fig. 5).
    pub process_mode: bool,
    /// Software offload: this many dedicated communication workers per
    /// side, each owning one instance. Application threads only enqueue
    /// command descriptors (lock-free) and poll completions; the workers
    /// do all injection, extraction and matching. 0 disables offload
    /// (and it is ignored under `big_lock` or `process_mode`).
    pub offload_workers: usize,
    /// Chaos: per-mille probability that a shipped frame is dropped on
    /// the wire, repaired by timeout-and-retransmit at the cost model's
    /// `retransmit_timeout_ns` with exponential backoff. 0 disables.
    pub chaos_drop_pm: u16,
    /// Chaos: per-mille probability that a shipped frame arrives twice;
    /// the receive path suppresses the duplicate. 0 disables.
    pub chaos_dup_pm: u16,
    /// Seed of the chaos RNG stream. Deliberately separate from the run
    /// seed so arming chaos never perturbs the scheduler's draws.
    pub chaos_seed: u64,
}

impl SimDesign {
    /// The original Open MPI threaded design (the red baseline of Fig. 3).
    pub fn baseline() -> Self {
        Self {
            instances: 1,
            assignment: SimAssignment::RoundRobin,
            progress: SimProgress::Serial,
            matching: SimMatchLayout::SingleComm,
            allow_overtaking: false,
            any_tag: false,
            big_lock: false,
            process_mode: false,
            offload_workers: 0,
            chaos_drop_pm: 0,
            chaos_dup_pm: 0,
            chaos_seed: 0,
        }
    }

    /// Process-mode baseline (pairs of single-threaded processes).
    pub fn process_mode() -> Self {
        Self {
            process_mode: true,
            matching: SimMatchLayout::CommPerPair,
            ..Self::baseline()
        }
    }

    /// The software-offload design point: `workers` dedicated communication
    /// threads per side, each with a dedicated instance (mirrors
    /// `DesignConfig::builder().offload(n)` in `fairmpi`). Composes with per-communicator
    /// matching — without it every pair's posted receives share one PRQ and
    /// the workers' match traversals grow with the pair count, burying the
    /// benefit of the lock-free submission path.
    pub fn offload(workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            instances: workers,
            assignment: SimAssignment::Dedicated,
            progress: SimProgress::Concurrent,
            matching: SimMatchLayout::CommPerPair,
            offload_workers: workers,
            ..Self::baseline()
        }
    }

    /// Arm the lossy-wire model on this design (the degradation grids
    /// sweep `drop_pm` through this).
    pub fn chaos(mut self, drop_pm: u16, dup_pm: u16, seed: u64) -> Self {
        self.chaos_drop_pm = drop_pm;
        self.chaos_dup_pm = dup_pm;
        self.chaos_seed = seed;
        self
    }
}

/// A Multirate–pairwise experiment.
#[derive(Debug, Clone)]
pub struct MultirateSim {
    /// Simulated testbed.
    pub machine: Machine,
    /// Number of communicating pairs (threads or processes per side).
    pub pairs: usize,
    /// Outstanding-receive window (the paper uses 128).
    pub window: usize,
    /// Windows per pair; total messages = pairs × window × iterations.
    pub iterations: usize,
    /// Design under test.
    pub design: SimDesign,
    /// RNG seed (wire jitter).
    pub seed: u64,
    /// Override the cost model (default: derived from the machine's
    /// fabric). Used by the Fig. 5 harness to apply per-implementation
    /// software-overhead emulation constants.
    pub cost: Option<CostModel>,
}

/// The outcome of one run.
#[derive(Debug, Clone)]
pub struct MultirateResult {
    /// Aggregate message rate over the virtual makespan.
    pub msg_rate_per_s: f64,
    /// Virtual makespan in nanoseconds.
    pub makespan_ns: u64,
    /// Messages transferred.
    pub total_messages: u64,
    /// Counters (out-of-sequence, match time, ...), receiver side included.
    pub spc: SpcSnapshot,
}

// ---------------------------------------------------------------------
// Shared world
// ---------------------------------------------------------------------

const DRAIN_BATCH: usize = 32;

/// Simulated offload command-queue capacity (the native default of
/// `fairmpi_offload::OffloadConfig`). Enqueues against a full queue stall
/// and count [`Counter::OffloadBackpressureStalls`].
const OFFLOAD_QUEUE_CAP: usize = 1024;

fn pack(comm: u32, tag: u16, seq: u64) -> u64 {
    debug_assert!(comm < 1 << 15, "too many communicators to pack");
    debug_assert!(seq < 1 << 32, "sequence number overflows packing");
    ((comm as u64) << 48) | ((tag as u64) << 32) | seq
}

fn unpack(payload: u64) -> Packet {
    let comm = (payload >> 48) as u32;
    let tag = ((payload >> 32) & 0xffff) as i32;
    let seq = payload & 0xffff_ffff;
    Packet::eager(
        Envelope {
            src: 0,
            dst: 1,
            comm,
            tag,
            seq,
        },
        Vec::new(),
    )
}

fn payload_comm(payload: u64) -> u32 {
    (payload >> 48) as u32
}

/// The simulated lossy wire: the fault schedule's own deterministic RNG
/// stream (never the scheduler's — arming chaos must not perturb the
/// jitter draws of an otherwise identical run) plus the receiver-side
/// duplicate-suppression set.
struct ChaosWire {
    rng: XorShift64,
    drop_pm: u16,
    dup_pm: u16,
    /// Payload words already matched once (dedup key: the packed
    /// (comm, tag, seq) word, unique per logical message).
    seen: HashSet<u64>,
}

/// What the chaos wire did to one shipped frame.
#[derive(Clone, Copy, PartialEq, Eq)]
enum WireVerdict {
    Deliver,
    Drop,
    Duplicate,
}

/// Shared state: receiver rings, the real matchers and sequencers.
pub(crate) struct MrWorld {
    design: SimDesign,
    chaos: Option<ChaosWire>,
    rings: Vec<VecDeque<u64>>,
    matchers: Vec<Matcher>,
    sequencers: Vec<SendSequencer>,
    spc: Arc<SpcSet>,
    /// Completed receives per receiver thread (request tokens == thread id).
    recv_done: Vec<u64>,
    /// Sum of `recv_done` (the offload workers' termination check).
    received: u64,
    /// Offload: send command descriptors awaiting a worker (payload words).
    cmd_send: VecDeque<u64>,
    /// Offload: receive-post commands awaiting a worker (receiver ids).
    cmd_recv: VecDeque<usize>,
    /// Senders that have finished enqueueing (offload workers drain until
    /// every sender is done *and* the command queue is empty).
    senders_done: usize,
    rr_send: u64,
    rr_recv: u64,
    rng: SmallRng,
    scratch: Vec<MatchEvent>,
}

impl WorldAccess for MrWorld {
    fn deliver(&mut self, mailbox: usize, payload: u64) {
        self.rings[mailbox].push_back(payload);
        self.spc
            .record_level(Watermark::InstanceRxDepth, self.rings[mailbox].len() as u64);
    }
}

impl MrWorld {
    fn matcher_index(&self, comm: u32) -> usize {
        match self.design.matching {
            SimMatchLayout::SingleComm => 0,
            SimMatchLayout::CommPerPair => comm as usize,
        }
    }

    fn jitter(&mut self, max: u64) -> u64 {
        if max == 0 {
            0
        } else {
            self.rng.gen_range(0..=max)
        }
    }

    fn note_received(&mut self, token: usize) {
        self.recv_done[token] += 1;
        self.received += 1;
    }

    /// Lock-free command enqueue (the whole point: no lock action here).
    /// Returns false — after counting a backpressure stall — when full.
    fn offload_enqueue(&mut self, cmd: OffloadCmd) -> bool {
        let queue_len = match cmd {
            OffloadCmd::Send(payload) => {
                if self.cmd_send.len() >= OFFLOAD_QUEUE_CAP {
                    self.spc.inc(Counter::OffloadBackpressureStalls);
                    return false;
                }
                self.cmd_send.push_back(payload);
                self.cmd_send.len()
            }
            OffloadCmd::Recv(id) => {
                if self.cmd_recv.len() >= OFFLOAD_QUEUE_CAP {
                    self.spc.inc(Counter::OffloadBackpressureStalls);
                    return false;
                }
                self.cmd_recv.push_back(id);
                self.cmd_recv.len()
            }
        };
        self.spc.inc(Counter::OffloadCommands);
        self.spc
            .record_level(Watermark::OffloadQueueDepth, queue_len as u64);
        true
    }

    /// Pop up to `DRAIN_BATCH` packets from one instance ring into `batch`;
    /// returns the extraction cost.
    fn extract_into(&mut self, instance: usize, batch: &mut Vec<u64>, cost: &CostModel) -> u64 {
        batch.clear();
        let ring = &mut self.rings[instance];
        while batch.len() < DRAIN_BATCH {
            match ring.pop_front() {
                Some(p) => batch.push(p),
                None => break,
            }
        }
        self.spc
            .add(Counter::CompletionsDrained, batch.len() as u64);
        self.spc
            .record_hist(Histogram::DrainBatchSize, batch.len() as u64);
        cost.extraction_ns * batch.len() as u64
    }

    /// Wire verdict for one shipped frame: a single per-mille draw with
    /// cumulative bands, mutually exclusive, exactly like the native
    /// fabric's chaos hook.
    fn chaos_ship(&mut self) -> WireVerdict {
        let Some(chaos) = &mut self.chaos else {
            return WireVerdict::Deliver;
        };
        let r = chaos.rng.draw_pm();
        if r < chaos.drop_pm {
            self.spc.inc(Counter::ChaosDrops);
            WireVerdict::Drop
        } else if r < chaos.drop_pm + chaos.dup_pm {
            self.spc.inc(Counter::ChaosDups);
            WireVerdict::Duplicate
        } else {
            WireVerdict::Deliver
        }
    }

    /// Deliver one drained packet through the real matcher; returns the
    /// virtual cost of the work performed and the completions it produced.
    fn match_deliver(&mut self, payload: u64, cost: &CostModel) -> (u64, usize) {
        if let Some(chaos) = &mut self.chaos {
            // Reliable-transport dedup: a duplicated frame is recognized
            // and discarded before it reaches the matcher, for no more
            // than its extraction cost.
            if !chaos.seen.insert(payload) {
                self.spc.inc(Counter::DuplicatesSuppressed);
                return (cost.extraction_ns, 0);
            }
        }
        let packet = unpack(payload);
        let idx = self.matcher_index(packet.envelope.comm);
        let mut events = std::mem::take(&mut self.scratch);
        events.clear();
        let work = self.matchers[idx].deliver(packet, &mut events);
        let mut got = 0;
        for ev in events.drain(..) {
            self.note_received(ev.token as usize);
            got += 1;
        }
        self.scratch = events;
        let cost_ns = cost.match_time_ns(&work);
        self.spc.add(Counter::MatchTimeNanos, cost_ns);
        (cost_ns, got)
    }
}

/// A simulated offload command descriptor.
enum OffloadCmd {
    /// A packed send payload, ready to inject.
    Send(u64),
    /// "Post one receive for receiver `id`".
    Recv(usize),
}

#[derive(Clone)]
struct Wiring {
    instances: usize,
    wire_latency: u64,
    jitter: u64,
    big: LockId,
    /// Send-side request-pool locks (one per process: a single entry in
    /// thread mode, one per pair in process mode).
    send_pools: Arc<[LockId]>,
    /// Receive-side request-pool locks.
    recv_pools: Arc<[LockId]>,
}

impl Wiring {
    fn send_pool(&self, pair: usize) -> LockId {
        self.send_pools[pair % self.send_pools.len()]
    }
    fn recv_pool(&self, pair: usize) -> LockId {
        self.recv_pools[pair % self.recv_pools.len()]
    }
}

// ---------------------------------------------------------------------
// Sender actor
// ---------------------------------------------------------------------

enum SState {
    /// Pick the next message (draw seq) or finish.
    Next,
    /// Software overhead charged; grab the shared request pool.
    PoolAcquire,
    /// Pool held: charge the allocation.
    PoolCharge,
    /// Release the pool, then go for the instance.
    PoolRelease,
    /// Acquire the instance (or big) lock.
    Acquire,
    /// Lock granted; charge injection.
    Inject,
    /// Injection done; ship on the wire.
    Ship,
    /// Chaos duplicated the frame: post the second copy.
    ShipDup,
    /// Chaos dropped the frame: the (virtual) ack timeout elapsed with
    /// nothing to show; back off, then re-acquire and re-inject.
    RetryBackoff,
    /// Shipped; release the lock.
    Release,
    /// Offload mode: lock-free enqueue onto the command queue (retried
    /// with a short nap when the queue is full — backpressure).
    OffloadEnqueue,
}

struct Sender {
    pair: usize,
    comm: u32,
    remaining: u64,
    state: SState,
    cost: CostModel,
    design: SimDesign,
    wiring: Wiring,
    send_locks: Arc<[LockId]>,
    cur_instance: usize,
    cur_payload: u64,
    /// Retransmit attempts for the in-hand frame (chaos only).
    attempt: u32,
}

impl Sender {
    fn lock_id(&self) -> LockId {
        if self.design.big_lock {
            self.wiring.big
        } else {
            self.send_locks[self.cur_instance]
        }
    }
}

impl Actor<MrWorld> for Sender {
    fn step(&mut self, _resume: Resume, _now: u64, world: &mut MrWorld) -> Action {
        match self.state {
            SState::Next => {
                if self.remaining == 0 {
                    world.senders_done += 1;
                    return Action::Done;
                }
                self.remaining -= 1;
                // Draw the sequence number *now*, before acquiring the
                // instance — the variable delay between the draw and
                // the injection is what lets threads overtake each
                // other and produce out-of-sequence arrivals. (In offload
                // mode the draw happens at enqueue time, in program order,
                // exactly like the native runtime.)
                let seq = world.sequencers[world.matcher_index(self.comm)].next(0);
                self.cur_payload = pack(self.comm, self.pair as u16, seq);
                self.state = if self.design.big_lock {
                    // The big lock already serializes everything; the
                    // pool is not a separate bottleneck there.
                    SState::Acquire
                } else if self.design.offload_workers > 0 {
                    // Offload: the descriptor *is* the command-ring slot,
                    // so submission never touches the process-shared
                    // request pool — the serialization that pins every
                    // other thread-mode design to the pool ceiling.
                    SState::OffloadEnqueue
                } else {
                    SState::PoolAcquire
                };
                Action::Compute(self.cost.send_software_ns)
            }
            SState::PoolAcquire => {
                self.state = SState::PoolCharge;
                Action::Lock(self.wiring.send_pool(self.pair))
            }
            SState::PoolCharge => {
                self.state = SState::PoolRelease;
                Action::Compute(self.cost.request_pool_ns)
            }
            SState::PoolRelease => {
                self.state = if self.design.offload_workers > 0 {
                    SState::OffloadEnqueue
                } else {
                    SState::Acquire
                };
                Action::Unlock(self.wiring.send_pool(self.pair))
            }
            SState::OffloadEnqueue => {
                if world.offload_enqueue(OffloadCmd::Send(self.cur_payload)) {
                    self.state = SState::Next;
                    Action::Compute(self.cost.offload_enqueue_ns)
                } else {
                    // Queue full: nap and retry (the Yield backpressure
                    // policy). The descriptor and its seq are kept.
                    Action::Sleep(500)
                }
            }
            SState::Acquire => {
                self.cur_instance = if self.design.process_mode {
                    self.pair % self.wiring.instances
                } else {
                    match self.design.assignment {
                        SimAssignment::Dedicated => self.pair % self.wiring.instances,
                        SimAssignment::RoundRobin => {
                            world.rr_send += 1;
                            (world.rr_send - 1) as usize % self.wiring.instances
                        }
                    }
                };
                self.state = SState::Inject;
                Action::Lock(self.lock_id())
            }
            SState::Inject => {
                self.state = SState::Ship;
                Action::Compute(self.cost.injection_time_ns(0, 28))
            }
            SState::Ship => {
                // A unique message counts as sent on its first injection,
                // whatever the wire then does to it; retransmits don't.
                if self.attempt == 0 {
                    world.spc.inc(Counter::MessagesSent);
                }
                match world.chaos_ship() {
                    WireVerdict::Drop => {
                        // The sender only learns of the loss when the ack
                        // timeout fires: release the instance and back off.
                        self.state = SState::RetryBackoff;
                        Action::Unlock(self.lock_id())
                    }
                    verdict => {
                        let delay = self.wiring.wire_latency + world.jitter(self.wiring.jitter);
                        self.attempt = 0;
                        self.state = if verdict == WireVerdict::Duplicate {
                            SState::ShipDup
                        } else {
                            SState::Release
                        };
                        Action::Post {
                            mailbox: self.cur_instance,
                            payload: self.cur_payload,
                            delay_ns: delay,
                        }
                    }
                }
            }
            SState::ShipDup => {
                let delay = self.wiring.wire_latency + world.jitter(self.wiring.jitter);
                self.state = SState::Release;
                Action::Post {
                    mailbox: self.cur_instance,
                    payload: self.cur_payload,
                    delay_ns: delay,
                }
            }
            SState::RetryBackoff => {
                let backoff = self.cost.retransmit_timeout_ns << self.attempt.min(6);
                self.attempt += 1;
                world.spc.inc(Counter::Retransmits);
                world.spc.add(Counter::RetryBackoffNanos, backoff);
                self.state = SState::Acquire;
                Action::Sleep(backoff)
            }
            SState::Release => {
                self.state = SState::Next;
                Action::Unlock(self.lock_id())
            }
        }
    }
}

// ---------------------------------------------------------------------
// Receiver actor
// ---------------------------------------------------------------------

enum RState {
    /// Top of the loop: post, progress, or finish.
    Idle,
    /// Grab the receive-side request pool before posting.
    PoolAcquire,
    /// Pool held: charge the allocation.
    PoolCharge,
    /// Release the pool.
    PoolRelease,
    /// Acquire the match lock to post one receive.
    PostLock,
    /// Holding the match lock: post through the real matcher, charge.
    PostCharge,
    /// Release the match lock after posting.
    PostUnlock,
    /// Begin one progress pass.
    Progress,
    /// Serial mode: result of the global gate try-lock.
    GateTried,
    /// Result of an instance try-lock (both progress designs; the gate
    /// holder also try-locks, skipping instances busy with senders).
    ConcTried,
    /// Holding an instance lock: extract a batch, charge extraction.
    Extract,
    /// Release the instance lock, then match the batch.
    InstanceUnlock,
    /// Acquire the match lock for the next drained packet.
    MatchLock,
    /// Holding the match lock: deliver through the real matcher, charge.
    MatchCharge,
    /// Release the match lock, continue the batch.
    MatchUnlock,
    /// Batch finished: advance the sweep or end the pass.
    NextInstance,
    /// Serial mode: release the gate at the end of the pass.
    ReleaseGate,
    /// Big-lock mode: acquire the global critical section for the pass.
    BigAcquire,
    /// Big-lock mode: extract from the next instance (no inner locks).
    BigExtract,
    /// Big-lock mode: match the batch (no inner locks).
    BigMatch,
    /// Big-lock mode: release the critical section.
    BigRelease,
    /// Nothing found: charge an empty poll.
    IdlePoll,
    /// Then yield the core.
    IdleYield,
    /// Offload mode: lock-free enqueue of a receive-post command.
    OffloadPost,
}

struct Receiver {
    id: usize,
    comm: u32,
    tag: i32,
    window: usize,
    iterations: usize,
    cost: CostModel,
    design: SimDesign,
    wiring: Wiring,
    recv_locks: Arc<[LockId]>,
    match_locks: Arc<[LockId]>,
    gate: LockId,
    state: RState,
    posted: u64,
    wait_target: u64,
    sweep: Vec<usize>,
    sweep_pos: usize,
    cur_instance: usize,
    batch: Vec<u64>,
    batch_pos: usize,
    got_this_pass: usize,
    holding_gate: bool,
    /// When the current match-lock acquisition started, for charging lock
    /// wait into the match-time counter (as OMPI's SPC does).
    match_wait_from: u64,
    /// Consecutive empty progress passes, for poll backoff.
    idle_streak: u32,
}

impl Receiver {
    fn total(&self) -> u64 {
        (self.window * self.iterations) as u64
    }

    fn match_lock_for(&self, comm: u32) -> LockId {
        match self.design.matching {
            SimMatchLayout::SingleComm => self.match_locks[0],
            SimMatchLayout::CommPerPair => self.match_locks[comm as usize],
        }
    }

    fn plan_sweep(&mut self, world: &mut MrWorld, all: bool) {
        self.sweep.clear();
        self.sweep_pos = 0;
        self.got_this_pass = 0;
        if self.design.process_mode {
            self.sweep.push(self.id % self.wiring.instances);
            return;
        }
        if all {
            self.sweep.extend(0..self.wiring.instances);
            return;
        }
        // Algorithm 2: assigned instance first, then round-robin fallback.
        let first = match self.design.assignment {
            SimAssignment::Dedicated => self.id % self.wiring.instances,
            SimAssignment::RoundRobin => {
                world.rr_recv += 1;
                (world.rr_recv - 1) as usize % self.wiring.instances
            }
        };
        for off in 0..self.wiring.instances {
            self.sweep.push((first + off) % self.wiring.instances);
        }
    }

    fn extract_batch(&mut self, world: &mut MrWorld) -> u64 {
        self.batch_pos = 0;
        world.extract_into(self.cur_instance, &mut self.batch, &self.cost)
    }

    /// Deliver one drained packet through the real matcher; returns the
    /// virtual cost of the work actually performed.
    fn match_one(&mut self, world: &mut MrWorld) -> u64 {
        let payload = self.batch[self.batch_pos];
        self.batch_pos += 1;
        let (cost, got) = world.match_deliver(payload, &self.cost);
        self.got_this_pass += got;
        cost
    }

    /// After a batch: where to next? Also books the pass as useful or
    /// wasted (the polling-overhead share the paper's designs trade off).
    fn end_of_pass_state(&mut self, world: &mut MrWorld) -> RState {
        if self.got_this_pass == 0 {
            world.spc.inc(Counter::ProgressWastedPasses);
            RState::IdlePoll
        } else {
            world.spc.inc(Counter::ProgressUsefulPasses);
            self.idle_streak = 0;
            RState::Idle
        }
    }

    /// Exponential poll backoff, capped: idle receivers must not dominate
    /// the event budget, and real progress polls also cool down under
    /// `sched_yield`.
    fn backoff_ns(&mut self) -> u64 {
        let ns = 150u64.saturating_mul(1 << self.idle_streak.min(7));
        self.idle_streak += 1;
        ns.min(20_000)
    }
}

impl Actor<MrWorld> for Receiver {
    fn step(&mut self, resume: Resume, _now: u64, world: &mut MrWorld) -> Action {
        loop {
            match self.state {
                RState::Idle => {
                    let done = world.recv_done[self.id];
                    if done >= self.total() {
                        return Action::Done;
                    }
                    if self.posted < self.total() && done >= self.wait_target {
                        self.state = if self.design.big_lock {
                            RState::PostLock
                        } else if self.design.offload_workers > 0 {
                            // Offload: the recv descriptor rides in the
                            // ring slot; no shared-pool visit.
                            RState::OffloadPost
                        } else {
                            RState::PoolAcquire
                        };
                        return Action::Compute(self.cost.recv_software_ns);
                    }
                    // Offload: the workers progress; the application thread
                    // only polls its completion queue (an empty-poll charge
                    // plus backoff — the CQ read is the cqe cost).
                    self.state = if self.design.offload_workers > 0 {
                        RState::IdlePoll
                    } else {
                        RState::Progress
                    };
                }
                RState::PoolAcquire => {
                    self.state = RState::PoolCharge;
                    return Action::Lock(self.wiring.recv_pool(self.id));
                }
                RState::PoolCharge => {
                    self.state = RState::PoolRelease;
                    return Action::Compute(self.cost.request_pool_ns);
                }
                RState::PoolRelease => {
                    self.state = if self.design.offload_workers > 0 {
                        RState::OffloadPost
                    } else {
                        RState::PostLock
                    };
                    return Action::Unlock(self.wiring.recv_pool(self.id));
                }
                RState::OffloadPost => {
                    if world.offload_enqueue(OffloadCmd::Recv(self.id)) {
                        self.posted += 1;
                        if self.posted.is_multiple_of(self.window as u64) {
                            self.wait_target = self.posted;
                        }
                        self.idle_streak = 0;
                        self.state = RState::Idle;
                        return Action::Compute(self.cost.offload_enqueue_ns);
                    }
                    return Action::Sleep(500);
                }
                RState::PostLock => {
                    self.state = RState::PostCharge;
                    self.match_wait_from = _now;
                    if self.design.big_lock {
                        return Action::Lock(self.wiring.big);
                    }
                    return Action::Lock(self.match_lock_for(self.comm));
                }
                RState::PostCharge => {
                    let recv = PostedRecv {
                        token: self.id as u64,
                        comm: self.comm,
                        src: 0,
                        tag: if self.design.any_tag {
                            ANY_TAG
                        } else {
                            self.tag
                        },
                    };
                    let idx = world.matcher_index(self.comm);
                    let (outcome, work) = world.matchers[idx].post_recv(recv);
                    if let PostOutcome::Matched(_) = outcome {
                        world.note_received(self.id);
                    }
                    self.posted += 1;
                    if self.posted.is_multiple_of(self.window as u64) {
                        self.wait_target = self.posted;
                    }
                    let cost = self.cost.match_time_ns(&work);
                    // Match time includes the wait for the matching lock,
                    // as in OMPI's SPC (the Table II number).
                    world.spc.add(
                        Counter::MatchTimeNanos,
                        cost + (_now - self.match_wait_from),
                    );
                    self.state = RState::PostUnlock;
                    return Action::Compute(cost);
                }
                RState::PostUnlock => {
                    self.state = RState::Idle;
                    if self.design.big_lock {
                        return Action::Unlock(self.wiring.big);
                    }
                    return Action::Unlock(self.match_lock_for(self.comm));
                }
                RState::Progress => {
                    world.spc.inc(Counter::ProgressCalls);
                    if self.design.big_lock {
                        self.state = RState::BigAcquire;
                        continue;
                    }
                    if self.design.process_mode {
                        self.plan_sweep(world, false);
                        self.cur_instance = self.sweep[0];
                        self.state = RState::ConcTried;
                        return Action::TryLock(self.recv_locks[self.cur_instance]);
                    }
                    match self.design.progress {
                        SimProgress::Serial => {
                            self.state = RState::GateTried;
                            return Action::TryLock(self.gate);
                        }
                        SimProgress::Concurrent => {
                            self.plan_sweep(world, false);
                            self.cur_instance = self.sweep[0];
                            self.state = RState::ConcTried;
                            return Action::TryLock(self.recv_locks[self.cur_instance]);
                        }
                    }
                }
                RState::GateTried => {
                    let Resume::TryLockResult(got) = resume else {
                        unreachable!("gate resume must carry a try-lock result");
                    };
                    if !got {
                        // Someone else is progressing; bail out like
                        // opal_progress.
                        self.state = RState::IdlePoll;
                        continue;
                    }
                    self.holding_gate = true;
                    self.plan_sweep(world, true);
                    self.cur_instance = self.sweep[0];
                    self.state = RState::ConcTried;
                    // The gate holder try-locks each instance: an instance
                    // busy with a sender is skipped and revisited on the
                    // next pass rather than queued behind the convoy.
                    return Action::TryLock(self.recv_locks[self.cur_instance]);
                }
                RState::ConcTried => {
                    let Resume::TryLockResult(got) = resume else {
                        unreachable!("instance resume must carry a try-lock result");
                    };
                    if !got {
                        world.spc.inc(Counter::InstanceTryLockFailures);
                        self.state = RState::NextInstance;
                        continue;
                    }
                    self.state = RState::Extract;
                }
                RState::Extract => {
                    let cost = self.extract_batch(world);
                    self.state = RState::InstanceUnlock;
                    return Action::Compute(cost);
                }
                RState::InstanceUnlock => {
                    self.state = RState::MatchLock;
                    return Action::Unlock(self.recv_locks[self.cur_instance]);
                }
                RState::MatchLock => {
                    if self.batch_pos >= self.batch.len() {
                        self.state = RState::NextInstance;
                        continue;
                    }
                    let comm = payload_comm(self.batch[self.batch_pos]);
                    self.state = RState::MatchCharge;
                    self.match_wait_from = _now;
                    return Action::Lock(self.match_lock_for(comm));
                }
                RState::MatchCharge => {
                    let cost = self.match_one(world);
                    world
                        .spc
                        .add(Counter::MatchTimeNanos, _now - self.match_wait_from);
                    self.state = RState::MatchUnlock;
                    return Action::Compute(cost);
                }
                RState::MatchUnlock => {
                    let comm = payload_comm(self.batch[self.batch_pos - 1]);
                    self.state = RState::MatchLock;
                    return Action::Unlock(self.match_lock_for(comm));
                }
                RState::NextInstance => {
                    self.sweep_pos += 1;
                    // Algorithm 2 ends the fallback sweep at the first
                    // instance that yielded completions; the serial gate
                    // holder sweeps everything.
                    let early_stop = !self.holding_gate && self.got_this_pass > 0;
                    if self.sweep_pos >= self.sweep.len() || early_stop {
                        if self.holding_gate {
                            self.state = RState::ReleaseGate;
                        } else {
                            self.state = self.end_of_pass_state(world);
                        }
                        continue;
                    }
                    self.cur_instance = self.sweep[self.sweep_pos];
                    self.state = RState::ConcTried;
                    return Action::TryLock(self.recv_locks[self.cur_instance]);
                }
                RState::ReleaseGate => {
                    self.holding_gate = false;
                    self.state = self.end_of_pass_state(world);
                    return Action::Unlock(self.gate);
                }
                RState::BigAcquire => {
                    self.plan_sweep(world, true);
                    self.state = RState::BigExtract;
                    return Action::Lock(self.wiring.big);
                }
                RState::BigExtract => {
                    if self.sweep_pos >= self.sweep.len() {
                        self.state = RState::BigRelease;
                        continue;
                    }
                    self.cur_instance = self.sweep[self.sweep_pos];
                    let cost = self.extract_batch(world);
                    self.state = RState::BigMatch;
                    return Action::Compute(cost);
                }
                RState::BigMatch => {
                    if self.batch_pos >= self.batch.len() {
                        self.sweep_pos += 1;
                        self.state = RState::BigExtract;
                        continue;
                    }
                    let cost = self.match_one(world);
                    return Action::Compute(cost);
                }
                RState::BigRelease => {
                    self.state = self.end_of_pass_state(world);
                    return Action::Unlock(self.wiring.big);
                }
                RState::IdlePoll => {
                    self.state = RState::IdleYield;
                    return Action::Compute(self.cost.poll_empty_ns);
                }
                RState::IdleYield => {
                    self.state = RState::Idle;
                    return Action::Sleep(self.backoff_ns());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Offload worker actors
// ---------------------------------------------------------------------

fn worker_backoff_ns(idle_streak: &mut u32) -> u64 {
    let ns = 150u64.saturating_mul(1 << (*idle_streak).min(7));
    *idle_streak += 1;
    ns.min(20_000)
}

enum WsState {
    /// Refill the local batch from the command queue (or execute it).
    Drain,
    /// Nothing queued: nap before polling again.
    IdleSleep,
    /// Take the dedicated instance lock (uncontended: one worker owns it).
    Acquire,
    /// Lock held: charge injection.
    Inject,
    /// Ship on the wire.
    Ship,
    /// Chaos duplicated the frame: post the second copy.
    ShipDup,
    /// Chaos dropped the frame: back off, then re-acquire and re-inject.
    RetryBackoff,
    /// Release the instance.
    Release,
}

/// A dedicated send-side communication thread: batch-drains the command
/// queue and injects through its own instance. Application threads never
/// touch instance locks in offload mode — this actor is the only sender
/// contending (with nobody) for `instance[w].send`.
struct SendWorker {
    instance: usize,
    pairs: usize,
    cost: CostModel,
    wiring: Wiring,
    send_locks: Arc<[LockId]>,
    state: WsState,
    batch: VecDeque<u64>,
    cur_payload: u64,
    idle_streak: u32,
    was_idle: bool,
    /// Retransmit attempts for the in-hand frame (chaos only).
    attempt: u32,
}

impl Actor<MrWorld> for SendWorker {
    fn step(&mut self, _resume: Resume, _now: u64, world: &mut MrWorld) -> Action {
        loop {
            match self.state {
                WsState::Drain => {
                    if let Some(p) = self.batch.pop_front() {
                        self.cur_payload = p;
                        self.state = WsState::Acquire;
                        continue;
                    }
                    let mut popped = 0u64;
                    while (popped as usize) < DRAIN_BATCH {
                        match world.cmd_send.pop_front() {
                            Some(p) => {
                                self.batch.push_back(p);
                                popped += 1;
                            }
                            None => break,
                        }
                    }
                    if popped > 0 {
                        world.spc.inc(Counter::OffloadBatches);
                        let wake = if self.was_idle {
                            self.cost.offload_wakeup_ns
                        } else {
                            0
                        };
                        self.was_idle = false;
                        self.idle_streak = 0;
                        return Action::Compute(wake + self.cost.offload_drain_ns * popped);
                    }
                    if world.senders_done == self.pairs {
                        return Action::Done;
                    }
                    self.was_idle = true;
                    self.state = WsState::IdleSleep;
                    return Action::Compute(self.cost.poll_empty_ns);
                }
                WsState::IdleSleep => {
                    self.state = WsState::Drain;
                    return Action::Sleep(worker_backoff_ns(&mut self.idle_streak));
                }
                WsState::Acquire => {
                    self.state = WsState::Inject;
                    return Action::Lock(self.send_locks[self.instance]);
                }
                WsState::Inject => {
                    self.state = WsState::Ship;
                    return Action::Compute(self.cost.injection_time_ns(0, 28));
                }
                WsState::Ship => {
                    // First injection of a unique message counts as sent;
                    // retransmits don't.
                    if self.attempt == 0 {
                        world.spc.inc(Counter::MessagesSent);
                    }
                    match world.chaos_ship() {
                        WireVerdict::Drop => {
                            self.state = WsState::RetryBackoff;
                            return Action::Unlock(self.send_locks[self.instance]);
                        }
                        verdict => {
                            let delay = self.wiring.wire_latency + world.jitter(self.wiring.jitter);
                            self.attempt = 0;
                            self.state = if verdict == WireVerdict::Duplicate {
                                WsState::ShipDup
                            } else {
                                WsState::Release
                            };
                            return Action::Post {
                                mailbox: self.instance,
                                payload: self.cur_payload,
                                delay_ns: delay,
                            };
                        }
                    }
                }
                WsState::ShipDup => {
                    let delay = self.wiring.wire_latency + world.jitter(self.wiring.jitter);
                    self.state = WsState::Release;
                    return Action::Post {
                        mailbox: self.instance,
                        payload: self.cur_payload,
                        delay_ns: delay,
                    };
                }
                WsState::RetryBackoff => {
                    let backoff = self.cost.retransmit_timeout_ns << self.attempt.min(6);
                    self.attempt += 1;
                    world.spc.inc(Counter::Retransmits);
                    world.spc.add(Counter::RetryBackoffNanos, backoff);
                    self.state = WsState::Acquire;
                    return Action::Sleep(backoff);
                }
                WsState::Release => {
                    self.state = WsState::Drain;
                    return Action::Unlock(self.send_locks[self.instance]);
                }
            }
        }
    }
}

enum WrState {
    /// Drain receive-post commands, or run a progress pass, or finish.
    Top,
    /// Acquire the match lock to post one commanded receive.
    PostLock,
    /// Holding the match lock: post through the real matcher.
    PostCharge,
    /// Release the match lock.
    PostUnlock,
    /// Result of an instance try-lock during the progress sweep.
    ConcTried,
    /// Holding an instance lock: extract a batch.
    Extract,
    /// Release the instance, then match the batch.
    InstanceUnlock,
    /// Acquire the match lock for the next drained packet.
    MatchLock,
    /// Holding the match lock: deliver through the real matcher.
    MatchCharge,
    /// Release the match lock, continue the batch.
    MatchUnlock,
    /// Batch finished: advance the sweep or end the pass.
    NextInstance,
    /// Empty pass: nap before polling again.
    IdleSleep,
}

/// A dedicated receive-side communication thread: posts the receives the
/// application enqueued (no per-thread ordering protocol needed here —
/// a pair's postings are interchangeable in this workload) and runs the
/// progress engine over its dedicated instance, falling back to the rest
/// of the sweep exactly like Algorithm 2.
struct RecvWorker {
    instance: usize,
    total: u64,
    cost: CostModel,
    design: SimDesign,
    wiring: Wiring,
    recv_locks: Arc<[LockId]>,
    match_locks: Arc<[LockId]>,
    state: WrState,
    cmds: VecDeque<usize>,
    cur_post: usize,
    sweep: Vec<usize>,
    sweep_pos: usize,
    cur_instance: usize,
    batch: Vec<u64>,
    batch_pos: usize,
    got_this_pass: usize,
    match_wait_from: u64,
    idle_streak: u32,
    was_idle: bool,
}

impl RecvWorker {
    fn comm_for(&self, id: usize) -> u32 {
        match self.design.matching {
            SimMatchLayout::SingleComm => 0,
            SimMatchLayout::CommPerPair => id as u32,
        }
    }

    fn match_lock_for(&self, comm: u32) -> LockId {
        match self.design.matching {
            SimMatchLayout::SingleComm => self.match_locks[0],
            SimMatchLayout::CommPerPair => self.match_locks[comm as usize],
        }
    }
}

impl Actor<MrWorld> for RecvWorker {
    fn step(&mut self, resume: Resume, _now: u64, world: &mut MrWorld) -> Action {
        loop {
            match self.state {
                WrState::Top => {
                    if let Some(id) = self.cmds.pop_front() {
                        self.cur_post = id;
                        self.state = WrState::PostLock;
                        continue;
                    }
                    let mut popped = 0u64;
                    while (popped as usize) < DRAIN_BATCH {
                        match world.cmd_recv.pop_front() {
                            Some(id) => {
                                self.cmds.push_back(id);
                                popped += 1;
                            }
                            None => break,
                        }
                    }
                    if popped > 0 {
                        world.spc.inc(Counter::OffloadBatches);
                        let wake = if self.was_idle {
                            self.cost.offload_wakeup_ns
                        } else {
                            0
                        };
                        self.was_idle = false;
                        self.idle_streak = 0;
                        return Action::Compute(wake + self.cost.offload_drain_ns * popped);
                    }
                    if world.received >= self.total {
                        return Action::Done;
                    }
                    // Progress pass: dedicated instance first, round-robin
                    // fallback over the others (Algorithm 2).
                    world.spc.inc(Counter::ProgressCalls);
                    self.sweep.clear();
                    self.sweep_pos = 0;
                    self.got_this_pass = 0;
                    for off in 0..self.wiring.instances {
                        self.sweep
                            .push((self.instance + off) % self.wiring.instances);
                    }
                    self.cur_instance = self.sweep[0];
                    self.state = WrState::ConcTried;
                    return Action::TryLock(self.recv_locks[self.cur_instance]);
                }
                WrState::PostLock => {
                    self.state = WrState::PostCharge;
                    self.match_wait_from = _now;
                    return Action::Lock(self.match_lock_for(self.comm_for(self.cur_post)));
                }
                WrState::PostCharge => {
                    let comm = self.comm_for(self.cur_post);
                    let recv = PostedRecv {
                        token: self.cur_post as u64,
                        comm,
                        src: 0,
                        tag: if self.design.any_tag {
                            ANY_TAG
                        } else {
                            self.cur_post as i32
                        },
                    };
                    let idx = world.matcher_index(comm);
                    let (outcome, work) = world.matchers[idx].post_recv(recv);
                    if let PostOutcome::Matched(_) = outcome {
                        world.note_received(self.cur_post);
                    }
                    let cost = self.cost.match_time_ns(&work);
                    world.spc.add(
                        Counter::MatchTimeNanos,
                        cost + (_now - self.match_wait_from),
                    );
                    self.state = WrState::PostUnlock;
                    return Action::Compute(cost);
                }
                WrState::PostUnlock => {
                    self.state = WrState::Top;
                    return Action::Unlock(self.match_lock_for(self.comm_for(self.cur_post)));
                }
                WrState::ConcTried => {
                    let Resume::TryLockResult(got) = resume else {
                        unreachable!("instance resume must carry a try-lock result");
                    };
                    if !got {
                        world.spc.inc(Counter::InstanceTryLockFailures);
                        self.state = WrState::NextInstance;
                        continue;
                    }
                    self.state = WrState::Extract;
                }
                WrState::Extract => {
                    self.batch_pos = 0;
                    let cost = world.extract_into(self.cur_instance, &mut self.batch, &self.cost);
                    self.state = WrState::InstanceUnlock;
                    return Action::Compute(cost);
                }
                WrState::InstanceUnlock => {
                    self.state = WrState::MatchLock;
                    return Action::Unlock(self.recv_locks[self.cur_instance]);
                }
                WrState::MatchLock => {
                    if self.batch_pos >= self.batch.len() {
                        self.state = WrState::NextInstance;
                        continue;
                    }
                    let comm = payload_comm(self.batch[self.batch_pos]);
                    self.state = WrState::MatchCharge;
                    self.match_wait_from = _now;
                    return Action::Lock(self.match_lock_for(comm));
                }
                WrState::MatchCharge => {
                    let payload = self.batch[self.batch_pos];
                    self.batch_pos += 1;
                    let (cost, got) = world.match_deliver(payload, &self.cost);
                    self.got_this_pass += got;
                    world
                        .spc
                        .add(Counter::MatchTimeNanos, _now - self.match_wait_from);
                    self.state = WrState::MatchUnlock;
                    return Action::Compute(cost);
                }
                WrState::MatchUnlock => {
                    let comm = payload_comm(self.batch[self.batch_pos - 1]);
                    self.state = WrState::MatchLock;
                    return Action::Unlock(self.match_lock_for(comm));
                }
                WrState::NextInstance => {
                    self.sweep_pos += 1;
                    let early_stop = self.got_this_pass > 0;
                    if self.sweep_pos >= self.sweep.len() || early_stop {
                        if self.got_this_pass == 0 {
                            world.spc.inc(Counter::ProgressWastedPasses);
                            self.was_idle = true;
                            self.state = WrState::IdleSleep;
                            return Action::Compute(self.cost.poll_empty_ns);
                        }
                        world.spc.inc(Counter::ProgressUsefulPasses);
                        self.idle_streak = 0;
                        self.state = WrState::Top;
                        continue;
                    }
                    self.cur_instance = self.sweep[self.sweep_pos];
                    self.state = WrState::ConcTried;
                    return Action::TryLock(self.recv_locks[self.cur_instance]);
                }
                WrState::IdleSleep => {
                    self.state = WrState::Top;
                    return Action::Sleep(worker_backoff_ns(&mut self.idle_streak));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Observation plumbing for one run (all fields optional; the default
/// observes nothing).
///
/// The external-`spc` hook is what connects the MPI_T layer: a caller
/// builds a `fairmpi_mpit::PvarRegistry` over its own `Arc<SpcSet>`,
/// passes a clone here, and every pvar read during and after the run sees
/// the exact cells the simulation updates — no copying, no translation.
#[derive(Default)]
pub struct RunHooks {
    /// Accumulate into this counter set instead of a fresh internal one.
    /// Pass a freshly created set unless deliberately aggregating runs.
    pub spc: Option<Arc<SpcSet>>,
    /// Sample the counter set every this many virtual ns into an
    /// [`SpcSeries`].
    pub series_interval_ns: Option<u64>,
    /// `(interval_ns, f)`: call `f(boundary_ns, &spc)` as virtual time
    /// crosses each interval boundary — the MPI_T-session scrape hook.
    #[allow(clippy::type_complexity)]
    pub scrape: Option<(u64, Box<dyn FnMut(u64, &SpcSet)>)>,
}

impl MultirateSim {
    /// Execute the experiment and report the virtual-time result.
    pub fn run(&self) -> MultirateResult {
        self.run_observed(None).0
    }

    /// Like [`run`](Self::run), but optionally sample the SPC set every
    /// `series_interval_ns` of virtual time for a rate time-series. Lock
    /// and actor trace tracks carry workload names (`instance[0].send`,
    /// `sender[3]`, ...) either way; the series costs nothing when tracing
    /// or sampling is off.
    pub fn run_observed(
        &self,
        series_interval_ns: Option<u64>,
    ) -> (MultirateResult, Option<SpcSeries>) {
        self.run_hooked(RunHooks {
            series_interval_ns,
            ..RunHooks::default()
        })
    }

    /// Full-control variant: external counter set, SPC series and a
    /// periodic scrape callback (see [`RunHooks`]).
    pub fn run_hooked(&self, hooks: RunHooks) -> (MultirateResult, Option<SpcSeries>) {
        assert!(self.pairs >= 1 && self.window >= 1 && self.iterations >= 1);
        let mut design = self.design;
        if design.process_mode {
            // Private resources per pair: one instance and one matching
            // domain each.
            design.instances = self.pairs;
            design.matching = SimMatchLayout::CommPerPair;
        }
        // Offload is a thread-mode design axis: single-threaded processes
        // and big-lock emulations have no command queue to model.
        if design.process_mode || design.big_lock {
            design.offload_workers = 0;
        }
        let instances = design.instances.max(1);
        let cost = self
            .cost
            .unwrap_or_else(|| CostModel::for_fabric(&self.machine.fabric));
        let spc = hooks.spc.unwrap_or_else(|| Arc::new(SpcSet::new()));
        let series_interval_ns = hooks.series_interval_ns;

        let num_comms = match design.matching {
            SimMatchLayout::SingleComm => 1,
            SimMatchLayout::CommPerPair => self.pairs,
        };
        let matchers: Vec<Matcher> = (0..num_comms)
            .map(|_| Matcher::new(Arc::clone(&spc), design.allow_overtaking))
            .collect();
        let sequencers: Vec<SendSequencer> =
            (0..num_comms).map(|_| SendSequencer::new(1)).collect();

        let world = MrWorld {
            design,
            chaos: (design.chaos_drop_pm > 0 || design.chaos_dup_pm > 0).then(|| ChaosWire {
                rng: XorShift64::new(design.chaos_seed),
                drop_pm: design.chaos_drop_pm,
                dup_pm: design.chaos_dup_pm,
                seen: HashSet::new(),
            }),
            rings: vec![VecDeque::new(); instances],
            matchers,
            sequencers,
            spc: Arc::clone(&spc),
            recv_done: vec![0; self.pairs],
            received: 0,
            cmd_send: VecDeque::new(),
            cmd_recv: VecDeque::new(),
            senders_done: 0,
            rr_send: 0,
            rr_recv: 0,
            rng: SmallRng::seed_from_u64(self.seed ^ 0x9E37_79B9),
            scratch: Vec::new(),
        };

        // Two nodes' worth of cores: senders live on node 0, receivers on
        // node 1.
        let mut params = self.machine.sched;
        params.cores = self.machine.sched.cores * 2;
        params.seed = self.seed;
        let mut sim = Sim::new(params, world);

        // Contention profiles. Instance and big locks are pthread-style
        // mutexes: heavily crowded hand-offs go through futex wake-ups
        // (the parked regime) — this is what collapses 20 threads sharing
        // one instance. Matching locks see short bursts (posting windows),
        // so they park later and cheaper. Request pools are atomic LIFOs:
        // hand-offs are cache-line transfers only.
        let mutex = |sim: &mut Sim<MrWorld>| sim.add_lock_full(70, 16, 3, 2_200);
        let match_mutex = |sim: &mut Sim<MrWorld>| sim.add_lock_full(60, 8, 6, 700);
        let cas = |sim: &mut Sim<MrWorld>| sim.add_lock_with(25, 8);
        let send_locks: Arc<[LockId]> = (0..instances).map(|_| mutex(&mut sim)).collect();
        let recv_locks: Arc<[LockId]> = (0..instances).map(|_| mutex(&mut sim)).collect();
        let match_locks: Arc<[LockId]> = (0..num_comms).map(|_| match_mutex(&mut sim)).collect();
        let gate = sim.add_lock();
        let big = mutex(&mut sim);
        let num_pools = if design.process_mode { self.pairs } else { 1 };
        let send_pools: Arc<[LockId]> = (0..num_pools).map(|_| cas(&mut sim)).collect();
        let recv_pools: Arc<[LockId]> = (0..num_pools).map(|_| cas(&mut sim)).collect();

        for (i, &l) in send_locks.iter().enumerate() {
            sim.name_lock(l, &format!("instance[{i}].send"));
        }
        for (i, &l) in recv_locks.iter().enumerate() {
            sim.name_lock(l, &format!("instance[{i}].recv"));
        }
        for (i, &l) in match_locks.iter().enumerate() {
            sim.name_lock(l, &format!("match[{i}]"));
        }
        sim.name_lock(gate, "progress.gate");
        sim.name_lock(big, "big_lock");
        for (i, &l) in send_pools.iter().enumerate() {
            sim.name_lock(l, &format!("pool.send[{i}]"));
        }
        for (i, &l) in recv_pools.iter().enumerate() {
            sim.name_lock(l, &format!("pool.recv[{i}]"));
        }

        let series = series_interval_ns.map(|ns| Rc::new(RefCell::new(SpcSeries::new(ns))));
        if let Some(series) = &series {
            let series = Rc::clone(series);
            let spc = Arc::clone(&spc);
            sim.add_tick_hook(
                series_interval_ns.unwrap(),
                Box::new(move |boundary_ns, _world| {
                    series.borrow_mut().sample(boundary_ns, &spc);
                }),
            );
        }
        if let Some((interval_ns, mut scrape)) = hooks.scrape {
            let spc = Arc::clone(&spc);
            sim.add_tick_hook(
                interval_ns,
                Box::new(move |boundary_ns, _world| scrape(boundary_ns, &spc)),
            );
        }

        let wiring = Wiring {
            instances,
            wire_latency: cost.wire_latency_ns,
            jitter: cost.delivery_jitter_ns,
            big,
            send_pools,
            recv_pools,
        };
        let per_pair = (self.window * self.iterations) as u64;

        for pair in 0..self.pairs {
            let comm = match design.matching {
                SimMatchLayout::SingleComm => 0u32,
                SimMatchLayout::CommPerPair => pair as u32,
            };
            sim.add_actor_named(
                &format!("sender[{pair}]"),
                Box::new(Sender {
                    pair,
                    comm,
                    remaining: per_pair,
                    state: SState::Next,
                    cost,
                    design,
                    wiring: wiring.clone(),
                    send_locks: Arc::clone(&send_locks),
                    cur_instance: 0,
                    cur_payload: 0,
                    attempt: 0,
                }),
            );
            sim.add_actor_named(
                &format!("recv[{pair}]"),
                Box::new(Receiver {
                    id: pair,
                    comm,
                    tag: pair as i32,
                    window: self.window,
                    iterations: self.iterations,
                    cost,
                    design,
                    wiring: wiring.clone(),
                    recv_locks: Arc::clone(&recv_locks),
                    match_locks: Arc::clone(&match_locks),
                    gate,
                    state: RState::Idle,
                    posted: 0,
                    wait_target: 0,
                    sweep: Vec::new(),
                    sweep_pos: 0,
                    cur_instance: 0,
                    batch: Vec::with_capacity(DRAIN_BATCH),
                    batch_pos: 0,
                    got_this_pass: 0,
                    holding_gate: false,
                    match_wait_from: 0,
                    idle_streak: 0,
                }),
            );
        }

        for w in 0..design.offload_workers {
            sim.add_actor_named(
                &format!("offload.send[{w}]"),
                Box::new(SendWorker {
                    instance: w % instances,
                    pairs: self.pairs,
                    cost,
                    wiring: wiring.clone(),
                    send_locks: Arc::clone(&send_locks),
                    state: WsState::Drain,
                    batch: VecDeque::with_capacity(DRAIN_BATCH),
                    cur_payload: 0,
                    idle_streak: 0,
                    was_idle: false,
                    attempt: 0,
                }),
            );
            sim.add_actor_named(
                &format!("offload.recv[{w}]"),
                Box::new(RecvWorker {
                    instance: w % instances,
                    total: per_pair * self.pairs as u64,
                    cost,
                    design,
                    wiring: wiring.clone(),
                    recv_locks: Arc::clone(&recv_locks),
                    match_locks: Arc::clone(&match_locks),
                    state: WrState::Top,
                    cmds: VecDeque::with_capacity(DRAIN_BATCH),
                    cur_post: 0,
                    sweep: Vec::new(),
                    sweep_pos: 0,
                    cur_instance: 0,
                    batch: Vec::with_capacity(DRAIN_BATCH),
                    batch_pos: 0,
                    got_this_pass: 0,
                    match_wait_from: 0,
                    idle_streak: 0,
                    was_idle: false,
                }),
            );
        }

        let total = per_pair * self.pairs as u64;
        let max_events = total.saturating_mul(400) + 20_000_000;
        let makespan = sim.run(max_events);
        drop(sim); // release the tick hook's Rc clone
        let result = MultirateResult {
            msg_rate_per_s: total as f64 / (makespan as f64 / 1e9),
            makespan_ns: makespan,
            total_messages: total,
            spc: spc.snapshot(),
        };
        let series = series.map(|s| {
            Rc::try_unwrap(s)
                .expect("tick hook dropped with the sim")
                .into_inner()
        });
        (result, series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachinePreset};

    fn sim(pairs: usize, design: SimDesign) -> MultirateSim {
        MultirateSim {
            machine: Machine::preset(MachinePreset::Alembert),
            pairs,
            window: 16,
            iterations: 4,
            design,
            seed: 7,
            cost: None,
        }
    }

    #[test]
    fn single_pair_baseline_completes_all_messages() {
        let r = sim(1, SimDesign::baseline()).run();
        assert_eq!(r.total_messages, 64);
        assert_eq!(r.spc[Counter::MessagesReceived], 64);
        assert!(r.msg_rate_per_s > 0.0);
    }

    #[test]
    fn results_are_deterministic() {
        let a = sim(4, SimDesign::baseline()).run();
        let b = sim(4, SimDesign::baseline()).run();
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(
            a.spc[Counter::OutOfSequenceMessages],
            b.spc[Counter::OutOfSequenceMessages]
        );
    }

    #[test]
    fn concurrent_senders_produce_out_of_sequence_messages() {
        let mut d = SimDesign::baseline();
        d.instances = 8;
        d.assignment = SimAssignment::Dedicated;
        let r = sim(8, d).run();
        assert_eq!(r.spc[Counter::MessagesReceived], r.total_messages);
        assert!(
            r.spc[Counter::OutOfSequenceMessages] > 0,
            "8 senders on one communicator must overtake each other"
        );
    }

    #[test]
    fn comm_per_pair_eliminates_out_of_sequence() {
        let mut d = SimDesign::baseline();
        d.instances = 8;
        d.assignment = SimAssignment::Dedicated;
        d.progress = SimProgress::Concurrent;
        d.matching = SimMatchLayout::CommPerPair;
        let r = sim(8, d).run();
        assert_eq!(r.spc[Counter::MessagesReceived], r.total_messages);
        // One sender per comm, dedicated instance: in-order per stream up
        // to wire jitter; OOS should be rare compared to the shared case.
        let shared = {
            let mut d2 = SimDesign::baseline();
            d2.instances = 8;
            d2.assignment = SimAssignment::Dedicated;
            sim(8, d2).run()
        };
        assert!(
            r.spc[Counter::OutOfSequenceMessages] < shared.spc[Counter::OutOfSequenceMessages] / 4,
            "per-pair comms: {} OOS, shared comm: {} OOS",
            r.spc[Counter::OutOfSequenceMessages],
            shared.spc[Counter::OutOfSequenceMessages]
        );
    }

    #[test]
    fn overtaking_design_never_counts_oos() {
        let mut d = SimDesign::baseline();
        d.instances = 8;
        d.allow_overtaking = true;
        d.any_tag = true;
        let r = sim(8, d).run();
        assert_eq!(r.spc[Counter::OutOfSequenceMessages], 0);
        assert_eq!(r.spc[Counter::MessagesReceived], r.total_messages);
        assert!(r.spc[Counter::OvertakenMessages] > 0);
    }

    #[test]
    fn process_mode_completes_and_scales() {
        let r1 = sim(1, SimDesign::process_mode()).run();
        let r8 = sim(8, SimDesign::process_mode()).run();
        assert_eq!(r8.spc[Counter::MessagesReceived], r8.total_messages);
        // Independent pairs: aggregate rate should grow clearly.
        assert!(
            r8.msg_rate_per_s > 4.0 * r1.msg_rate_per_s,
            "process mode should scale: 1 pair {:.0}/s, 8 pairs {:.0}/s",
            r1.msg_rate_per_s,
            r8.msg_rate_per_s
        );
    }

    #[test]
    fn run_hooked_feeds_external_set_and_scrapes_periodically() {
        use std::sync::Mutex;
        let spc = Arc::new(SpcSet::new());
        let scrapes: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&scrapes);
        let (r, series) = sim(2, SimDesign::baseline()).run_hooked(RunHooks {
            spc: Some(Arc::clone(&spc)),
            series_interval_ns: None,
            scrape: Some((
                20_000,
                Box::new(move |t, set| {
                    sink.lock()
                        .unwrap()
                        .push((t, set.get(Counter::MessagesSent)));
                }),
            )),
        });
        assert!(series.is_none());
        // The external set IS the run's set: totals agree exactly.
        assert_eq!(spc.get(Counter::MessagesReceived), r.total_messages);
        assert_eq!(spc.snapshot(), r.spc);
        let scrapes = scrapes.lock().unwrap();
        assert!(!scrapes.is_empty(), "scrape hook must fire");
        assert!(
            scrapes
                .windows(2)
                .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1),
            "boundaries and counter values must be monotonic"
        );
        assert_eq!(scrapes.last().unwrap().1, r.total_messages);
    }

    #[test]
    fn offload_design_completes_and_counts_queue_activity() {
        let spc = Arc::new(SpcSet::new());
        let (r, _) = sim(8, SimDesign::offload(2)).run_hooked(RunHooks {
            spc: Some(Arc::clone(&spc)),
            ..RunHooks::default()
        });
        assert_eq!(r.spc[Counter::MessagesReceived], r.total_messages);
        // One send command and one receive-post command per message.
        assert_eq!(r.spc[Counter::OffloadCommands], 2 * r.total_messages);
        assert!(r.spc[Counter::OffloadBatches] >= 2, "workers must batch");
        assert!(
            r.spc[Counter::OffloadBatches] <= r.spc[Counter::OffloadCommands],
            "a batch carries at least one command"
        );
        assert!(spc.watermark(Watermark::OffloadQueueDepth).high() >= 1);
    }

    #[test]
    fn offload_runs_are_deterministic() {
        let a = sim(6, SimDesign::offload(2)).run();
        let b = sim(6, SimDesign::offload(2)).run();
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.spc, b.spc);
    }

    #[test]
    fn offload_outpaces_the_big_lock_at_high_thread_counts() {
        let pairs = 20;
        let offload = sim(pairs, SimDesign::offload(2)).run();
        let mut big = SimDesign::baseline();
        big.big_lock = true;
        let big = sim(pairs, big).run();
        assert_eq!(
            offload.spc[Counter::MessagesReceived],
            offload.total_messages
        );
        assert!(
            offload.msg_rate_per_s > big.msg_rate_per_s,
            "offload {:.0}/s must beat the big lock {:.0}/s at {pairs} pairs",
            offload.msg_rate_per_s,
            big.msg_rate_per_s
        );
    }

    #[test]
    fn big_lock_design_completes() {
        let mut d = SimDesign::baseline();
        d.big_lock = true;
        let r = sim(4, d).run();
        assert_eq!(r.spc[Counter::MessagesReceived], r.total_messages);
    }

    #[test]
    fn chaos_drops_are_repaired_and_runs_stay_deterministic() {
        let mut d = SimDesign::baseline().chaos(100, 50, 5);
        d.instances = 2;
        d.assignment = SimAssignment::Dedicated;
        d.progress = SimProgress::Concurrent;
        let a = sim(4, d).run();
        assert_eq!(
            a.spc[Counter::MessagesReceived],
            a.total_messages,
            "every message must survive the lossy wire exactly once"
        );
        assert!(a.spc[Counter::ChaosDrops] > 0, "the plan must drop");
        assert!(a.spc[Counter::Retransmits] > 0);
        assert!(a.spc[Counter::RetryBackoffNanos] > 0);
        assert!(a.spc[Counter::ChaosDups] > 0, "the plan must duplicate");
        assert!(a.spc[Counter::DuplicatesSuppressed] > 0);
        let b = sim(4, d).run();
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(a.spc, b.spc);
    }

    #[test]
    fn chaos_degrades_rate_gracefully_not_to_zero() {
        let clean = sim(4, SimDesign::baseline()).run();
        let lossy = sim(4, SimDesign::baseline().chaos(400, 0, 9)).run();
        assert_eq!(lossy.spc[Counter::MessagesReceived], lossy.total_messages);
        assert!(
            lossy.makespan_ns > clean.makespan_ns,
            "retransmission must cost virtual time"
        );
        assert!(
            lossy.msg_rate_per_s > clean.msg_rate_per_s / 10.0,
            "40% drop must degrade, not collapse: clean {:.0}/s lossy {:.0}/s",
            clean.msg_rate_per_s,
            lossy.msg_rate_per_s
        );
    }

    #[test]
    fn chaos_reaches_the_offload_workers_too() {
        let r = sim(4, SimDesign::offload(2).chaos(100, 50, 13)).run();
        assert_eq!(r.spc[Counter::MessagesReceived], r.total_messages);
        assert!(r.spc[Counter::Retransmits] > 0);
        assert!(r.spc[Counter::DuplicatesSuppressed] > 0);
    }

    #[test]
    fn every_design_combination_terminates() {
        for instances in [1usize, 3] {
            for assignment in [SimAssignment::RoundRobin, SimAssignment::Dedicated] {
                for progress in [SimProgress::Serial, SimProgress::Concurrent] {
                    for matching in [SimMatchLayout::SingleComm, SimMatchLayout::CommPerPair] {
                        for allow in [false, true] {
                            let d = SimDesign {
                                instances,
                                assignment,
                                progress,
                                matching,
                                allow_overtaking: allow,
                                any_tag: allow,
                                big_lock: false,
                                process_mode: false,
                                offload_workers: 0,
                                chaos_drop_pm: 0,
                                chaos_dup_pm: 0,
                                chaos_seed: 0,
                            };
                            let r = MultirateSim {
                                machine: Machine::preset(MachinePreset::Alembert),
                                pairs: 3,
                                window: 8,
                                iterations: 2,
                                design: d,
                                seed: 3,
                                cost: None,
                            }
                            .run();
                            assert_eq!(r.spc[Counter::MessagesReceived], r.total_messages, "{d:?}");
                        }
                    }
                }
            }
        }
    }
}
