//! Multirate–pairwise under virtual time.
//!
//! N sender threads on rank 0 stream 0-byte messages to N receiver threads
//! on rank 1 (paper Fig. 2, thread↔thread mode; process mode replaces the
//! threads with independent single-threaded processes). The actors run the
//! **real** matching engine and the **real** send-side sequence counters;
//! only time, locks and cores are virtual. Out-of-sequence percentages and
//! match times (Table II) therefore come out of the actual data structures.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

use fairmpi_trace::SpcSeries;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fairmpi_fabric::{Envelope, Packet, ANY_TAG};
use fairmpi_matching::{MatchEvent, Matcher, PostOutcome, PostedRecv, SendSequencer};
use fairmpi_spc::{Counter, Histogram, SpcSet, SpcSnapshot, Watermark};

use crate::cost::CostModel;
use crate::engine::{Action, Actor, LockId, Resume, Sim, WorldAccess};
use crate::machine::Machine;
use crate::workload::{SimAssignment, SimProgress};

/// How matching state is laid out across pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMatchLayout {
    /// All pairs share one communicator (one matcher, one matching lock) —
    /// the configuration of paper Figs. 3a/3b.
    SingleComm,
    /// One communicator per pair (a matcher and lock each) — the
    /// "concurrent matching" configuration of Fig. 3c.
    CommPerPair,
}

/// One design point of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimDesign {
    /// Number of CRIs per rank.
    pub instances: usize,
    /// Instance assignment strategy (Algorithm 1).
    pub assignment: SimAssignment,
    /// Progress-engine design (Algorithm 2 or the serial original).
    pub progress: SimProgress,
    /// Matching layout.
    pub matching: SimMatchLayout,
    /// `mpi_assert_allow_overtaking`: skip sequence validation (Fig. 4).
    pub allow_overtaking: bool,
    /// Receivers post `MPI_ANY_TAG` so every message matches the head of
    /// the posted queue (Fig. 4's queue-search elimination).
    pub any_tag: bool,
    /// Emulate a big-lock implementation: one process-wide critical
    /// section around the send path and each whole progress pass (the
    /// IMPI / MPICH threaded baselines of Fig. 5).
    pub big_lock: bool,
    /// Process mode: each pair is a pair of single-threaded processes with
    /// private resources (the process-mode baselines of Fig. 5).
    pub process_mode: bool,
}

impl SimDesign {
    /// The original Open MPI threaded design (the red baseline of Fig. 3).
    pub fn baseline() -> Self {
        Self {
            instances: 1,
            assignment: SimAssignment::RoundRobin,
            progress: SimProgress::Serial,
            matching: SimMatchLayout::SingleComm,
            allow_overtaking: false,
            any_tag: false,
            big_lock: false,
            process_mode: false,
        }
    }

    /// Process-mode baseline (pairs of single-threaded processes).
    pub fn process_mode() -> Self {
        Self {
            process_mode: true,
            matching: SimMatchLayout::CommPerPair,
            ..Self::baseline()
        }
    }
}

/// A Multirate–pairwise experiment.
#[derive(Debug, Clone)]
pub struct MultirateSim {
    /// Simulated testbed.
    pub machine: Machine,
    /// Number of communicating pairs (threads or processes per side).
    pub pairs: usize,
    /// Outstanding-receive window (the paper uses 128).
    pub window: usize,
    /// Windows per pair; total messages = pairs × window × iterations.
    pub iterations: usize,
    /// Design under test.
    pub design: SimDesign,
    /// RNG seed (wire jitter).
    pub seed: u64,
    /// Override the cost model (default: derived from the machine's
    /// fabric). Used by the Fig. 5 harness to apply per-implementation
    /// software-overhead emulation constants.
    pub cost: Option<CostModel>,
}

/// The outcome of one run.
#[derive(Debug, Clone)]
pub struct MultirateResult {
    /// Aggregate message rate over the virtual makespan.
    pub msg_rate_per_s: f64,
    /// Virtual makespan in nanoseconds.
    pub makespan_ns: u64,
    /// Messages transferred.
    pub total_messages: u64,
    /// Counters (out-of-sequence, match time, ...), receiver side included.
    pub spc: SpcSnapshot,
}

// ---------------------------------------------------------------------
// Shared world
// ---------------------------------------------------------------------

const DRAIN_BATCH: usize = 32;

fn pack(comm: u32, tag: u16, seq: u64) -> u64 {
    debug_assert!(comm < 1 << 15, "too many communicators to pack");
    debug_assert!(seq < 1 << 32, "sequence number overflows packing");
    ((comm as u64) << 48) | ((tag as u64) << 32) | seq
}

fn unpack(payload: u64) -> Packet {
    let comm = (payload >> 48) as u32;
    let tag = ((payload >> 32) & 0xffff) as i32;
    let seq = payload & 0xffff_ffff;
    Packet::eager(
        Envelope {
            src: 0,
            dst: 1,
            comm,
            tag,
            seq,
        },
        Vec::new(),
    )
}

fn payload_comm(payload: u64) -> u32 {
    (payload >> 48) as u32
}

/// Shared state: receiver rings, the real matchers and sequencers.
pub(crate) struct MrWorld {
    design: SimDesign,
    rings: Vec<VecDeque<u64>>,
    matchers: Vec<Matcher>,
    sequencers: Vec<SendSequencer>,
    spc: Arc<SpcSet>,
    /// Completed receives per receiver thread (request tokens == thread id).
    recv_done: Vec<u64>,
    rr_send: u64,
    rr_recv: u64,
    rng: SmallRng,
    scratch: Vec<MatchEvent>,
}

impl WorldAccess for MrWorld {
    fn deliver(&mut self, mailbox: usize, payload: u64) {
        self.rings[mailbox].push_back(payload);
        self.spc
            .record_level(Watermark::InstanceRxDepth, self.rings[mailbox].len() as u64);
    }
}

impl MrWorld {
    fn matcher_index(&self, comm: u32) -> usize {
        match self.design.matching {
            SimMatchLayout::SingleComm => 0,
            SimMatchLayout::CommPerPair => comm as usize,
        }
    }

    fn jitter(&mut self, max: u64) -> u64 {
        if max == 0 {
            0
        } else {
            self.rng.gen_range(0..=max)
        }
    }
}

#[derive(Clone)]
struct Wiring {
    instances: usize,
    wire_latency: u64,
    jitter: u64,
    big: LockId,
    /// Send-side request-pool locks (one per process: a single entry in
    /// thread mode, one per pair in process mode).
    send_pools: Arc<[LockId]>,
    /// Receive-side request-pool locks.
    recv_pools: Arc<[LockId]>,
}

impl Wiring {
    fn send_pool(&self, pair: usize) -> LockId {
        self.send_pools[pair % self.send_pools.len()]
    }
    fn recv_pool(&self, pair: usize) -> LockId {
        self.recv_pools[pair % self.recv_pools.len()]
    }
}

// ---------------------------------------------------------------------
// Sender actor
// ---------------------------------------------------------------------

enum SState {
    /// Pick the next message (draw seq) or finish.
    Next,
    /// Software overhead charged; grab the shared request pool.
    PoolAcquire,
    /// Pool held: charge the allocation.
    PoolCharge,
    /// Release the pool, then go for the instance.
    PoolRelease,
    /// Acquire the instance (or big) lock.
    Acquire,
    /// Lock granted; charge injection.
    Inject,
    /// Injection done; ship on the wire.
    Ship,
    /// Shipped; release the lock.
    Release,
}

struct Sender {
    pair: usize,
    comm: u32,
    remaining: u64,
    state: SState,
    cost: CostModel,
    design: SimDesign,
    wiring: Wiring,
    send_locks: Arc<[LockId]>,
    cur_instance: usize,
    cur_payload: u64,
}

impl Sender {
    fn lock_id(&self) -> LockId {
        if self.design.big_lock {
            self.wiring.big
        } else {
            self.send_locks[self.cur_instance]
        }
    }
}

impl Actor<MrWorld> for Sender {
    fn step(&mut self, _resume: Resume, _now: u64, world: &mut MrWorld) -> Action {
        match self.state {
            SState::Next => {
                if self.remaining == 0 {
                    return Action::Done;
                }
                self.remaining -= 1;
                // Draw the sequence number *now*, before acquiring the
                // instance — the variable delay between the draw and
                // the injection is what lets threads overtake each
                // other and produce out-of-sequence arrivals.
                let seq = world.sequencers[world.matcher_index(self.comm)].next(0);
                self.cur_payload = pack(self.comm, self.pair as u16, seq);
                self.state = if self.design.big_lock {
                    // The big lock already serializes everything; the
                    // pool is not a separate bottleneck there.
                    SState::Acquire
                } else {
                    SState::PoolAcquire
                };
                Action::Compute(self.cost.send_software_ns)
            }
            SState::PoolAcquire => {
                self.state = SState::PoolCharge;
                Action::Lock(self.wiring.send_pool(self.pair))
            }
            SState::PoolCharge => {
                self.state = SState::PoolRelease;
                Action::Compute(self.cost.request_pool_ns)
            }
            SState::PoolRelease => {
                self.state = SState::Acquire;
                Action::Unlock(self.wiring.send_pool(self.pair))
            }
            SState::Acquire => {
                self.cur_instance = if self.design.process_mode {
                    self.pair % self.wiring.instances
                } else {
                    match self.design.assignment {
                        SimAssignment::Dedicated => self.pair % self.wiring.instances,
                        SimAssignment::RoundRobin => {
                            world.rr_send += 1;
                            (world.rr_send - 1) as usize % self.wiring.instances
                        }
                    }
                };
                self.state = SState::Inject;
                Action::Lock(self.lock_id())
            }
            SState::Inject => {
                self.state = SState::Ship;
                Action::Compute(self.cost.injection_time_ns(0, 28))
            }
            SState::Ship => {
                let delay = self.wiring.wire_latency + world.jitter(self.wiring.jitter);
                world.spc.inc(Counter::MessagesSent);
                self.state = SState::Release;
                Action::Post {
                    mailbox: self.cur_instance,
                    payload: self.cur_payload,
                    delay_ns: delay,
                }
            }
            SState::Release => {
                self.state = SState::Next;
                Action::Unlock(self.lock_id())
            }
        }
    }
}

// ---------------------------------------------------------------------
// Receiver actor
// ---------------------------------------------------------------------

enum RState {
    /// Top of the loop: post, progress, or finish.
    Idle,
    /// Grab the receive-side request pool before posting.
    PoolAcquire,
    /// Pool held: charge the allocation.
    PoolCharge,
    /// Release the pool.
    PoolRelease,
    /// Acquire the match lock to post one receive.
    PostLock,
    /// Holding the match lock: post through the real matcher, charge.
    PostCharge,
    /// Release the match lock after posting.
    PostUnlock,
    /// Begin one progress pass.
    Progress,
    /// Serial mode: result of the global gate try-lock.
    GateTried,
    /// Result of an instance try-lock (both progress designs; the gate
    /// holder also try-locks, skipping instances busy with senders).
    ConcTried,
    /// Holding an instance lock: extract a batch, charge extraction.
    Extract,
    /// Release the instance lock, then match the batch.
    InstanceUnlock,
    /// Acquire the match lock for the next drained packet.
    MatchLock,
    /// Holding the match lock: deliver through the real matcher, charge.
    MatchCharge,
    /// Release the match lock, continue the batch.
    MatchUnlock,
    /// Batch finished: advance the sweep or end the pass.
    NextInstance,
    /// Serial mode: release the gate at the end of the pass.
    ReleaseGate,
    /// Big-lock mode: acquire the global critical section for the pass.
    BigAcquire,
    /// Big-lock mode: extract from the next instance (no inner locks).
    BigExtract,
    /// Big-lock mode: match the batch (no inner locks).
    BigMatch,
    /// Big-lock mode: release the critical section.
    BigRelease,
    /// Nothing found: charge an empty poll.
    IdlePoll,
    /// Then yield the core.
    IdleYield,
}

struct Receiver {
    id: usize,
    comm: u32,
    tag: i32,
    window: usize,
    iterations: usize,
    cost: CostModel,
    design: SimDesign,
    wiring: Wiring,
    recv_locks: Arc<[LockId]>,
    match_locks: Arc<[LockId]>,
    gate: LockId,
    state: RState,
    posted: u64,
    wait_target: u64,
    sweep: Vec<usize>,
    sweep_pos: usize,
    cur_instance: usize,
    batch: Vec<u64>,
    batch_pos: usize,
    got_this_pass: usize,
    holding_gate: bool,
    /// When the current match-lock acquisition started, for charging lock
    /// wait into the match-time counter (as OMPI's SPC does).
    match_wait_from: u64,
    /// Consecutive empty progress passes, for poll backoff.
    idle_streak: u32,
}

impl Receiver {
    fn total(&self) -> u64 {
        (self.window * self.iterations) as u64
    }

    fn match_lock_for(&self, comm: u32) -> LockId {
        match self.design.matching {
            SimMatchLayout::SingleComm => self.match_locks[0],
            SimMatchLayout::CommPerPair => self.match_locks[comm as usize],
        }
    }

    fn plan_sweep(&mut self, world: &mut MrWorld, all: bool) {
        self.sweep.clear();
        self.sweep_pos = 0;
        self.got_this_pass = 0;
        if self.design.process_mode {
            self.sweep.push(self.id % self.wiring.instances);
            return;
        }
        if all {
            self.sweep.extend(0..self.wiring.instances);
            return;
        }
        // Algorithm 2: assigned instance first, then round-robin fallback.
        let first = match self.design.assignment {
            SimAssignment::Dedicated => self.id % self.wiring.instances,
            SimAssignment::RoundRobin => {
                world.rr_recv += 1;
                (world.rr_recv - 1) as usize % self.wiring.instances
            }
        };
        for off in 0..self.wiring.instances {
            self.sweep.push((first + off) % self.wiring.instances);
        }
    }

    fn extract_batch(&mut self, world: &mut MrWorld) -> u64 {
        self.batch.clear();
        self.batch_pos = 0;
        let ring = &mut world.rings[self.cur_instance];
        while self.batch.len() < DRAIN_BATCH {
            match ring.pop_front() {
                Some(p) => self.batch.push(p),
                None => break,
            }
        }
        world
            .spc
            .add(Counter::CompletionsDrained, self.batch.len() as u64);
        world
            .spc
            .record_hist(Histogram::DrainBatchSize, self.batch.len() as u64);
        self.cost.extraction_ns * self.batch.len() as u64
    }

    /// Deliver one drained packet through the real matcher; returns the
    /// virtual cost of the work actually performed.
    fn match_one(&mut self, world: &mut MrWorld) -> u64 {
        let payload = self.batch[self.batch_pos];
        self.batch_pos += 1;
        let packet = unpack(payload);
        let idx = world.matcher_index(packet.envelope.comm);
        let mut events = std::mem::take(&mut world.scratch);
        events.clear();
        let work = world.matchers[idx].deliver(packet, &mut events);
        for ev in events.drain(..) {
            world.recv_done[ev.token as usize] += 1;
            self.got_this_pass += 1;
        }
        world.scratch = events;
        let cost = self.cost.match_time_ns(&work);
        world.spc.add(Counter::MatchTimeNanos, cost);
        cost
    }

    /// After a batch: where to next? Also books the pass as useful or
    /// wasted (the polling-overhead share the paper's designs trade off).
    fn end_of_pass_state(&mut self, world: &mut MrWorld) -> RState {
        if self.got_this_pass == 0 {
            world.spc.inc(Counter::ProgressWastedPasses);
            RState::IdlePoll
        } else {
            world.spc.inc(Counter::ProgressUsefulPasses);
            self.idle_streak = 0;
            RState::Idle
        }
    }

    /// Exponential poll backoff, capped: idle receivers must not dominate
    /// the event budget, and real progress polls also cool down under
    /// `sched_yield`.
    fn backoff_ns(&mut self) -> u64 {
        let ns = 150u64.saturating_mul(1 << self.idle_streak.min(7));
        self.idle_streak += 1;
        ns.min(20_000)
    }
}

impl Actor<MrWorld> for Receiver {
    fn step(&mut self, resume: Resume, _now: u64, world: &mut MrWorld) -> Action {
        loop {
            match self.state {
                RState::Idle => {
                    let done = world.recv_done[self.id];
                    if done >= self.total() {
                        return Action::Done;
                    }
                    if self.posted < self.total() && done >= self.wait_target {
                        self.state = if self.design.big_lock {
                            RState::PostLock
                        } else {
                            RState::PoolAcquire
                        };
                        return Action::Compute(self.cost.recv_software_ns);
                    }
                    self.state = RState::Progress;
                }
                RState::PoolAcquire => {
                    self.state = RState::PoolCharge;
                    return Action::Lock(self.wiring.recv_pool(self.id));
                }
                RState::PoolCharge => {
                    self.state = RState::PoolRelease;
                    return Action::Compute(self.cost.request_pool_ns);
                }
                RState::PoolRelease => {
                    self.state = RState::PostLock;
                    return Action::Unlock(self.wiring.recv_pool(self.id));
                }
                RState::PostLock => {
                    self.state = RState::PostCharge;
                    self.match_wait_from = _now;
                    if self.design.big_lock {
                        return Action::Lock(self.wiring.big);
                    }
                    return Action::Lock(self.match_lock_for(self.comm));
                }
                RState::PostCharge => {
                    let recv = PostedRecv {
                        token: self.id as u64,
                        comm: self.comm,
                        src: 0,
                        tag: if self.design.any_tag {
                            ANY_TAG
                        } else {
                            self.tag
                        },
                    };
                    let idx = world.matcher_index(self.comm);
                    let (outcome, work) = world.matchers[idx].post_recv(recv);
                    if let PostOutcome::Matched(_) = outcome {
                        world.recv_done[self.id] += 1;
                    }
                    self.posted += 1;
                    if self.posted.is_multiple_of(self.window as u64) {
                        self.wait_target = self.posted;
                    }
                    let cost = self.cost.match_time_ns(&work);
                    // Match time includes the wait for the matching lock,
                    // as in OMPI's SPC (the Table II number).
                    world.spc.add(
                        Counter::MatchTimeNanos,
                        cost + (_now - self.match_wait_from),
                    );
                    self.state = RState::PostUnlock;
                    return Action::Compute(cost);
                }
                RState::PostUnlock => {
                    self.state = RState::Idle;
                    if self.design.big_lock {
                        return Action::Unlock(self.wiring.big);
                    }
                    return Action::Unlock(self.match_lock_for(self.comm));
                }
                RState::Progress => {
                    world.spc.inc(Counter::ProgressCalls);
                    if self.design.big_lock {
                        self.state = RState::BigAcquire;
                        continue;
                    }
                    if self.design.process_mode {
                        self.plan_sweep(world, false);
                        self.cur_instance = self.sweep[0];
                        self.state = RState::ConcTried;
                        return Action::TryLock(self.recv_locks[self.cur_instance]);
                    }
                    match self.design.progress {
                        SimProgress::Serial => {
                            self.state = RState::GateTried;
                            return Action::TryLock(self.gate);
                        }
                        SimProgress::Concurrent => {
                            self.plan_sweep(world, false);
                            self.cur_instance = self.sweep[0];
                            self.state = RState::ConcTried;
                            return Action::TryLock(self.recv_locks[self.cur_instance]);
                        }
                    }
                }
                RState::GateTried => {
                    let Resume::TryLockResult(got) = resume else {
                        unreachable!("gate resume must carry a try-lock result");
                    };
                    if !got {
                        // Someone else is progressing; bail out like
                        // opal_progress.
                        self.state = RState::IdlePoll;
                        continue;
                    }
                    self.holding_gate = true;
                    self.plan_sweep(world, true);
                    self.cur_instance = self.sweep[0];
                    self.state = RState::ConcTried;
                    // The gate holder try-locks each instance: an instance
                    // busy with a sender is skipped and revisited on the
                    // next pass rather than queued behind the convoy.
                    return Action::TryLock(self.recv_locks[self.cur_instance]);
                }
                RState::ConcTried => {
                    let Resume::TryLockResult(got) = resume else {
                        unreachable!("instance resume must carry a try-lock result");
                    };
                    if !got {
                        world.spc.inc(Counter::InstanceTryLockFailures);
                        self.state = RState::NextInstance;
                        continue;
                    }
                    self.state = RState::Extract;
                }
                RState::Extract => {
                    let cost = self.extract_batch(world);
                    self.state = RState::InstanceUnlock;
                    return Action::Compute(cost);
                }
                RState::InstanceUnlock => {
                    self.state = RState::MatchLock;
                    return Action::Unlock(self.recv_locks[self.cur_instance]);
                }
                RState::MatchLock => {
                    if self.batch_pos >= self.batch.len() {
                        self.state = RState::NextInstance;
                        continue;
                    }
                    let comm = payload_comm(self.batch[self.batch_pos]);
                    self.state = RState::MatchCharge;
                    self.match_wait_from = _now;
                    return Action::Lock(self.match_lock_for(comm));
                }
                RState::MatchCharge => {
                    let cost = self.match_one(world);
                    world
                        .spc
                        .add(Counter::MatchTimeNanos, _now - self.match_wait_from);
                    self.state = RState::MatchUnlock;
                    return Action::Compute(cost);
                }
                RState::MatchUnlock => {
                    let comm = payload_comm(self.batch[self.batch_pos - 1]);
                    self.state = RState::MatchLock;
                    return Action::Unlock(self.match_lock_for(comm));
                }
                RState::NextInstance => {
                    self.sweep_pos += 1;
                    // Algorithm 2 ends the fallback sweep at the first
                    // instance that yielded completions; the serial gate
                    // holder sweeps everything.
                    let early_stop = !self.holding_gate && self.got_this_pass > 0;
                    if self.sweep_pos >= self.sweep.len() || early_stop {
                        if self.holding_gate {
                            self.state = RState::ReleaseGate;
                        } else {
                            self.state = self.end_of_pass_state(world);
                        }
                        continue;
                    }
                    self.cur_instance = self.sweep[self.sweep_pos];
                    self.state = RState::ConcTried;
                    return Action::TryLock(self.recv_locks[self.cur_instance]);
                }
                RState::ReleaseGate => {
                    self.holding_gate = false;
                    self.state = self.end_of_pass_state(world);
                    return Action::Unlock(self.gate);
                }
                RState::BigAcquire => {
                    self.plan_sweep(world, true);
                    self.state = RState::BigExtract;
                    return Action::Lock(self.wiring.big);
                }
                RState::BigExtract => {
                    if self.sweep_pos >= self.sweep.len() {
                        self.state = RState::BigRelease;
                        continue;
                    }
                    self.cur_instance = self.sweep[self.sweep_pos];
                    let cost = self.extract_batch(world);
                    self.state = RState::BigMatch;
                    return Action::Compute(cost);
                }
                RState::BigMatch => {
                    if self.batch_pos >= self.batch.len() {
                        self.sweep_pos += 1;
                        self.state = RState::BigExtract;
                        continue;
                    }
                    let cost = self.match_one(world);
                    return Action::Compute(cost);
                }
                RState::BigRelease => {
                    self.state = self.end_of_pass_state(world);
                    return Action::Unlock(self.wiring.big);
                }
                RState::IdlePoll => {
                    self.state = RState::IdleYield;
                    return Action::Compute(self.cost.poll_empty_ns);
                }
                RState::IdleYield => {
                    self.state = RState::Idle;
                    return Action::Sleep(self.backoff_ns());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Observation plumbing for one run (all fields optional; the default
/// observes nothing).
///
/// The external-`spc` hook is what connects the MPI_T layer: a caller
/// builds a `fairmpi_mpit::PvarRegistry` over its own `Arc<SpcSet>`,
/// passes a clone here, and every pvar read during and after the run sees
/// the exact cells the simulation updates — no copying, no translation.
#[derive(Default)]
pub struct RunHooks {
    /// Accumulate into this counter set instead of a fresh internal one.
    /// Pass a freshly created set unless deliberately aggregating runs.
    pub spc: Option<Arc<SpcSet>>,
    /// Sample the counter set every this many virtual ns into an
    /// [`SpcSeries`].
    pub series_interval_ns: Option<u64>,
    /// `(interval_ns, f)`: call `f(boundary_ns, &spc)` as virtual time
    /// crosses each interval boundary — the MPI_T-session scrape hook.
    #[allow(clippy::type_complexity)]
    pub scrape: Option<(u64, Box<dyn FnMut(u64, &SpcSet)>)>,
}

impl MultirateSim {
    /// Execute the experiment and report the virtual-time result.
    pub fn run(&self) -> MultirateResult {
        self.run_observed(None).0
    }

    /// Like [`run`](Self::run), but optionally sample the SPC set every
    /// `series_interval_ns` of virtual time for a rate time-series. Lock
    /// and actor trace tracks carry workload names (`instance[0].send`,
    /// `sender[3]`, ...) either way; the series costs nothing when tracing
    /// or sampling is off.
    pub fn run_observed(
        &self,
        series_interval_ns: Option<u64>,
    ) -> (MultirateResult, Option<SpcSeries>) {
        self.run_hooked(RunHooks {
            series_interval_ns,
            ..RunHooks::default()
        })
    }

    /// Full-control variant: external counter set, SPC series and a
    /// periodic scrape callback (see [`RunHooks`]).
    pub fn run_hooked(&self, hooks: RunHooks) -> (MultirateResult, Option<SpcSeries>) {
        assert!(self.pairs >= 1 && self.window >= 1 && self.iterations >= 1);
        let mut design = self.design;
        if design.process_mode {
            // Private resources per pair: one instance and one matching
            // domain each.
            design.instances = self.pairs;
            design.matching = SimMatchLayout::CommPerPair;
        }
        let instances = design.instances.max(1);
        let cost = self
            .cost
            .unwrap_or_else(|| CostModel::for_fabric(&self.machine.fabric));
        let spc = hooks.spc.unwrap_or_else(|| Arc::new(SpcSet::new()));
        let series_interval_ns = hooks.series_interval_ns;

        let num_comms = match design.matching {
            SimMatchLayout::SingleComm => 1,
            SimMatchLayout::CommPerPair => self.pairs,
        };
        let matchers: Vec<Matcher> = (0..num_comms)
            .map(|_| Matcher::new(Arc::clone(&spc), design.allow_overtaking))
            .collect();
        let sequencers: Vec<SendSequencer> =
            (0..num_comms).map(|_| SendSequencer::new(1)).collect();

        let world = MrWorld {
            design,
            rings: vec![VecDeque::new(); instances],
            matchers,
            sequencers,
            spc: Arc::clone(&spc),
            recv_done: vec![0; self.pairs],
            rr_send: 0,
            rr_recv: 0,
            rng: SmallRng::seed_from_u64(self.seed ^ 0x9E37_79B9),
            scratch: Vec::new(),
        };

        // Two nodes' worth of cores: senders live on node 0, receivers on
        // node 1.
        let mut params = self.machine.sched;
        params.cores = self.machine.sched.cores * 2;
        params.seed = self.seed;
        let mut sim = Sim::new(params, world);

        // Contention profiles. Instance and big locks are pthread-style
        // mutexes: heavily crowded hand-offs go through futex wake-ups
        // (the parked regime) — this is what collapses 20 threads sharing
        // one instance. Matching locks see short bursts (posting windows),
        // so they park later and cheaper. Request pools are atomic LIFOs:
        // hand-offs are cache-line transfers only.
        let mutex = |sim: &mut Sim<MrWorld>| sim.add_lock_full(70, 16, 3, 2_200);
        let match_mutex = |sim: &mut Sim<MrWorld>| sim.add_lock_full(60, 8, 6, 700);
        let cas = |sim: &mut Sim<MrWorld>| sim.add_lock_with(25, 8);
        let send_locks: Arc<[LockId]> = (0..instances).map(|_| mutex(&mut sim)).collect();
        let recv_locks: Arc<[LockId]> = (0..instances).map(|_| mutex(&mut sim)).collect();
        let match_locks: Arc<[LockId]> = (0..num_comms).map(|_| match_mutex(&mut sim)).collect();
        let gate = sim.add_lock();
        let big = mutex(&mut sim);
        let num_pools = if design.process_mode { self.pairs } else { 1 };
        let send_pools: Arc<[LockId]> = (0..num_pools).map(|_| cas(&mut sim)).collect();
        let recv_pools: Arc<[LockId]> = (0..num_pools).map(|_| cas(&mut sim)).collect();

        for (i, &l) in send_locks.iter().enumerate() {
            sim.name_lock(l, &format!("instance[{i}].send"));
        }
        for (i, &l) in recv_locks.iter().enumerate() {
            sim.name_lock(l, &format!("instance[{i}].recv"));
        }
        for (i, &l) in match_locks.iter().enumerate() {
            sim.name_lock(l, &format!("match[{i}]"));
        }
        sim.name_lock(gate, "progress.gate");
        sim.name_lock(big, "big_lock");
        for (i, &l) in send_pools.iter().enumerate() {
            sim.name_lock(l, &format!("pool.send[{i}]"));
        }
        for (i, &l) in recv_pools.iter().enumerate() {
            sim.name_lock(l, &format!("pool.recv[{i}]"));
        }

        let series = series_interval_ns.map(|ns| Rc::new(RefCell::new(SpcSeries::new(ns))));
        if let Some(series) = &series {
            let series = Rc::clone(series);
            let spc = Arc::clone(&spc);
            sim.add_tick_hook(
                series_interval_ns.unwrap(),
                Box::new(move |boundary_ns, _world| {
                    series.borrow_mut().sample(boundary_ns, &spc);
                }),
            );
        }
        if let Some((interval_ns, mut scrape)) = hooks.scrape {
            let spc = Arc::clone(&spc);
            sim.add_tick_hook(
                interval_ns,
                Box::new(move |boundary_ns, _world| scrape(boundary_ns, &spc)),
            );
        }

        let wiring = Wiring {
            instances,
            wire_latency: cost.wire_latency_ns,
            jitter: cost.delivery_jitter_ns,
            big,
            send_pools,
            recv_pools,
        };
        let per_pair = (self.window * self.iterations) as u64;

        for pair in 0..self.pairs {
            let comm = match design.matching {
                SimMatchLayout::SingleComm => 0u32,
                SimMatchLayout::CommPerPair => pair as u32,
            };
            sim.add_actor_named(
                &format!("sender[{pair}]"),
                Box::new(Sender {
                    pair,
                    comm,
                    remaining: per_pair,
                    state: SState::Next,
                    cost,
                    design,
                    wiring: wiring.clone(),
                    send_locks: Arc::clone(&send_locks),
                    cur_instance: 0,
                    cur_payload: 0,
                }),
            );
            sim.add_actor_named(
                &format!("recv[{pair}]"),
                Box::new(Receiver {
                    id: pair,
                    comm,
                    tag: pair as i32,
                    window: self.window,
                    iterations: self.iterations,
                    cost,
                    design,
                    wiring: wiring.clone(),
                    recv_locks: Arc::clone(&recv_locks),
                    match_locks: Arc::clone(&match_locks),
                    gate,
                    state: RState::Idle,
                    posted: 0,
                    wait_target: 0,
                    sweep: Vec::new(),
                    sweep_pos: 0,
                    cur_instance: 0,
                    batch: Vec::with_capacity(DRAIN_BATCH),
                    batch_pos: 0,
                    got_this_pass: 0,
                    holding_gate: false,
                    match_wait_from: 0,
                    idle_streak: 0,
                }),
            );
        }

        let total = per_pair * self.pairs as u64;
        let max_events = total.saturating_mul(400) + 20_000_000;
        let makespan = sim.run(max_events);
        drop(sim); // release the tick hook's Rc clone
        let result = MultirateResult {
            msg_rate_per_s: total as f64 / (makespan as f64 / 1e9),
            makespan_ns: makespan,
            total_messages: total,
            spc: spc.snapshot(),
        };
        let series = series.map(|s| {
            Rc::try_unwrap(s)
                .expect("tick hook dropped with the sim")
                .into_inner()
        });
        (result, series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachinePreset};

    fn sim(pairs: usize, design: SimDesign) -> MultirateSim {
        MultirateSim {
            machine: Machine::preset(MachinePreset::Alembert),
            pairs,
            window: 16,
            iterations: 4,
            design,
            seed: 7,
            cost: None,
        }
    }

    #[test]
    fn single_pair_baseline_completes_all_messages() {
        let r = sim(1, SimDesign::baseline()).run();
        assert_eq!(r.total_messages, 64);
        assert_eq!(r.spc[Counter::MessagesReceived], 64);
        assert!(r.msg_rate_per_s > 0.0);
    }

    #[test]
    fn results_are_deterministic() {
        let a = sim(4, SimDesign::baseline()).run();
        let b = sim(4, SimDesign::baseline()).run();
        assert_eq!(a.makespan_ns, b.makespan_ns);
        assert_eq!(
            a.spc[Counter::OutOfSequenceMessages],
            b.spc[Counter::OutOfSequenceMessages]
        );
    }

    #[test]
    fn concurrent_senders_produce_out_of_sequence_messages() {
        let mut d = SimDesign::baseline();
        d.instances = 8;
        d.assignment = SimAssignment::Dedicated;
        let r = sim(8, d).run();
        assert_eq!(r.spc[Counter::MessagesReceived], r.total_messages);
        assert!(
            r.spc[Counter::OutOfSequenceMessages] > 0,
            "8 senders on one communicator must overtake each other"
        );
    }

    #[test]
    fn comm_per_pair_eliminates_out_of_sequence() {
        let mut d = SimDesign::baseline();
        d.instances = 8;
        d.assignment = SimAssignment::Dedicated;
        d.progress = SimProgress::Concurrent;
        d.matching = SimMatchLayout::CommPerPair;
        let r = sim(8, d).run();
        assert_eq!(r.spc[Counter::MessagesReceived], r.total_messages);
        // One sender per comm, dedicated instance: in-order per stream up
        // to wire jitter; OOS should be rare compared to the shared case.
        let shared = {
            let mut d2 = SimDesign::baseline();
            d2.instances = 8;
            d2.assignment = SimAssignment::Dedicated;
            sim(8, d2).run()
        };
        assert!(
            r.spc[Counter::OutOfSequenceMessages] < shared.spc[Counter::OutOfSequenceMessages] / 4,
            "per-pair comms: {} OOS, shared comm: {} OOS",
            r.spc[Counter::OutOfSequenceMessages],
            shared.spc[Counter::OutOfSequenceMessages]
        );
    }

    #[test]
    fn overtaking_design_never_counts_oos() {
        let mut d = SimDesign::baseline();
        d.instances = 8;
        d.allow_overtaking = true;
        d.any_tag = true;
        let r = sim(8, d).run();
        assert_eq!(r.spc[Counter::OutOfSequenceMessages], 0);
        assert_eq!(r.spc[Counter::MessagesReceived], r.total_messages);
        assert!(r.spc[Counter::OvertakenMessages] > 0);
    }

    #[test]
    fn process_mode_completes_and_scales() {
        let r1 = sim(1, SimDesign::process_mode()).run();
        let r8 = sim(8, SimDesign::process_mode()).run();
        assert_eq!(r8.spc[Counter::MessagesReceived], r8.total_messages);
        // Independent pairs: aggregate rate should grow clearly.
        assert!(
            r8.msg_rate_per_s > 4.0 * r1.msg_rate_per_s,
            "process mode should scale: 1 pair {:.0}/s, 8 pairs {:.0}/s",
            r1.msg_rate_per_s,
            r8.msg_rate_per_s
        );
    }

    #[test]
    fn run_hooked_feeds_external_set_and_scrapes_periodically() {
        use std::sync::Mutex;
        let spc = Arc::new(SpcSet::new());
        let scrapes: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&scrapes);
        let (r, series) = sim(2, SimDesign::baseline()).run_hooked(RunHooks {
            spc: Some(Arc::clone(&spc)),
            series_interval_ns: None,
            scrape: Some((
                20_000,
                Box::new(move |t, set| {
                    sink.lock()
                        .unwrap()
                        .push((t, set.get(Counter::MessagesSent)));
                }),
            )),
        });
        assert!(series.is_none());
        // The external set IS the run's set: totals agree exactly.
        assert_eq!(spc.get(Counter::MessagesReceived), r.total_messages);
        assert_eq!(spc.snapshot(), r.spc);
        let scrapes = scrapes.lock().unwrap();
        assert!(!scrapes.is_empty(), "scrape hook must fire");
        assert!(
            scrapes
                .windows(2)
                .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1),
            "boundaries and counter values must be monotonic"
        );
        assert_eq!(scrapes.last().unwrap().1, r.total_messages);
    }

    #[test]
    fn big_lock_design_completes() {
        let mut d = SimDesign::baseline();
        d.big_lock = true;
        let r = sim(4, d).run();
        assert_eq!(r.spc[Counter::MessagesReceived], r.total_messages);
    }

    #[test]
    fn every_design_combination_terminates() {
        for instances in [1usize, 3] {
            for assignment in [SimAssignment::RoundRobin, SimAssignment::Dedicated] {
                for progress in [SimProgress::Serial, SimProgress::Concurrent] {
                    for matching in [SimMatchLayout::SingleComm, SimMatchLayout::CommPerPair] {
                        for allow in [false, true] {
                            let d = SimDesign {
                                instances,
                                assignment,
                                progress,
                                matching,
                                allow_overtaking: allow,
                                any_tag: allow,
                                big_lock: false,
                                process_mode: false,
                            };
                            let r = MultirateSim {
                                machine: Machine::preset(MachinePreset::Alembert),
                                pairs: 3,
                                window: 8,
                                iterations: 2,
                                design: d,
                                seed: 3,
                                cost: None,
                            }
                            .run();
                            assert_eq!(r.spc[Counter::MessagesReceived], r.total_messages, "{d:?}");
                        }
                    }
                }
            }
        }
    }
}
