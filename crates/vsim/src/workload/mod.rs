//! Workload actors for the paper's two benchmarks.

pub mod multirate;
pub mod rmamt;

/// CRI assignment strategy (paper Algorithm 1), mirrored for the simulated
/// designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimAssignment {
    /// A fresh instance per operation from a shared circular counter.
    RoundRobin,
    /// Thread-local sticky assignment (thread *i* → instance `i % n`).
    Dedicated,
}

/// Progress-engine design (paper Algorithm 2 vs the original serial one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimProgress {
    /// One global progress gate; a single thread extracts at a time.
    Serial,
    /// Every thread extracts; per-instance try-locks, dedicated-first.
    Concurrent,
}
