//! RMA-MT under virtual time.
//!
//! Paper §IV-F: N benchmark threads, each bound to a core, perform 1000
//! `MPI_Put` operations per message size and then synchronize with
//! `MPI_Win_flush`. One-sided traffic needs no matching; the only points of
//! contention are the instances themselves, which is why dedicated
//! assignment scales almost perfectly while a single shared instance
//! collapses (Figs. 6 and 7).

use std::collections::VecDeque;
use std::sync::Arc;

use fairmpi_spc::{Counter, SpcSet, SpcSnapshot};

use crate::cost::CostModel;
use crate::engine::{Action, Actor, LockId, Resume, Sim, WorldAccess};
use crate::machine::Machine;
use crate::workload::{SimAssignment, SimProgress};

/// An RMA-MT experiment (one message size).
#[derive(Debug, Clone)]
pub struct RmamtSim {
    /// Simulated testbed.
    pub machine: Machine,
    /// Origin-side threads issuing puts.
    pub threads: usize,
    /// Payload bytes per put.
    pub msg_size: usize,
    /// Puts per thread before the flush (paper: 1000).
    pub ops_per_thread: usize,
    /// Instances on the origin rank (1 = the "single" series; the paper's
    /// ugni BTL defaults to one per core).
    pub instances: usize,
    /// Instance assignment strategy.
    pub assignment: SimAssignment,
    /// Progress-engine design used while flushing.
    pub progress: SimProgress,
    /// RNG seed.
    pub seed: u64,
}

/// Result of one RMA-MT run.
#[derive(Debug, Clone)]
pub struct RmamtResult {
    /// Aggregate put rate over the virtual makespan, after the shared-link
    /// capacity cap.
    pub msg_rate_per_s: f64,
    /// The same rate before applying the link cap (diagnostic).
    pub uncapped_rate_per_s: f64,
    /// Link-level theoretical peak for this message size (the black line).
    pub theoretical_peak_per_s: f64,
    /// Virtual makespan in nanoseconds.
    pub makespan_ns: u64,
    /// Total puts.
    pub total_ops: u64,
    /// Origin-side counters.
    pub spc: SpcSnapshot,
}

/// Shared state: per-instance origin completion queues.
struct RmaWorld {
    cqs: Vec<VecDeque<u64>>,
    /// Outstanding ops per thread.
    pending: Vec<u64>,
    rr: u64,
    spc: Arc<SpcSet>,
}

impl WorldAccess for RmaWorld {
    fn deliver(&mut self, mailbox: usize, payload: u64) {
        self.cqs[mailbox].push_back(payload);
    }
}

const DRAIN_BATCH: usize = 32;

enum PState {
    /// Issue the next put, or move to the flush.
    Next,
    /// Acquire the chosen instance.
    Inject,
    /// Charge injection (DMA) time under the lock.
    PostCompletion,
    /// Release the instance.
    Release,
    /// Flush: check pending, run progress passes until drained.
    Flush,
    /// Serial flush: gate try-lock result.
    GateTried,
    /// Serial flush: block-lock the next instance.
    SerialLockInstance,
    /// Concurrent flush: instance try-lock result.
    ConcTried,
    /// Holding an instance: drain a batch of completions.
    Drain,
    /// Release the instance after draining.
    DrainUnlock,
    /// Advance the sweep.
    NextInstance,
    /// Release the serial gate.
    ReleaseGate,
    /// Nothing drained anywhere: charge an idle poll, then yield.
    IdlePoll,
    IdleYield,
}

struct Putter {
    id: usize,
    remaining: u64,
    msg_size: usize,
    state: PState,
    cost: CostModel,
    assignment: SimAssignment,
    progress: SimProgress,
    instances: usize,
    inst_locks: Arc<[LockId]>,
    gate: LockId,
    wire_latency: u64,
    cur_instance: usize,
    sweep: Vec<usize>,
    sweep_pos: usize,
    drained_this_pass: usize,
    batch: usize,
    holding_gate: bool,
    idle_streak: u32,
}

impl Putter {
    fn pick_instance(&mut self, world: &mut RmaWorld) -> usize {
        match self.assignment {
            SimAssignment::Dedicated => self.id % self.instances,
            SimAssignment::RoundRobin => {
                world.rr += 1;
                (world.rr - 1) as usize % self.instances
            }
        }
    }

    /// Whether this thread's completions can only live on its own
    /// instance (dedicated assignment injects every put there).
    fn flush_is_local(&self) -> bool {
        matches!(self.assignment, SimAssignment::Dedicated)
    }

    fn plan_sweep(&mut self, world: &mut RmaWorld, all: bool) {
        self.sweep.clear();
        self.sweep_pos = 0;
        self.drained_this_pass = 0;
        if self.flush_is_local() {
            // Local flush: only the dedicated instance holds our CQEs.
            self.sweep.push(self.id % self.instances);
            return;
        }
        if all {
            self.sweep.extend(0..self.instances);
            return;
        }
        let first = self.pick_instance(world);
        for off in 0..self.instances {
            self.sweep.push((first + off) % self.instances);
        }
    }

    /// Pop completions from the held instance; returns extraction cost.
    fn drain(&mut self, world: &mut RmaWorld) -> u64 {
        let mut n = 0usize;
        while n < DRAIN_BATCH {
            match world.cqs[self.cur_instance].pop_front() {
                Some(owner) => {
                    world.pending[owner as usize] -= 1;
                    n += 1;
                }
                None => break,
            }
        }
        self.batch = n;
        self.drained_this_pass += n;
        world.spc.add(Counter::CompletionsDrained, n as u64);
        self.cost.cqe_drain_ns * n as u64
    }
}

impl Actor<RmaWorld> for Putter {
    fn step(&mut self, resume: Resume, _now: u64, world: &mut RmaWorld) -> Action {
        loop {
            match self.state {
                PState::Next => {
                    if self.remaining == 0 {
                        self.state = PState::Flush;
                        continue;
                    }
                    self.remaining -= 1;
                    self.cur_instance = self.pick_instance(world);
                    self.state = PState::Inject;
                    return Action::Lock(self.inst_locks[self.cur_instance]);
                }
                PState::Inject => {
                    self.state = PState::PostCompletion;
                    return Action::Compute(self.cost.injection_time_ns(self.msg_size, 0));
                }
                PState::PostCompletion => {
                    world.pending[self.id] += 1;
                    world.spc.inc(Counter::RmaPuts);
                    self.state = PState::Release;
                    // The origin-side completion surfaces on this
                    // instance's CQ after the wire round-trips the ack.
                    return Action::Post {
                        mailbox: self.cur_instance,
                        payload: self.id as u64,
                        delay_ns: self.wire_latency * 2,
                    };
                }
                PState::Release => {
                    self.state = PState::Next;
                    return Action::Unlock(self.inst_locks[self.cur_instance]);
                }
                PState::Flush => {
                    if world.pending[self.id] == 0 {
                        world.spc.inc(Counter::RmaFlushes);
                        return Action::Done;
                    }
                    // Dedicated assignment: all our completions are on our
                    // own instance, so flush drains it directly (the BTL's
                    // local RDMA completion path — this is why the paper
                    // sees little difference between serial and concurrent
                    // progress for one-sided traffic).
                    if self.flush_is_local() {
                        self.plan_sweep(world, false);
                        self.cur_instance = self.sweep[0];
                        self.state = PState::ConcTried;
                        return Action::TryLock(self.inst_locks[self.cur_instance]);
                    }
                    // Round-robin scattered the completions everywhere; a
                    // full sweep is needed — serialized behind the global
                    // gate under serial progress, try-lock based otherwise.
                    match self.progress {
                        SimProgress::Serial => {
                            self.state = PState::GateTried;
                            return Action::TryLock(self.gate);
                        }
                        SimProgress::Concurrent => {
                            self.plan_sweep(world, false);
                            self.cur_instance = self.sweep[0];
                            self.state = PState::ConcTried;
                            return Action::TryLock(self.inst_locks[self.cur_instance]);
                        }
                    }
                }
                PState::GateTried => {
                    let Resume::TryLockResult(got) = resume else {
                        unreachable!("gate resume carries a try-lock result");
                    };
                    if !got {
                        self.state = PState::IdlePoll;
                        continue;
                    }
                    self.holding_gate = true;
                    self.plan_sweep(world, true);
                    self.state = PState::SerialLockInstance;
                }
                PState::SerialLockInstance => {
                    if self.sweep_pos >= self.sweep.len() {
                        self.state = PState::ReleaseGate;
                        continue;
                    }
                    self.cur_instance = self.sweep[self.sweep_pos];
                    self.state = PState::Drain;
                    return Action::Lock(self.inst_locks[self.cur_instance]);
                }
                PState::ConcTried => {
                    let Resume::TryLockResult(got) = resume else {
                        unreachable!("instance resume carries a try-lock result");
                    };
                    if !got {
                        world.spc.inc(Counter::InstanceTryLockFailures);
                        self.state = PState::NextInstance;
                        continue;
                    }
                    self.state = PState::Drain;
                }
                PState::Drain => {
                    let cost = self.drain(world);
                    self.state = PState::DrainUnlock;
                    return Action::Compute(cost.max(1));
                }
                PState::DrainUnlock => {
                    self.state = PState::NextInstance;
                    return Action::Unlock(self.inst_locks[self.cur_instance]);
                }
                PState::NextInstance => {
                    self.sweep_pos += 1;
                    let early_stop = !self.holding_gate && self.drained_this_pass > 0;
                    if self.sweep_pos >= self.sweep.len() || early_stop {
                        if self.holding_gate {
                            self.state = PState::ReleaseGate;
                        } else {
                            self.state = if self.drained_this_pass == 0 {
                                PState::IdlePoll
                            } else {
                                PState::Flush
                            };
                        }
                        continue;
                    }
                    self.cur_instance = self.sweep[self.sweep_pos];
                    if self.holding_gate {
                        self.state = PState::Drain;
                        return Action::Lock(self.inst_locks[self.cur_instance]);
                    }
                    self.state = PState::ConcTried;
                    return Action::TryLock(self.inst_locks[self.cur_instance]);
                }
                PState::ReleaseGate => {
                    self.holding_gate = false;
                    self.state = if self.drained_this_pass == 0 {
                        PState::IdlePoll
                    } else {
                        PState::Flush
                    };
                    return Action::Unlock(self.gate);
                }
                PState::IdlePoll => {
                    self.state = PState::IdleYield;
                    return Action::Compute(self.cost.poll_empty_ns);
                }
                PState::IdleYield => {
                    self.state = PState::Flush;
                    let ns = 150u64.saturating_mul(1 << self.idle_streak.min(7));
                    self.idle_streak += 1;
                    return Action::Sleep(ns.min(20_000));
                }
            }
        }
    }
}

impl RmamtSim {
    /// Link-level theoretical peak for this size (the black line in the
    /// paper's figures).
    pub fn theoretical_peak(&self) -> f64 {
        CostModel::for_fabric(&self.machine.fabric).link_peak_msg_rate(self.msg_size, 0)
    }

    /// Execute the experiment.
    pub fn run(&self) -> RmamtResult {
        assert!(self.threads >= 1 && self.ops_per_thread >= 1 && self.instances >= 1);
        let cost = CostModel::for_fabric(&self.machine.fabric);
        let spc = Arc::new(SpcSet::new());
        let instances = self.machine.fabric.clamp_contexts(self.instances);

        let world = RmaWorld {
            cqs: vec![VecDeque::new(); instances],
            pending: vec![0; self.threads],
            rr: 0,
            spc: Arc::clone(&spc),
        };

        let mut params = self.machine.sched;
        params.seed = self.seed;
        let mut sim = Sim::new(params, world);
        let inst_locks: Arc<[LockId]> = (0..instances).map(|_| sim.add_lock()).collect();
        let gate = sim.add_lock();

        for id in 0..self.threads {
            sim.add_actor(Box::new(Putter {
                id,
                remaining: self.ops_per_thread as u64,
                msg_size: self.msg_size,
                state: PState::Next,
                cost,
                assignment: self.assignment,
                progress: self.progress,
                instances,
                inst_locks: Arc::clone(&inst_locks),
                gate,
                wire_latency: cost.wire_latency_ns,
                cur_instance: 0,
                sweep: Vec::new(),
                sweep_pos: 0,
                drained_this_pass: 0,
                batch: 0,
                holding_gate: false,
                idle_streak: 0,
            }));
        }

        let total = (self.threads * self.ops_per_thread) as u64;
        let makespan = sim.run(total.saturating_mul(400) + 20_000_000);
        let uncapped = total as f64 / (makespan as f64 / 1e9);
        let peak = self.theoretical_peak();
        RmamtResult {
            msg_rate_per_s: uncapped.min(peak),
            uncapped_rate_per_s: uncapped,
            theoretical_peak_per_s: peak,
            makespan_ns: makespan,
            total_ops: total,
            spc: spc.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachinePreset};

    fn sim(threads: usize, instances: usize, assignment: SimAssignment) -> RmamtSim {
        RmamtSim {
            machine: Machine::preset(MachinePreset::TrinititeHaswell),
            threads,
            msg_size: 1,
            ops_per_thread: 100,
            instances,
            assignment,
            progress: SimProgress::Serial,
            seed: 11,
        }
    }

    #[test]
    fn all_puts_complete() {
        let r = sim(4, 4, SimAssignment::Dedicated).run();
        assert_eq!(r.total_ops, 400);
        assert_eq!(r.spc[Counter::RmaPuts], 400);
        assert_eq!(r.spc[Counter::RmaFlushes], 4);
    }

    #[test]
    fn dedicated_scales_with_threads() {
        let r1 = sim(1, 32, SimAssignment::Dedicated).run();
        let r16 = sim(16, 32, SimAssignment::Dedicated).run();
        assert!(
            r16.msg_rate_per_s > 8.0 * r1.msg_rate_per_s,
            "dedicated should scale: 1 thr {:.0}/s vs 16 thr {:.0}/s",
            r1.msg_rate_per_s,
            r16.msg_rate_per_s
        );
    }

    #[test]
    fn single_instance_degrades_under_threads() {
        let r1 = sim(1, 1, SimAssignment::Dedicated).run();
        let r16 = sim(16, 1, SimAssignment::Dedicated).run();
        assert!(
            r16.msg_rate_per_s < 1.5 * r1.msg_rate_per_s,
            "one shared instance cannot scale: {:.0}/s vs {:.0}/s",
            r1.msg_rate_per_s,
            r16.msg_rate_per_s
        );
    }

    #[test]
    fn dedicated_beats_round_robin() {
        let d = sim(16, 32, SimAssignment::Dedicated).run();
        let rr = sim(16, 32, SimAssignment::RoundRobin).run();
        assert!(
            d.msg_rate_per_s > rr.msg_rate_per_s,
            "dedicated {:.0}/s must beat round-robin {:.0}/s",
            d.msg_rate_per_s,
            rr.msg_rate_per_s
        );
    }

    #[test]
    fn large_messages_hit_the_bandwidth_peak() {
        let mut s = sim(16, 32, SimAssignment::Dedicated);
        s.msg_size = 16 * 1024;
        let r = s.run();
        assert!(
            r.msg_rate_per_s <= r.theoretical_peak_per_s + 1.0,
            "rate can never exceed the link peak"
        );
        assert!(
            r.msg_rate_per_s > 0.5 * r.theoretical_peak_per_s,
            "16 KiB puts from 16 threads should saturate the link: \
             {:.0}/s of peak {:.0}/s",
            r.msg_rate_per_s,
            r.theoretical_peak_per_s
        );
    }

    #[test]
    fn deterministic() {
        let a = sim(8, 8, SimAssignment::RoundRobin).run();
        let b = sim(8, 8, SimAssignment::RoundRobin).run();
        assert_eq!(a.makespan_ns, b.makespan_ns);
    }

    #[test]
    fn aries_context_cap_applies() {
        // Requesting more instances than the Aries hardware limit clamps.
        let mut s = sim(4, 4096, SimAssignment::Dedicated);
        s.ops_per_thread = 10;
        let r = s.run();
        assert_eq!(r.spc[Counter::RmaPuts], 40, "still completes");
    }
}
