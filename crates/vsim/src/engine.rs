//! The discrete-event core: virtual clock, cores, locks, actors.

use fairmpi_trace as trace;
use fairmpi_trace::{NameId, TrackId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Identifier of a simulated thread.
pub type ActorId = usize;

/// Identifier of a virtual lock.
pub type LockId = usize;

/// What an actor asks the scheduler to do next.
///
/// An actor is a state machine: each [`Actor::step`] call inspects the
/// [`Resume`] reason, mutates its own state, and returns the next action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Burn `ns` of virtual CPU (holding the current core).
    Compute(u64),
    /// Block until the lock is granted (releases the core while waiting;
    /// acquisition cost, including the contention penalty, is charged by
    /// the scheduler).
    Lock(LockId),
    /// Attempt the lock without blocking; the outcome arrives in the next
    /// resume as [`Resume::TryLockResult`].
    TryLock(LockId),
    /// Release a held lock (instantaneous; hand-off cost is charged to the
    /// next holder).
    Unlock(LockId),
    /// Deliver an opaque message `payload` to the simulation `mailbox`
    /// after `delay_ns` (the wire). Continues immediately.
    Post {
        /// Destination mailbox index.
        mailbox: usize,
        /// Opaque payload tag interpreted by the workload.
        payload: u64,
        /// Virtual delivery delay.
        delay_ns: u64,
    },
    /// Give up the core and requeue at the back of the run queue.
    Yield,
    /// Give up the core for at least `ns` (a polling backoff: semantically
    /// a yield, but lets the event loop skip ahead instead of re-running
    /// idle pollers every scheduler tick).
    Sleep(u64),
    /// The actor is finished.
    Done,
}

/// Why an actor was resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resume {
    /// First activation, or a previous `Compute`/`Unlock`/`Post`/`Yield`
    /// finished.
    Ready,
    /// A blocking `Lock` was granted.
    LockGranted,
    /// The outcome of a `TryLock`.
    TryLockResult(bool),
}

/// A simulated thread. Implementations carry their own program counter and
/// get full mutable access to the workload's shared state `W` (the
/// simulation is single-threaded, so this is race-free by construction).
pub trait Actor<W> {
    /// Advance the actor; `now` is the virtual time in nanoseconds.
    fn step(&mut self, resume: Resume, now: u64, world: &mut W) -> Action;
}

/// The one capability the engine itself needs from the workload state:
/// accepting wire deliveries scheduled through [`Action::Post`].
pub trait WorldAccess {
    /// Accept a wire delivery into a mailbox.
    fn deliver(&mut self, mailbox: usize, payload: u64);
}

/// An *unfair* virtual lock (like pthread/parking_lot mutexes: released
/// locks are grabbed by whoever gets there, not by queue order — which is
/// also what lets sender threads overtake each other between drawing a
/// sequence number and injecting).
#[derive(Debug)]
struct VLock {
    held_by: Option<ActorId>,
    /// Waiting actors with the virtual time each began waiting.
    waiters: VecDeque<(ActorId, u64)>,
    /// When the current holder acquired the lock (for hold-time tracing).
    held_since: u64,
    /// Interned trace name ([`NameId::INVALID`] when tracing is disarmed).
    trace_name: NameId,
    /// Contention profile: hand-off cost per waiter (cache-line bouncing)
    /// and the waiter-count cap.
    bounce_ns: u64,
    bounce_cap: usize,
    /// Above this many waiters the lock enters the *parked* regime: every
    /// hand-off pays a futex-style wake-up on top of the bouncing. Short
    /// critical sections under light contention stay in the spin regime.
    park_threshold: usize,
    /// The wake-up cost in the parked regime.
    park_ns: u64,
}

/// Scheduler event kinds. The `owns_core` flag distinguishes
/// continuations of an actor that kept its core across the event (compute,
/// uncontended acquisition, try-lock) from wake-ups that must re-acquire a
/// core (lock grants, yields).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// Resume an actor: (actor, resume kind, bool payload, owns_core).
    Resume(ActorId, u8, u8, bool),
    /// Deliver a posted message.
    Deliver(usize, u64),
}

/// Timing parameters of the executor itself.
#[derive(Debug, Clone, Copy)]
pub struct SchedParams {
    /// Number of cores.
    pub cores: usize,
    /// Inverse speed: virtual ns actually charged per requested ns ×1024
    /// (e.g. KNL cores ≈ 2.5× slower ⇒ 2560).
    pub slowdown_x1024: u64,
    /// Cost of an uncontended lock acquisition.
    pub lock_base_ns: u64,
    /// Extra acquisition cost per waiter present at grant time
    /// (cache-line bouncing under contention).
    pub lock_bounce_ns: u64,
    /// Cap on the number of waiters counted toward the bounce penalty.
    pub lock_bounce_cap: usize,
    /// Cost of a try-lock attempt (hit or miss).
    pub try_lock_ns: u64,
    /// Cost of yielding the core (scheduler round trip before the actor is
    /// runnable again).
    pub yield_penalty_ns: u64,
    /// RNG seed (determinism).
    pub seed: u64,
}

impl Default for SchedParams {
    fn default() -> Self {
        Self {
            cores: 20,
            slowdown_x1024: 1024,
            lock_base_ns: 20,
            lock_bounce_ns: 70,
            lock_bounce_cap: 16,
            try_lock_ns: 15,
            yield_penalty_ns: 120,
            seed: 0x5EED_CAFE,
        }
    }
}

/// The discrete-event simulator.
pub struct Sim<W: WorldAccess> {
    now: u64,
    seq: u64,
    heap: BinaryHeap<Reverse<(u64, u64, Event)>>,
    actors: Vec<Option<Box<dyn Actor<W>>>>,
    locks: Vec<VLock>,
    params: SchedParams,
    free_cores: usize,
    run_queue: VecDeque<(ActorId, Resume)>,
    live_actors: usize,
    rng: SmallRng,
    /// One trace track per actor (INVALID when tracing is disarmed).
    tracks: Vec<TrackId>,
    /// Interned names for scheduler-level slices.
    sleep_name: NameId,
    yield_name: NameId,
    /// Periodic observers fired as virtual time crosses interval
    /// boundaries (each with its own interval).
    tick_hooks: Vec<TickHook<W>>,
    /// Workload-shared state (matchers, rings, counters).
    pub world: W,
}

/// Periodic-observer callback: `(boundary_ns, &mut world)`.
pub type TickFn<W> = Box<dyn FnMut(u64, &mut W)>;

struct TickHook<W> {
    interval_ns: u64,
    next_ns: u64,
    f: TickFn<W>,
}

impl<W: WorldAccess> Sim<W> {
    /// Build a simulator around workload state `world`.
    pub fn new(params: SchedParams, world: W) -> Self {
        Self {
            now: 0,
            seq: 0,
            heap: BinaryHeap::new(),
            actors: Vec::new(),
            locks: Vec::new(),
            params,
            free_cores: params.cores.max(1),
            run_queue: VecDeque::new(),
            live_actors: 0,
            rng: SmallRng::seed_from_u64(params.seed),
            tracks: Vec::new(),
            sleep_name: trace::intern("sleep"),
            yield_name: trace::intern("yield"),
            tick_hooks: Vec::new(),
            world,
        }
    }

    /// Install a periodic observer: `f(boundary_ns, &mut world)` fires once
    /// per `interval_ns` of virtual time as the clock crosses each boundary
    /// (used for SPC time-series sampling and pvar scraping). Observers
    /// stack: each call adds one with an independent interval, and hooks
    /// sharing a boundary fire in installation order.
    pub fn add_tick_hook(&mut self, interval_ns: u64, f: TickFn<W>) {
        let interval_ns = interval_ns.max(1);
        self.tick_hooks.push(TickHook {
            interval_ns,
            next_ns: interval_ns,
            f,
        });
    }

    /// Alias of [`Sim::add_tick_hook`], kept for the original single-hook
    /// call sites.
    pub fn set_tick_hook(&mut self, interval_ns: u64, f: TickFn<W>) {
        self.add_tick_hook(interval_ns, f);
    }

    /// Current virtual time (ns).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Deterministic jitter in `[0, max_ns]`.
    pub fn jitter(&mut self, max_ns: u64) -> u64 {
        if max_ns == 0 {
            0
        } else {
            self.rng.gen_range(0..=max_ns)
        }
    }

    /// Register a new virtual lock with the scheduler's default contention
    /// profile; returns its id.
    pub fn add_lock(&mut self) -> LockId {
        self.add_lock_with(self.params.lock_bounce_ns, self.params.lock_bounce_cap)
    }

    /// Register a lock with an explicit contention profile (hand-off
    /// penalty per waiter, and the waiter cap); never parks.
    pub fn add_lock_with(&mut self, bounce_ns: u64, bounce_cap: usize) -> LockId {
        self.add_lock_full(bounce_ns, bounce_cap, usize::MAX, 0)
    }

    /// Register a lock with a full contention profile, including the
    /// parked-regime threshold and wake-up cost.
    pub fn add_lock_full(
        &mut self,
        bounce_ns: u64,
        bounce_cap: usize,
        park_threshold: usize,
        park_ns: u64,
    ) -> LockId {
        let id = self.locks.len();
        self.locks.push(VLock {
            held_by: None,
            waiters: VecDeque::new(),
            held_since: 0,
            trace_name: trace::intern(&format!("lock{id}")),
            bounce_ns,
            bounce_cap,
            park_threshold,
            park_ns,
        });
        id
    }

    /// Give a lock a human-readable name on the trace timeline (e.g.
    /// `"instance[0].send"` instead of the default `"lock3"`).
    pub fn name_lock(&mut self, lock: LockId, name: &str) {
        self.locks[lock].trace_name = trace::intern(name);
    }

    /// Register an actor; it becomes runnable at time 0.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<W>>) -> ActorId {
        let name = format!("actor{}", self.actors.len());
        self.add_actor_named(&name, actor)
    }

    /// Register an actor under a trace-track name (e.g. `"sender[3]"`).
    pub fn add_actor_named(&mut self, name: &str, actor: Box<dyn Actor<W>>) -> ActorId {
        let id = self.actors.len();
        self.actors.push(Some(actor));
        self.tracks.push(trace::register_track(name));
        self.live_actors += 1;
        self.run_queue.push_back((id, Resume::Ready));
        id
    }

    fn push_event(&mut self, at: u64, ev: Event) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, ev)));
    }

    fn scale(&self, ns: u64) -> u64 {
        (ns * self.params.slowdown_x1024) / 1024
    }

    /// Run until every actor is done (or `max_events` is exceeded, which
    /// indicates a workload bug). Returns the final virtual time.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let mut events = 0u64;
        loop {
            // Fill free cores from the run queue.
            while self.free_cores > 0 {
                let Some((id, resume)) = self.run_queue.pop_front() else {
                    break;
                };
                self.free_cores -= 1;
                self.execute(id, resume);
            }
            if self.live_actors == 0 {
                return self.now;
            }
            let Some(Reverse((at, _, ev))) = self.heap.pop() else {
                panic!(
                    "virtual deadlock at t={} ns: {} live actors, empty event \
                     heap and run queue",
                    self.now, self.live_actors
                );
            };
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            trace::set_virtual_now(at);
            if !self.tick_hooks.is_empty() {
                let mut hooks = std::mem::take(&mut self.tick_hooks);
                for hook in &mut hooks {
                    while at >= hook.next_ns {
                        (hook.f)(hook.next_ns, &mut self.world);
                        hook.next_ns += hook.interval_ns;
                    }
                }
                self.tick_hooks = hooks;
            }
            events += 1;
            assert!(
                events <= max_events,
                "exceeded {max_events} events; runaway workload?"
            );
            match ev {
                Event::Resume(id, kind, flag, owns_core) => {
                    let resume = match kind {
                        0 => Resume::Ready,
                        1 => Resume::LockGranted,
                        _ => Resume::TryLockResult(flag != 0),
                    };
                    if owns_core {
                        // Continuation: the actor held its core across the
                        // event (compute burn, acquisition spin).
                        self.execute(id, resume);
                    } else if self.free_cores > 0 {
                        self.free_cores -= 1;
                        self.execute(id, resume);
                    } else {
                        self.run_queue.push_back((id, resume));
                    }
                }
                Event::Deliver(mailbox, payload) => {
                    self.world_deliver(mailbox, payload);
                }
            }
        }
    }

    fn world_deliver(&mut self, mailbox: usize, payload: u64) {
        self.world.deliver(mailbox, payload);
    }

    /// Run one actor on its core until it blocks, finishes, or schedules a
    /// future resume.
    fn execute(&mut self, id: ActorId, mut resume: Resume) {
        // Unlock and Post continue inline at the same virtual instant; a
        // buggy actor that loops on them would hang or exhaust memory
        // without ever reaching the event-count guard, so bound the chain.
        let mut inline_steps = 0u32;
        loop {
            inline_steps += 1;
            assert!(
                inline_steps <= 100_000,
                "actor {id} looped {inline_steps} inline actions at t={} \
                 without advancing time",
                self.now
            );
            // Workload code running inside `step` (matching, progress)
            // attributes its spans to this actor's track.
            trace::set_current_track(self.tracks[id]);
            let mut actor = self.actors[id].take().expect("actor alive");
            let action = actor.step(resume, self.now, &mut self.world);
            self.actors[id] = Some(actor);
            match action {
                Action::Compute(ns) => {
                    // The burn occupies the core until it completes.
                    let at = self.now + self.scale(ns);
                    self.push_event(at, Event::Resume(id, 0, 0, true));
                    return;
                }
                Action::Lock(l) => {
                    let lname = self.locks[l].trace_name;
                    if self.locks[l].held_by.is_none() {
                        // Uncontended acquisition spins briefly on the core.
                        let at = self.now + self.scale(self.params.lock_base_ns);
                        let lock = &mut self.locks[l];
                        lock.held_by = Some(id);
                        lock.held_since = at;
                        trace::lock_acquired_at(self.tracks[id], lname, at, 0);
                        self.push_event(at, Event::Resume(id, 1, 0, true));
                        return;
                    }
                    // Block: give up the core, join the wait queue.
                    self.locks[l].waiters.push_back((id, self.now));
                    trace::lock_wait_at(self.tracks[id], lname, self.now);
                    self.free_cores += 1;
                    return;
                }
                Action::TryLock(l) => {
                    let lname = self.locks[l].trace_name;
                    let at = self.now + self.scale(self.params.try_lock_ns);
                    let ok = {
                        let lock = &mut self.locks[l];
                        if lock.held_by.is_none() {
                            lock.held_by = Some(id);
                            lock.held_since = at;
                            true
                        } else {
                            false
                        }
                    };
                    if ok {
                        trace::lock_acquired_at(self.tracks[id], lname, at, 0);
                    } else {
                        trace::try_lock_fail_at(self.tracks[id], lname, at);
                    }
                    self.push_event(at, Event::Resume(id, 2, ok as u8, true));
                    return;
                }
                Action::Unlock(l) => {
                    let lname = self.locks[l].trace_name;
                    let held_ns = self.now.saturating_sub(self.locks[l].held_since);
                    trace::lock_released_at(self.tracks[id], lname, self.now, held_ns);
                    let next = {
                        let lock = &mut self.locks[l];
                        debug_assert_eq!(lock.held_by, Some(id), "unlock by non-holder");
                        lock.held_by = None;
                        // Unfair grant: any waiter may win the released
                        // lock (deterministic via the seeded RNG).
                        if lock.waiters.is_empty() {
                            None
                        } else {
                            let pick = self.rng.gen_range(0..lock.waiters.len());
                            lock.waiters.swap_remove_back(pick)
                        }
                    };
                    if let Some((w, wait_since)) = next {
                        let waiters_now = self.locks[l].waiters.len();
                        self.locks[l].held_by = Some(w);
                        let lock = &self.locks[l];
                        // Hand-off cost grows with the crowd still waiting;
                        // past the park threshold each hand-off also pays a
                        // futex-style wake-up.
                        let mut cost = self.params.lock_base_ns
                            + lock.bounce_ns * waiters_now.min(lock.bounce_cap) as u64;
                        if waiters_now >= lock.park_threshold {
                            cost += lock.park_ns;
                        }
                        let at = self.now + self.scale(cost);
                        self.locks[l].held_since = at;
                        trace::lock_acquired_at(
                            self.tracks[w],
                            lname,
                            at,
                            at.saturating_sub(wait_since),
                        );
                        self.push_event(at, Event::Resume(w, 1, 0, false));
                    }
                    // Unlock itself is free; continue on the same core.
                    resume = Resume::Ready;
                    continue;
                }
                Action::Post {
                    mailbox,
                    payload,
                    delay_ns,
                } => {
                    let at = self.now + delay_ns; // wire time is not core-scaled
                    self.push_event(at, Event::Deliver(mailbox, payload));
                    resume = Resume::Ready;
                    continue;
                }
                Action::Yield => {
                    // Give up the core and come back after the scheduler
                    // round trip; scheduling it as a future event (rather
                    // than requeueing at the same instant) is what lets
                    // the clock advance past polling loops.
                    self.free_cores += 1;
                    let at = self.now + self.scale(self.params.yield_penalty_ns);
                    trace::slice_at(self.tracks[id], self.yield_name, self.now, at - self.now);
                    self.push_event(at, Event::Resume(id, 0, 0, false));
                    return;
                }
                Action::Sleep(ns) => {
                    self.free_cores += 1;
                    let at = self.now + self.scale(ns.max(self.params.yield_penalty_ns));
                    trace::slice_at(self.tracks[id], self.sleep_name, self.now, at - self.now);
                    self.push_event(at, Event::Resume(id, 0, 0, false));
                    return;
                }
                Action::Done => {
                    self.actors[id] = None;
                    self.live_actors -= 1;
                    self.free_cores += 1;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal workload: mailboxes + counters.
    #[derive(Default)]
    struct MiniWorld {
        boxes: Vec<VecDeque<u64>>,
        counters: Vec<i64>,
    }

    impl WorldAccess for MiniWorld {
        fn deliver(&mut self, m: usize, p: u64) {
            self.boxes[m].push_back(p);
        }
    }

    impl MiniWorld {
        fn mailbox_pop(&mut self, m: usize) -> Option<u64> {
            self.boxes[m].pop_front()
        }
        fn counter(&self, i: usize) -> u64 {
            self.counters[i] as u64
        }
        fn counter_add(&mut self, i: usize, d: i64) {
            self.counters[i] += d;
        }
    }

    /// Computes three times then finishes.
    struct Burner {
        remaining: u32,
        burn: u64,
    }
    impl Actor<MiniWorld> for Burner {
        fn step(&mut self, _r: Resume, _now: u64, _w: &mut MiniWorld) -> Action {
            if self.remaining == 0 {
                return Action::Done;
            }
            self.remaining -= 1;
            Action::Compute(self.burn)
        }
    }

    fn mini() -> MiniWorld {
        MiniWorld {
            boxes: vec![VecDeque::new(); 4],
            counters: vec![0; 4],
        }
    }

    #[test]
    fn compute_advances_virtual_time() {
        let mut sim = Sim::new(
            SchedParams {
                cores: 1,
                ..Default::default()
            },
            mini(),
        );
        sim.add_actor(Box::new(Burner {
            remaining: 3,
            burn: 100,
        }));
        let end = sim.run(1_000);
        assert_eq!(end, 300);
    }

    #[test]
    fn cores_limit_parallelism() {
        // Two burners of 300 ns on 1 core => 600 ns; on 2 cores => 300 ns.
        for (cores, expect) in [(1usize, 600u64), (2, 300)] {
            let mut sim = Sim::new(
                SchedParams {
                    cores,
                    ..Default::default()
                },
                mini(),
            );
            for _ in 0..2 {
                sim.add_actor(Box::new(Burner {
                    remaining: 1,
                    burn: 300,
                }));
            }
            assert_eq!(sim.run(1_000), expect, "cores={cores}");
        }
    }

    #[test]
    fn slowdown_scales_compute() {
        let mut sim = Sim::new(
            SchedParams {
                cores: 1,
                slowdown_x1024: 2048, // 2x slower cores
                ..Default::default()
            },
            mini(),
        );
        sim.add_actor(Box::new(Burner {
            remaining: 1,
            burn: 100,
        }));
        assert_eq!(sim.run(1_000), 200);
    }

    /// Locks then computes inside the critical section.
    struct LockUser {
        lock: LockId,
        state: u8,
        hold: u64,
    }
    impl Actor<MiniWorld> for LockUser {
        fn step(&mut self, _r: Resume, _now: u64, _w: &mut MiniWorld) -> Action {
            match self.state {
                0 => {
                    self.state = 1;
                    Action::Lock(self.lock)
                }
                1 => {
                    self.state = 2;
                    Action::Compute(self.hold)
                }
                2 => {
                    self.state = 3;
                    Action::Unlock(self.lock)
                }
                _ => Action::Done,
            }
        }
    }

    #[test]
    fn lock_serializes_critical_sections() {
        let mut sim = Sim::new(
            SchedParams {
                cores: 8,
                lock_base_ns: 0,
                lock_bounce_ns: 0,
                ..Default::default()
            },
            mini(),
        );
        let l = sim.add_lock();
        for _ in 0..4 {
            sim.add_actor(Box::new(LockUser {
                lock: l,
                state: 0,
                hold: 100,
            }));
        }
        // 4 actors × 100 ns serialized despite 8 cores.
        assert_eq!(sim.run(10_000), 400);
    }

    #[test]
    fn bounce_penalty_charges_contended_handoffs() {
        let run_with = |bounce: u64| {
            let mut sim = Sim::new(
                SchedParams {
                    cores: 8,
                    lock_base_ns: 0,
                    lock_bounce_ns: bounce,
                    ..Default::default()
                },
                mini(),
            );
            let l = sim.add_lock();
            for _ in 0..4 {
                sim.add_actor(Box::new(LockUser {
                    lock: l,
                    state: 0,
                    hold: 100,
                }));
            }
            sim.run(10_000)
        };
        let cheap = run_with(0);
        let pricey = run_with(50);
        assert!(pricey > cheap, "contended handoffs must cost extra");
        // Handoffs: to waiter with 2 still queued (2*50), then 1 (50), then
        // 0: total 150 extra.
        assert_eq!(pricey - cheap, 150);
    }

    /// Posts a message; the peer waits for it.
    struct Poster {
        posted: bool,
    }
    impl Actor<MiniWorld> for Poster {
        fn step(&mut self, _r: Resume, _now: u64, _w: &mut MiniWorld) -> Action {
            if self.posted {
                return Action::Done;
            }
            self.posted = true;
            Action::Post {
                mailbox: 0,
                payload: 42,
                delay_ns: 500,
            }
        }
    }
    struct Poller {
        got: bool,
    }
    impl Actor<MiniWorld> for Poller {
        fn step(&mut self, _r: Resume, _now: u64, w: &mut MiniWorld) -> Action {
            if self.got {
                return Action::Done;
            }
            match w.mailbox_pop(0) {
                Some(v) => {
                    assert_eq!(v, 42);
                    w.counter_add(0, 1);
                    self.got = true;
                    Action::Compute(1)
                }
                None => Action::Yield,
            }
        }
    }

    #[test]
    fn post_delivers_after_delay() {
        let mut sim = Sim::new(
            SchedParams {
                cores: 2,
                ..Default::default()
            },
            mini(),
        );
        sim.add_actor(Box::new(Poster { posted: false }));
        sim.add_actor(Box::new(Poller { got: false }));
        let end = sim.run(1_000_000);
        assert!(end >= 500, "poller had to wait for the wire: {end}");
        assert_eq!(sim.world.counter(0), 1);
    }

    #[test]
    fn try_lock_fails_when_held() {
        /// Locks, then computes for a while holding it.
        struct Holder {
            lock: LockId,
            state: u8,
        }
        impl Actor<MiniWorld> for Holder {
            fn step(&mut self, _r: Resume, _now: u64, _w: &mut MiniWorld) -> Action {
                self.state += 1;
                match self.state {
                    1 => Action::Lock(self.lock),
                    2 => Action::Compute(1_000),
                    3 => Action::Unlock(self.lock),
                    _ => Action::Done,
                }
            }
        }
        /// Waits, then try-locks while the holder still computes.
        struct Prober {
            lock: LockId,
            state: u8,
        }
        impl Actor<MiniWorld> for Prober {
            fn step(&mut self, r: Resume, _now: u64, w: &mut MiniWorld) -> Action {
                self.state += 1;
                match self.state {
                    1 => Action::Compute(500), // land mid-hold
                    2 => Action::TryLock(self.lock),
                    3 => {
                        let Resume::TryLockResult(ok) = r else {
                            panic!("expected try-lock result");
                        };
                        w.counter_add(0, ok as i64);
                        Action::Done
                    }
                    _ => Action::Done,
                }
            }
        }
        let mut sim = Sim::new(
            SchedParams {
                cores: 2,
                ..Default::default()
            },
            mini(),
        );
        let l = sim.add_lock();
        sim.add_actor(Box::new(Holder { lock: l, state: 0 }));
        sim.add_actor(Box::new(Prober { lock: l, state: 0 }));
        sim.run(1_000);
        assert_eq!(sim.world.counter(0), 0, "probe mid-hold must fail");
    }

    #[test]
    #[should_panic(expected = "virtual deadlock")]
    fn deadlock_is_detected() {
        struct Sleeper {
            lock: LockId,
            state: u8,
        }
        impl Actor<MiniWorld> for Sleeper {
            fn step(&mut self, _r: Resume, _now: u64, _w: &mut MiniWorld) -> Action {
                match self.state {
                    0 => {
                        self.state = 1;
                        Action::Lock(self.lock)
                    }
                    // Never unlocks; a second locker waits forever.
                    1 => {
                        self.state = 2;
                        Action::Done
                    }
                    _ => Action::Done,
                }
            }
        }
        // Actor A locks and finishes without unlocking; actor B waits.
        let mut sim = Sim::new(SchedParams::default(), mini());
        let l = sim.add_lock();
        sim.add_actor(Box::new(Sleeper { lock: l, state: 0 }));
        sim.add_actor(Box::new(Sleeper { lock: l, state: 0 }));
        sim.run(1_000);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let mut sim = Sim::new(SchedParams::default(), mini());
        let seq: Vec<u64> = (0..32).map(|_| sim.jitter(100)).collect();
        assert!(seq.iter().all(|&j| j <= 100));
        let mut sim2 = Sim::new(SchedParams::default(), mini());
        let seq2: Vec<u64> = (0..32).map(|_| sim2.jitter(100)).collect();
        assert_eq!(seq, seq2, "same seed, same jitter");
        assert_eq!(sim.jitter(0), 0);
    }

    #[test]
    fn sleep_advances_the_clock_past_polling_loops() {
        /// Polls a mailbox with a 1 µs backoff until the wire delivers.
        struct BackoffPoller {
            got: bool,
        }
        impl Actor<MiniWorld> for BackoffPoller {
            fn step(&mut self, _r: Resume, _now: u64, w: &mut MiniWorld) -> Action {
                if self.got {
                    return Action::Done;
                }
                match w.mailbox_pop(0) {
                    Some(_) => {
                        self.got = true;
                        Action::Compute(1)
                    }
                    None => Action::Sleep(1_000),
                }
            }
        }
        struct LatePoster {
            state: u8,
        }
        impl Actor<MiniWorld> for LatePoster {
            fn step(&mut self, _r: Resume, _now: u64, _w: &mut MiniWorld) -> Action {
                self.state += 1;
                match self.state {
                    1 => Action::Post {
                        mailbox: 0,
                        payload: 1,
                        delay_ns: 50_000,
                    },
                    _ => Action::Done,
                }
            }
        }
        let mut sim = Sim::new(
            SchedParams {
                cores: 1,
                ..Default::default()
            },
            mini(),
        );
        sim.add_actor(Box::new(LatePoster { state: 0 }));
        sim.add_actor(Box::new(BackoffPoller { got: false }));
        // ~50 poll cycles of 1 µs each — far below the event cap; without
        // Sleep this poller would need one event per scheduler tick.
        let end = sim.run(5_000);
        assert!(end >= 50_000);
    }

    #[test]
    fn compute_holds_the_core_against_waiting_actors() {
        // One core, one long burner and one short: the short one cannot
        // interleave into the middle of the long burn (no preemption).
        struct Stamp {
            burn: u64,
            finished_at: std::sync::Arc<std::sync::atomic::AtomicU64>,
        }
        impl Actor<MiniWorld> for Stamp {
            fn step(&mut self, _r: Resume, now: u64, _w: &mut MiniWorld) -> Action {
                if self.burn == 0 {
                    self.finished_at
                        .store(now, std::sync::atomic::Ordering::Relaxed);
                    return Action::Done;
                }
                let b = self.burn;
                self.burn = 0;
                Action::Compute(b)
            }
        }
        let long_done = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let short_done = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut sim = Sim::new(
            SchedParams {
                cores: 1,
                ..Default::default()
            },
            mini(),
        );
        sim.add_actor(Box::new(Stamp {
            burn: 1_000,
            finished_at: std::sync::Arc::clone(&long_done),
        }));
        sim.add_actor(Box::new(Stamp {
            burn: 10,
            finished_at: std::sync::Arc::clone(&short_done),
        }));
        sim.run(1_000);
        assert_eq!(long_done.load(std::sync::atomic::Ordering::Relaxed), 1_000);
        assert_eq!(
            short_done.load(std::sync::atomic::Ordering::Relaxed),
            1_010,
            "the short burn runs only after the long one releases the core"
        );
    }

    #[test]
    fn unfair_grants_are_deterministic_per_seed() {
        // Three lockers contending; the grant order depends on the seeded
        // RNG but must be identical across runs.
        fn order(seed: u64) -> Vec<u64> {
            struct Order {
                lock: LockId,
                id: usize,
                state: u8,
            }
            impl Actor<MiniWorld> for Order {
                fn step(&mut self, _r: Resume, _now: u64, w: &mut MiniWorld) -> Action {
                    self.state += 1;
                    match self.state {
                        1 => Action::Lock(self.lock),
                        2 => {
                            // Record my position in the grant order.
                            let pos = w.counter(3) + 1;
                            w.counter_add(3, 1);
                            w.counter_add(self.id, pos as i64);
                            Action::Compute(100)
                        }
                        3 => Action::Unlock(self.lock),
                        _ => Action::Done,
                    }
                }
            }
            let mut sim = Sim::new(
                SchedParams {
                    cores: 4,
                    seed,
                    ..Default::default()
                },
                mini(),
            );
            let l = sim.add_lock();
            for id in 0..3 {
                sim.add_actor(Box::new(Order {
                    lock: l,
                    id,
                    state: 0,
                }));
            }
            sim.run(10_000);
            (0..3).map(|i| sim.world.counter(i)).collect()
        }
        assert_eq!(order(7), order(7), "same seed, same grant order");
    }
}
