//! Machine presets: the testbeds of paper Table I (plus the KNL partition
//! used in Fig. 7).

use fairmpi_fabric::{FabricConfig, MachineKind};

use crate::engine::SchedParams;

/// Which simulated testbed to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachinePreset {
    /// UTK "Alembert": dual 10-core Haswell (20 cores), InfiniBand EDR.
    Alembert,
    /// LANL "Trinitite" Haswell: dual 16-core Haswell (32 cores), Aries.
    TrinititeHaswell,
    /// LANL "Trinitite" KNL: 68-core Knights Landing, Aries. KNL cores are
    /// substantially slower per-thread than Haswell.
    TrinititeKnl,
}

/// A fully resolved machine: scheduler parameters plus fabric cost model.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Human-readable name for figure labels.
    pub name: &'static str,
    /// Scheduler parameters (cores, per-core slowdown, lock costs).
    pub sched: SchedParams,
    /// Fabric cost model (injection/extraction/bandwidth/jitter).
    pub fabric: FabricConfig,
    /// Default number of CRIs the one-sided BTL creates: one per core
    /// (paper §IV-F: 32 on Haswell nodes, 72 on KNL nodes).
    pub default_rma_instances: usize,
}

impl Machine {
    /// Resolve a preset.
    pub fn preset(kind: MachinePreset) -> Self {
        match kind {
            MachinePreset::Alembert => Machine {
                name: "alembert",
                sched: SchedParams {
                    cores: 20,
                    slowdown_x1024: 1024,
                    ..SchedParams::default()
                },
                fabric: FabricConfig::for_machine(MachineKind::AlembertInfinibandEdr),
                default_rma_instances: 20,
            },
            MachinePreset::TrinititeHaswell => Machine {
                name: "trinitite-haswell",
                sched: SchedParams {
                    cores: 32,
                    slowdown_x1024: 1024,
                    ..SchedParams::default()
                },
                fabric: FabricConfig::for_machine(MachineKind::TrinititeAriesHaswell),
                // "this creates 32 instances on Haswell nodes" (§IV-F).
                default_rma_instances: 32,
            },
            MachinePreset::TrinititeKnl => Machine {
                name: "trinitite-knl",
                sched: SchedParams {
                    cores: 68,
                    // KNL single-thread performance ≈ 2.5× below Haswell.
                    slowdown_x1024: 2560,
                    ..SchedParams::default()
                },
                fabric: FabricConfig::for_machine(MachineKind::TrinititeAriesKnl),
                // "and 72 instances on KNL nodes" (§IV-F).
                default_rma_instances: 72,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_i() {
        let a = Machine::preset(MachinePreset::Alembert);
        assert_eq!(a.sched.cores, 20);
        let h = Machine::preset(MachinePreset::TrinititeHaswell);
        assert_eq!(h.sched.cores, 32);
        assert_eq!(h.default_rma_instances, 32);
        let k = Machine::preset(MachinePreset::TrinititeKnl);
        assert_eq!(k.sched.cores, 68);
        assert_eq!(k.default_rma_instances, 72);
        assert!(k.sched.slowdown_x1024 > h.sched.slowdown_x1024);
    }
}
