//! The software cost model: virtual nanoseconds per runtime operation.
//!
//! Hardware costs (injection, extraction, wire, bandwidth) come from the
//! fabric config; this adds the software-path constants, calibrated so that
//! a single-threaded pair lands near the paper's ~0.5 M msg/s and the
//! contention regimes reproduce the reported ratios. Every figure harness
//! prints the model it used, and the ablation benches sweep the sensitive
//! knobs.

use fairmpi_fabric::FabricConfig;
use fairmpi_matching::MatchWork;

/// Virtual-time costs of runtime operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Send-path software overhead before touching the instance
    /// (argument checking, request setup, envelope build, seq draw).
    pub send_software_ns: u64,
    /// Injection cost charged while the instance lock is held.
    pub injection_ns: u64,
    /// Extraction cost per incoming *packet* popped (header parse + buffer
    /// handoff), charged under the instance lock.
    pub extraction_ns: u64,
    /// Drain cost per local *completion queue entry* (an 8-byte CQE read —
    /// far cheaper than receiving a packet), charged under the instance
    /// lock. Dominant in the RMA flush path.
    pub cqe_drain_ns: u64,
    /// One-way wire latency.
    pub wire_latency_ns: u64,
    /// Max random extra delivery delay (drives out-of-sequence arrivals).
    pub delivery_jitter_ns: u64,
    /// Link bandwidth in bytes per microsecond.
    pub bandwidth_bytes_per_us: u64,
    /// Fixed cost of one matcher invocation (hashing the channel, epochs).
    pub match_base_ns: u64,
    /// Cost per queue entry traversed during PRQ/UMQ searches.
    pub match_traverse_ns: u64,
    /// Cost of one sequence-number validation.
    pub seq_check_ns: u64,
    /// Cost of parking one out-of-sequence message (allocation + insert —
    /// "a costly operation right in the middle of the critical path").
    pub oos_buffer_ns: u64,
    /// Cost of replaying one parked message when its turn comes.
    pub oos_drain_ns: u64,
    /// Cost of posting a receive (request setup before matching).
    pub recv_software_ns: u64,
    /// Cost of an empty progress poll on one instance.
    pub poll_empty_ns: u64,
    /// Cost of completing a matched request (status store, payload move).
    pub complete_ns: u64,
    /// Hold time of the process-shared request/descriptor pool (an atomic
    /// LIFO in Open MPI). Threads of one process serialize briefly here on
    /// every operation; separate processes have separate pools — one of the
    /// residual reasons thread mode cannot reach process mode (Fig. 5).
    pub request_pool_ns: u64,
    /// Time one message occupies the *shared* link regardless of context
    /// (the NIC's aggregate packet-rate limit). Aggregate message rate can
    /// never exceed `1e9 / max(link_msg_overhead_ns, serialization)` — the
    /// "theoretical peak" line of paper Figs. 6 and 7.
    pub link_msg_overhead_ns: u64,
    /// Software offload: lock-free enqueue of one command descriptor onto
    /// the offload command queue (ticket CAS + cache-padded slot publish).
    /// This is the *entire* per-message cost an application thread pays on
    /// the send path in offload mode — the design's selling point.
    pub offload_enqueue_ns: u64,
    /// Software offload: worker-side cost per command popped while
    /// batch-draining the command queue (slot read + seq release).
    pub offload_drain_ns: u64,
    /// Software offload: extra latency charged on the first batch after a
    /// worker went idle (the nap-and-reschedule wake-up of a sleeping
    /// dedicated thread).
    pub offload_wakeup_ns: u64,
    /// Reliable transport: base acknowledgment timeout before a dropped
    /// frame is retransmitted (doubled per attempt, as in the native
    /// runtime's backoff). Only charged when a fault plan drops frames.
    pub retransmit_timeout_ns: u64,
}

impl CostModel {
    /// Build the model for a fabric, filling in calibrated software costs.
    pub fn for_fabric(fabric: &FabricConfig) -> Self {
        Self {
            send_software_ns: 250,
            injection_ns: fabric.injection_overhead_ns,
            extraction_ns: fabric.extraction_overhead_ns,
            cqe_drain_ns: 30,
            wire_latency_ns: fabric.wire_latency_ns,
            delivery_jitter_ns: fabric.delivery_jitter_ns,
            bandwidth_bytes_per_us: fabric.bandwidth_bytes_per_us,
            match_base_ns: 60,
            match_traverse_ns: 2,
            seq_check_ns: 30,
            oos_buffer_ns: 180,
            oos_drain_ns: 60,
            recv_software_ns: 200,
            poll_empty_ns: 80,
            complete_ns: 60,
            request_pool_ns: 60,
            link_msg_overhead_ns: 35,
            offload_enqueue_ns: 40,
            offload_drain_ns: 20,
            offload_wakeup_ns: 2_000,
            retransmit_timeout_ns: 5_000,
        }
    }

    /// Aggregate (link-level) peak message rate for a payload size: the
    /// black horizontal line of paper Figs. 6 and 7.
    pub fn link_peak_msg_rate(&self, payload_len: usize, envelope: usize) -> f64 {
        let per_msg = self
            .link_msg_overhead_ns
            .max(self.serialization_ns(payload_len, envelope))
            .max(1);
        1.0e9 / per_msg as f64
    }

    /// Time one message of `payload_len` bytes occupies the link.
    pub fn serialization_ns(&self, payload_len: usize, envelope: usize) -> u64 {
        ((payload_len + envelope) as u64 * 1_000).div_ceil(self.bandwidth_bytes_per_us)
    }

    /// Injection time for a payload: the instance behaves as a synchronous
    /// DMA engine (max of overhead and serialization).
    pub fn injection_time_ns(&self, payload_len: usize, envelope: usize) -> u64 {
        self.injection_ns
            .max(self.serialization_ns(payload_len, envelope))
    }

    /// Virtual time for the matching work actually performed, as reported
    /// by the real matching engine.
    pub fn match_time_ns(&self, work: &MatchWork) -> u64 {
        self.match_base_ns
            + self.match_traverse_ns * work.traversed as u64
            + self.seq_check_ns * work.seq_checks as u64
            + self.oos_buffer_ns * work.oos_buffered as u64
            + self.oos_drain_ns * work.oos_drained as u64
            + self.complete_ns * work.matches as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::for_fabric(&FabricConfig::default())
    }

    #[test]
    fn match_time_scales_with_work() {
        let m = model();
        let cheap = m.match_time_ns(&MatchWork {
            seq_checks: 1,
            matches: 1,
            ..Default::default()
        });
        let oos = m.match_time_ns(&MatchWork {
            seq_checks: 1,
            oos_buffered: 1,
            ..Default::default()
        });
        assert!(
            oos > cheap,
            "buffering out-of-sequence must cost more than a clean match"
        );
        let deep_search = m.match_time_ns(&MatchWork {
            traversed: 100,
            matches: 1,
            ..Default::default()
        });
        assert!(deep_search > cheap);
    }

    #[test]
    fn injection_is_bandwidth_bound_for_large_payloads() {
        let m = model();
        assert_eq!(m.injection_time_ns(0, 28), m.injection_ns);
        let big = m.injection_time_ns(16 * 1024, 28);
        assert!(big > m.injection_ns);
        assert_eq!(big, m.serialization_ns(16 * 1024, 28));
    }

    #[test]
    fn costs_inherit_fabric_parameters() {
        let f = FabricConfig::default();
        let m = CostModel::for_fabric(&f);
        assert_eq!(m.injection_ns, f.injection_overhead_ns);
        assert_eq!(m.extraction_ns, f.extraction_overhead_ns);
        assert_eq!(m.delivery_jitter_ns, f.delivery_jitter_ns);
    }
}
