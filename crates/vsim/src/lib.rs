//! A deterministic virtual-time (discrete-event) executor for contention
//! experiments.
//!
//! # Why this exists
//!
//! The paper's figures need 20-64 hardware threads genuinely contending on
//! locks — something a wall-clock benchmark cannot exhibit on an arbitrary
//! host (this reproduction's build machine has a single core). `fairmpi-vsim`
//! replaces *time* while keeping the *algorithms real*: simulated threads run
//! the actual matching engine, the actual sequence counters and the actual
//! assignment strategies, but every compute step, lock acquisition and wire
//! traversal advances a virtual clock instead of burning CPU.
//!
//! The executor models:
//!
//! * **cores** — at most `Machine::cores` simulated threads execute at once;
//!   the rest wait in a run queue (so 40 threads on 20 cores timeshare, as
//!   on the real testbed);
//! * **locks** — FIFO wait queues; acquisition costs grow with the number of
//!   waiters (cache-line bouncing), which is the mechanism behind the
//!   paper's contention collapses; `try_lock` fails instantly when held;
//! * **the wire** — per-message latency plus bounded random jitter, so
//!   packets injected back-to-back on different instances arrive reordered
//!   and the *real* matcher produces *real* out-of-sequence counts
//!   (Table II's numbers are measured, not modeled);
//! * **costs** — a calibrated [`CostModel`] charging injection, extraction,
//!   sequence validation, queue traversal and out-of-sequence buffering.
//!
//! Workloads (the paper's two benchmarks) are implemented as actor state
//! machines in [`workload`]; the generic machinery lives in [`engine`].

pub mod cost;
pub mod engine;
pub mod machine;
pub mod workload;

pub use cost::CostModel;
pub use engine::{Action, Actor, ActorId, LockId, Resume, SchedParams, Sim, WorldAccess};
pub use machine::{Machine, MachinePreset};
pub use workload::multirate::{MultirateResult, MultirateSim, RunHooks, SimDesign, SimMatchLayout};
pub use workload::rmamt::{RmamtResult, RmamtSim};
pub use workload::{SimAssignment, SimProgress};
