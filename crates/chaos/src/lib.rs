//! Deterministic fault injection for the fairmpi fabric.
//!
//! A [`FaultPlan`] is a small, copyable description of what should go wrong:
//! per-mille probabilities for packet drop / duplication / reordering /
//! delay, a probability of transient injection refusal (the software analog
//! of CQ-full / `ENOBUFS`), and an optional permanent context death. Plans
//! are seeded and the randomness is a hand-rolled xorshift, so a given plan
//! replays the same fault schedule every run — chaos tests are ordinary
//! deterministic tests.
//!
//! The plan itself is policy; the [`ChaosEngine`] is the mechanism. The
//! fabric owns one engine per world and consults it at the two boundaries
//! faults occur in real interconnects: when a sender *injects* (refusal) and
//! when the wire *delivers* (drop / dup / reorder / delay, plus the kill
//! trigger). Everything above the fabric — retransmission, failover,
//! watchdogs — reacts to the injected faults exactly as it would to real
//! ones.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Per-mille denominator used by every probability knob.
pub const PM_SCALE: u16 = 1000;

/// A tiny xorshift64 PRNG: deterministic, dependency-free, and good enough
/// to schedule faults (we need reproducibility, not statistical quality).
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator; a zero seed is remapped (xorshift has a zero
    /// fixed point).
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = step(self.state);
        self.state
    }

    /// A draw uniform over `0..PM_SCALE`, for per-mille comparisons.
    pub fn draw_pm(&mut self) -> u16 {
        (self.next_u64() % u64::from(PM_SCALE)) as u16
    }
}

/// One xorshift64 step (Marsaglia's 13/7/17 triple).
fn step(mut s: u64) -> u64 {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    s
}

/// Permanent death of one network context: after the fabric has observed
/// `after` sends, context `context` of rank `rank` stops accepting traffic
/// forever. Models a NIC port / endpoint failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KillSpec {
    /// Victim rank.
    pub rank: u32,
    /// Victim context index within that rank.
    pub context: usize,
    /// Number of fabric sends observed before the kill fires.
    pub after: u64,
}

/// A seeded description of everything that should go wrong on the fabric.
///
/// All probabilities are per-mille (`0..=1000`). The default plan injects
/// nothing; builders switch individual fault classes on. The retry knobs
/// (`timeout_ns`, `max_retries`) ride along so a single plan fully
/// determines both the faults and the recovery policy reacting to them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed for the fault schedule.
    pub seed: u64,
    /// Per-mille probability a delivered packet is silently dropped.
    pub drop_pm: u16,
    /// Per-mille probability a delivered packet arrives twice.
    pub dup_pm: u16,
    /// Per-mille probability a packet is held back and released after a
    /// later packet (reordering).
    pub reorder_pm: u16,
    /// Per-mille probability an injection attempt is transiently refused
    /// (CQ-full / `ENOBUFS`); the sender must back off and retry.
    pub refuse_pm: u16,
    /// Per-mille probability a packet is delayed by `delay_ns`.
    pub delay_pm: u16,
    /// Extra latency applied to delayed packets.
    pub delay_ns: u64,
    /// Optional permanent context death.
    pub kill: Option<KillSpec>,
    /// Base retransmit timeout (real nanoseconds on the native path).
    pub timeout_ns: u64,
    /// Retransmit attempts before a send fails with `RetryExhausted`.
    pub max_retries: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 1,
            drop_pm: 0,
            dup_pm: 0,
            reorder_pm: 0,
            refuse_pm: 0,
            delay_pm: 0,
            delay_ns: 0,
            kill: None,
            timeout_ns: 200_000,
            max_retries: 20,
        }
    }
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled yet.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Set the drop probability (per-mille).
    pub fn drop(mut self, pm: u16) -> Self {
        self.drop_pm = pm.min(PM_SCALE);
        self
    }

    /// Set the duplication probability (per-mille).
    pub fn dup(mut self, pm: u16) -> Self {
        self.dup_pm = pm.min(PM_SCALE);
        self
    }

    /// Set the reorder probability (per-mille).
    pub fn reorder(mut self, pm: u16) -> Self {
        self.reorder_pm = pm.min(PM_SCALE);
        self
    }

    /// Set the transient injection-refusal probability (per-mille).
    pub fn refuse(mut self, pm: u16) -> Self {
        self.refuse_pm = pm.min(PM_SCALE);
        self
    }

    /// Set the delay probability (per-mille) and magnitude.
    pub fn delay(mut self, pm: u16, ns: u64) -> Self {
        self.delay_pm = pm.min(PM_SCALE);
        self.delay_ns = ns;
        self
    }

    /// Kill `context` of `rank` after `after` observed sends.
    pub fn kill(mut self, rank: u32, context: usize, after: u64) -> Self {
        self.kill = Some(KillSpec {
            rank,
            context,
            after,
        });
        self
    }

    /// Override the base retransmit timeout.
    pub fn timeout_ns(mut self, ns: u64) -> Self {
        self.timeout_ns = ns.max(1);
        self
    }

    /// Override the retry budget.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// True if the plan can actually perturb anything. Inert plans are
    /// treated as "chaos off" so the happy path stays bit-identical.
    pub fn is_active(&self) -> bool {
        self.drop_pm > 0
            || self.dup_pm > 0
            || self.reorder_pm > 0
            || self.refuse_pm > 0
            || self.delay_pm > 0
            || self.kill.is_some()
    }
}

/// What the wire decided to do with one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver normally.
    Deliver,
    /// Drop silently; only retransmission recovers it.
    Drop,
    /// Deliver twice; the receiver must suppress the duplicate.
    Duplicate,
    /// Hold back and release after a later packet.
    Reorder,
    /// Deliver after an extra delay of the given nanoseconds.
    Delay(u64),
}

/// The thread-safe runtime of a [`FaultPlan`].
///
/// One xorshift state advanced with an atomic `fetch_update` serves all
/// threads: on the single-threaded vsim path the schedule is exactly
/// reproducible; on the native path the *set* of faults drawn is seeded but
/// their assignment to packets depends on thread interleaving, which is the
/// point — the recovery machinery must cope with any assignment.
#[derive(Debug)]
pub struct ChaosEngine {
    plan: FaultPlan,
    state: AtomicU64,
    observed: AtomicU64,
    kill_fired: AtomicBool,
}

impl ChaosEngine {
    /// Build the engine for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            state: AtomicU64::new(if plan.seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                plan.seed
            }),
            observed: AtomicU64::new(0),
            kill_fired: AtomicBool::new(false),
        }
    }

    /// The plan this engine executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// One atomic per-mille draw shared by all threads.
    fn draw_pm(&self) -> u16 {
        let next = self
            .state
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| Some(step(s)))
            .map(step)
            .expect("fetch_update with Some never fails");
        (next % u64::from(PM_SCALE)) as u16
    }

    /// Should this injection attempt be transiently refused (CQ-full)?
    pub fn decide_refusal(&self) -> bool {
        self.plan.refuse_pm > 0 && self.draw_pm() < self.plan.refuse_pm
    }

    /// What happens to one packet on the wire. Fault classes are bands of a
    /// single draw, so their probabilities are exact and mutually exclusive.
    pub fn decide_delivery(&self) -> Delivery {
        let p = &self.plan;
        let bands = p.drop_pm + p.dup_pm + p.reorder_pm + p.delay_pm;
        if bands == 0 {
            return Delivery::Deliver;
        }
        let r = self.draw_pm();
        if r < p.drop_pm {
            Delivery::Drop
        } else if r < p.drop_pm + p.dup_pm {
            Delivery::Duplicate
        } else if r < p.drop_pm + p.dup_pm + p.reorder_pm {
            Delivery::Reorder
        } else if r < bands {
            Delivery::Delay(p.delay_ns)
        } else {
            Delivery::Deliver
        }
    }

    /// Record one observed fabric send and return the kill spec exactly
    /// once, when the observation count crosses its trigger.
    pub fn observe_send(&self) -> Option<KillSpec> {
        let n = self.observed.fetch_add(1, Ordering::Relaxed) + 1;
        let kill = self.plan.kill?;
        if n > kill.after && !self.kill_fired.swap(true, Ordering::Relaxed) {
            return Some(kill);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..1000 {
            let v = a.next_u64();
            assert_eq!(v, b.next_u64());
            assert_ne!(v, 0, "xorshift must never reach the zero fixed point");
        }
        assert_ne!(
            XorShift64::new(0).next_u64(),
            0,
            "zero seed must be remapped"
        );
    }

    #[test]
    fn draws_cover_the_pm_range() {
        let mut rng = XorShift64::new(7);
        let mut lo = u16::MAX;
        let mut hi = 0;
        for _ in 0..10_000 {
            let d = rng.draw_pm();
            assert!(d < PM_SCALE);
            lo = lo.min(d);
            hi = hi.max(d);
        }
        assert!(
            lo < 50 && hi >= 950,
            "draws should span 0..1000: {lo}..{hi}"
        );
    }

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::seeded(3);
        assert!(!plan.is_active());
        let engine = ChaosEngine::new(plan);
        for _ in 0..100 {
            assert_eq!(engine.decide_delivery(), Delivery::Deliver);
            assert!(!engine.decide_refusal());
        }
    }

    #[test]
    fn certain_drop_always_drops() {
        let engine = ChaosEngine::new(FaultPlan::seeded(5).drop(1000));
        for _ in 0..100 {
            assert_eq!(engine.decide_delivery(), Delivery::Drop);
        }
    }

    #[test]
    fn bands_are_mutually_exclusive_and_roughly_proportional() {
        let engine = ChaosEngine::new(FaultPlan::seeded(9).drop(100).dup(100).delay(100, 5_000));
        let mut drops = 0;
        let mut dups = 0;
        let mut delays = 0;
        let mut clean = 0;
        for _ in 0..10_000 {
            match engine.decide_delivery() {
                Delivery::Drop => drops += 1,
                Delivery::Duplicate => dups += 1,
                Delivery::Delay(ns) => {
                    assert_eq!(ns, 5_000);
                    delays += 1;
                }
                Delivery::Reorder => panic!("reorder band is zero"),
                Delivery::Deliver => clean += 1,
            }
        }
        for count in [drops, dups, delays] {
            assert!(
                (500..2_000).contains(&count),
                "a 10% band over 10k draws should land near 1000, got {count}"
            );
        }
        assert!(clean > 6_000);
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::seeded(0xFA17).drop(250).dup(250);
        let a = ChaosEngine::new(plan);
        let b = ChaosEngine::new(plan);
        for _ in 0..1000 {
            assert_eq!(a.decide_delivery(), b.decide_delivery());
        }
    }

    #[test]
    fn kill_fires_exactly_once_after_threshold() {
        let engine = ChaosEngine::new(FaultPlan::seeded(1).kill(1, 0, 3));
        let mut fired = Vec::new();
        for i in 0..10 {
            if let Some(k) = engine.observe_send() {
                fired.push((i, k));
            }
        }
        assert_eq!(fired.len(), 1, "kill must fire exactly once");
        let (at, kill) = fired[0];
        assert_eq!(at, 3, "kill fires on the first send past `after`");
        assert_eq!((kill.rank, kill.context, kill.after), (1, 0, 3));
        assert_eq!(ChaosEngine::new(FaultPlan::seeded(1)).observe_send(), None);
    }

    // Environment-driven plan construction lives in `fairmpi::env`
    // (`fault_plan_from_env`), tested there.
}
