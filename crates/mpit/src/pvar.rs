//! Performance-variable metadata: classes, bindings, info records, values.

use std::fmt;

use fairmpi_spc::HISTOGRAM_BUCKETS;

/// Performance-variable class (MPI-3 §14.3.7, `MPI_T_PVAR_CLASS_*`).
///
/// Only the classes this runtime actually exports are modeled; `HISTOGRAM`
/// stands in for MPI_T's `GENERIC` class the way tools commonly use it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PvarClass {
    /// Monotonically increasing event count (`MPI_T_PVAR_CLASS_COUNTER`).
    Counter,
    /// Monotonically increasing time accumulator
    /// (`MPI_T_PVAR_CLASS_TIMER`), in nanoseconds.
    Timer,
    /// Highest value a level reached
    /// (`MPI_T_PVAR_CLASS_HIGHWATERMARK`).
    HighWatermark,
    /// Lowest value a level reached (`MPI_T_PVAR_CLASS_LOWWATERMARK`).
    LowWatermark,
    /// Log2-bucket distribution (`MPI_T_PVAR_CLASS_GENERIC` as used for
    /// histogram variables).
    Histogram,
}

impl PvarClass {
    /// Stable machine-readable name (used in the JSON exporter).
    pub fn name(self) -> &'static str {
        match self {
            PvarClass::Counter => "counter",
            PvarClass::Timer => "timer",
            PvarClass::HighWatermark => "highwatermark",
            PvarClass::LowWatermark => "lowwatermark",
            PvarClass::Histogram => "histogram",
        }
    }
}

/// What object a variable is bound to (`MPI_T_BIND_*`).
///
/// Everything this runtime exports today aggregates per rank
/// ([`PvarBind::NoObject`]); the other bindings document where the matching
/// and CRI variables would attach in a full `MPI_T` implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PvarBind {
    /// Whole-process variable (`MPI_T_BIND_NO_OBJECT`).
    NoObject,
    /// Bound to a communicator (`MPI_T_BIND_MPI_COMM`) — the matching-layer
    /// variables in a per-communicator build.
    Communicator,
    /// Bound to one communication resources instance (no MPI_T equivalent;
    /// CRIs are this paper's contribution).
    Instance,
}

impl PvarBind {
    /// Stable machine-readable name (used in the JSON exporter).
    pub fn name(self) -> &'static str {
        match self {
            PvarBind::NoObject => "no_object",
            PvarBind::Communicator => "communicator",
            PvarBind::Instance => "instance",
        }
    }
}

/// Metadata for one performance variable (`MPI_T_pvar_get_info`).
#[derive(Debug, Clone)]
pub struct PvarInfo {
    /// Unique variable name.
    pub name: String,
    /// Human-readable description.
    pub desc: &'static str,
    /// Variable class.
    pub class: PvarClass,
    /// Object binding.
    pub bind: PvarBind,
    /// Whether the variable can be written/reset through the interface.
    pub readonly: bool,
    /// Whether the variable runs continuously or obeys session start/stop.
    pub continuous: bool,
}

/// A value read from a performance variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PvarValue {
    /// Counters, timers and watermarks read one number.
    Scalar(u64),
    /// Histograms read the full bucket vector plus sum/count, so tools can
    /// derive means and tail shares.
    Histogram {
        /// Per-bucket observation counts (see
        /// [`fairmpi_spc::bucket_for`] for the bucket layout).
        buckets: [u64; HISTOGRAM_BUCKETS],
        /// Saturating sum of all recorded values.
        sum: u64,
        /// Number of recorded observations.
        count: u64,
    },
}

impl PvarValue {
    /// The scalar value, if this is a scalar class.
    pub fn as_scalar(&self) -> Option<u64> {
        match self {
            PvarValue::Scalar(v) => Some(*v),
            PvarValue::Histogram { .. } => None,
        }
    }
}

/// Errors from the pvar interface (the `MPI_T_ERR_*` family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpitError {
    /// Variable index out of range (`MPI_T_ERR_INVALID_INDEX`).
    InvalidIndex,
    /// Handle does not belong to this session
    /// (`MPI_T_ERR_INVALID_HANDLE`).
    InvalidHandle,
    /// Start/stop on a continuous variable
    /// (`MPI_T_ERR_PVAR_NO_STARTSTOP`).
    NoStartStop,
    /// Write/reset on a readonly variable (`MPI_T_ERR_PVAR_NO_WRITE`).
    NoWrite,
}

impl fmt::Display for MpitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MpitError::InvalidIndex => "invalid performance-variable index",
            MpitError::InvalidHandle => "handle does not belong to this session",
            MpitError::NoStartStop => "variable is continuous; start/stop not permitted",
            MpitError::NoWrite => "variable is readonly; reset/write not permitted",
        };
        f.write_str(s)
    }
}

impl std::error::Error for MpitError {}
