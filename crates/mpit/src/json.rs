//! Minimal JSON tree, serializer and parser (the build is offline; no
//! serde).
//!
//! The exporters, the `BENCH_*.json` result files and the
//! `fairmpi-report` comparator all speak through [`Value`]: build a tree,
//! [`Value::render`] it, [`parse`] it back. The parser is a plain
//! recursive-descent over the full JSON grammar, so files written by other
//! tools load too.

use std::fmt::Write as _;

use crate::pvar::PvarValue;
use crate::registry::PvarRegistry;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; u64 counters survive to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serialize with 2-space indentation and a trailing newline at the
    /// top level.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Num(v as f64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Num(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Snapshot every pvar's global value as a JSON array value.
///
/// Each element carries the full `MPI_T_pvar_get_info` metadata next to
/// the value, so a dump is self-describing:
/// `{name, class, bind, readonly, continuous, value}` for scalars, with
/// `buckets`/`sum`/`count` instead of `value` for histograms.
pub fn pvars_value(registry: &PvarRegistry) -> Value {
    let mut items = Vec::with_capacity(registry.num_pvars());
    for index in 0..registry.num_pvars() {
        let info = registry.info(index).expect("index in range");
        let mut fields = vec![
            ("name".to_string(), Value::from(info.name.clone())),
            ("class".to_string(), Value::from(info.class.name())),
            ("bind".to_string(), Value::from(info.bind.name())),
            ("readonly".to_string(), Value::from(info.readonly)),
            ("continuous".to_string(), Value::from(info.continuous)),
        ];
        match registry.read_raw(index).expect("index in range") {
            PvarValue::Scalar(v) => fields.push(("value".to_string(), Value::from(v))),
            PvarValue::Histogram {
                buckets,
                sum,
                count,
            } => {
                fields.push((
                    "buckets".to_string(),
                    Value::Arr(buckets.iter().map(|b| Value::from(*b)).collect()),
                ));
                fields.push(("sum".to_string(), Value::from(sum)));
                fields.push(("count".to_string(), Value::from(count)));
            }
        }
        items.push(Value::Obj(fields));
    }
    Value::Arr(items)
}

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}
