use std::sync::Arc;

use fairmpi_spc::{Counter, Histogram, SpcSet, Watermark, HISTOGRAM_BUCKETS};

use crate::json;
use crate::prometheus;
use crate::{MpitError, PvarClass, PvarRegistry, PvarSession, PvarValue};

fn registry() -> (Arc<SpcSet>, PvarRegistry) {
    let spc = Arc::new(SpcSet::new());
    let registry = PvarRegistry::new(Arc::clone(&spc));
    (spc, registry)
}

#[test]
fn registry_enumerates_every_class_with_unique_names() {
    let (_, registry) = registry();
    assert_eq!(
        registry.num_pvars(),
        Counter::COUNT + 2 * Watermark::COUNT + Histogram::COUNT
    );
    let mut names: Vec<String> = (0..registry.num_pvars())
        .map(|i| registry.info(i).unwrap().name.clone())
        .collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), registry.num_pvars(), "names are unique");
    // index_of inverts info().name for every variable.
    for i in 0..registry.num_pvars() {
        let name = registry.info(i).unwrap().name.clone();
        assert_eq!(registry.index_of(&name), Some(i));
    }
    assert!(registry.info(registry.num_pvars()).is_err());
    assert!(registry.index_of("no_such_pvar").is_none());
}

#[test]
fn class_and_mutability_metadata() {
    let (_, registry) = registry();
    let timer = registry.index_of("match_time_ns").unwrap();
    assert_eq!(registry.info(timer).unwrap().class, PvarClass::Timer);
    let counter = registry.index_of("out_of_sequence_messages").unwrap();
    assert_eq!(registry.info(counter).unwrap().class, PvarClass::Counter);
    let hwm = registry.index_of("unexpected_queue_depth_hwm").unwrap();
    let info = registry.info(hwm).unwrap();
    assert_eq!(info.class, PvarClass::HighWatermark);
    assert!(info.continuous && info.readonly);
    let lwm = registry.index_of("unexpected_queue_depth_lwm").unwrap();
    assert_eq!(registry.info(lwm).unwrap().class, PvarClass::LowWatermark);
    let hist = registry.index_of("drain_batch_size_hist").unwrap();
    assert_eq!(registry.info(hist).unwrap().class, PvarClass::Histogram);
}

#[test]
fn fresh_handle_reads_zero_until_started() {
    let (spc, registry) = registry();
    spc.add(Counter::MessagesSent, 10);
    let mut session = PvarSession::new(&registry);
    let h = session
        .handle_alloc(registry.index_of("messages_sent").unwrap())
        .unwrap();
    // Allocated stopped: the 10 pre-existing events are invisible.
    assert_eq!(session.read(h).unwrap(), PvarValue::Scalar(0));
    session.start(h).unwrap();
    spc.add(Counter::MessagesSent, 3);
    assert_eq!(session.read(h).unwrap(), PvarValue::Scalar(3));
}

#[test]
fn stop_freezes_and_start_rebase() {
    let (spc, registry) = registry();
    let mut session = PvarSession::new(&registry);
    let h = session
        .handle_alloc(registry.index_of("messages_sent").unwrap())
        .unwrap();
    session.start(h).unwrap();
    spc.add(Counter::MessagesSent, 5);
    session.stop(h).unwrap();
    spc.add(Counter::MessagesSent, 100);
    assert_eq!(
        session.read(h).unwrap(),
        PvarValue::Scalar(5),
        "stopped handle keeps the frozen value"
    );
    session.start(h).unwrap();
    spc.add(Counter::MessagesSent, 2);
    assert_eq!(
        session.read(h).unwrap(),
        PvarValue::Scalar(2),
        "restart rebases to the current global value"
    );
}

#[test]
fn sessions_are_isolated_from_each_other() {
    let (spc, registry) = registry();
    let idx = registry.index_of("messages_sent").unwrap();

    let mut a = PvarSession::new(&registry);
    let ha = a.handle_alloc(idx).unwrap();
    a.start(ha).unwrap();
    spc.add(Counter::MessagesSent, 4);

    let mut b = PvarSession::new(&registry);
    let hb = b.handle_alloc(idx).unwrap();
    b.start(hb).unwrap();
    spc.add(Counter::MessagesSent, 6);

    assert_eq!(a.read(ha).unwrap(), PvarValue::Scalar(10));
    assert_eq!(b.read(hb).unwrap(), PvarValue::Scalar(6));

    // A's reset must not disturb B (the MPI_T per-session guarantee).
    a.reset(ha).unwrap();
    assert_eq!(a.read(ha).unwrap(), PvarValue::Scalar(0));
    assert_eq!(b.read(hb).unwrap(), PvarValue::Scalar(6));
    // And the shared global cell itself is untouched.
    assert_eq!(spc.get(Counter::MessagesSent), 10);
}

#[test]
fn watermarks_are_continuous_and_immutable() {
    let (spc, registry) = registry();
    let mut session = PvarSession::new(&registry);
    let h = session
        .handle_alloc(registry.index_of("unexpected_queue_depth_hwm").unwrap())
        .unwrap();
    spc.record_level(Watermark::UnexpectedQueueDepth, 17);
    // Continuous: readable immediately, no start needed.
    assert_eq!(session.read(h).unwrap(), PvarValue::Scalar(17));
    assert_eq!(session.start(h), Err(MpitError::NoStartStop));
    assert_eq!(session.stop(h), Err(MpitError::NoStartStop));
    assert_eq!(session.reset(h), Err(MpitError::NoWrite));
}

#[test]
fn histogram_handles_read_bucket_deltas() {
    let (spc, registry) = registry();
    spc.record_hist(Histogram::DrainBatchSize, 4); // pre-session noise
    let mut session = PvarSession::new(&registry);
    let h = session
        .handle_alloc(registry.index_of("drain_batch_size_hist").unwrap())
        .unwrap();
    session.start(h).unwrap();
    spc.record_hist(Histogram::DrainBatchSize, 0);
    spc.record_hist(Histogram::DrainBatchSize, 5);
    match session.read(h).unwrap() {
        PvarValue::Histogram {
            buckets,
            sum,
            count,
        } => {
            assert_eq!(count, 2, "pre-session observation subtracted");
            assert_eq!(sum, 5);
            assert_eq!(buckets[0], 1); // the zero
            assert_eq!(buckets[3], 1); // 5 → bucket 3 ([4,7])
            assert_eq!(buckets.iter().sum::<u64>(), 2);
        }
        other => panic!("expected histogram value, got {other:?}"),
    }
}

#[test]
fn invalid_handles_and_indices_error() {
    let (_, registry) = registry();
    let mut session = PvarSession::new(&registry);
    assert_eq!(
        session.handle_alloc(registry.num_pvars()),
        Err(MpitError::InvalidIndex)
    );
    let other_session_handle = {
        let mut other = PvarSession::new(&registry);
        other
            .handle_alloc(registry.index_of("messages_sent").unwrap())
            .unwrap()
    };
    // Same index value, but this session never allocated it.
    assert_eq!(
        session.read(other_session_handle),
        Err(MpitError::InvalidHandle)
    );
}

#[test]
fn prometheus_output_parses_back() {
    let (spc, registry) = registry();
    spc.add(Counter::MessagesSent, 42);
    spc.record_level(Watermark::InstanceRxDepth, 9);
    spc.record_hist(Histogram::DrainBatchSize, 3);
    spc.record_hist(Histogram::DrainBatchSize, 300);

    let page = prometheus::render(&registry);
    let samples = prometheus::parse(&page).expect("page must be well-formed");

    let lookup = |name: &str| -> f64 {
        samples
            .iter()
            .find(|s| s.name == name && s.le.is_none())
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(lookup("fairmpi_messages_sent"), 42.0);
    assert_eq!(lookup("fairmpi_instance_rx_depth_hwm"), 9.0);
    assert_eq!(lookup("fairmpi_instance_rx_depth_lwm"), 9.0);
    assert_eq!(lookup("fairmpi_drain_batch_size_hist_count"), 2.0);
    assert_eq!(lookup("fairmpi_drain_batch_size_hist_sum"), 303.0);

    // Histogram buckets are cumulative and end at +Inf == count.
    let buckets: Vec<&prometheus::Sample> = samples
        .iter()
        .filter(|s| s.name == "fairmpi_drain_batch_size_hist_bucket")
        .collect();
    assert_eq!(buckets.len(), HISTOGRAM_BUCKETS);
    let mut prev = 0.0;
    for b in &buckets {
        assert!(b.value >= prev, "bucket counts must be cumulative");
        prev = b.value;
    }
    assert_eq!(buckets.last().unwrap().le.as_deref(), Some("+Inf"));
    assert_eq!(buckets.last().unwrap().value, 2.0);
}

#[test]
fn json_snapshot_round_trips_and_matches_spc() {
    let (spc, registry) = registry();
    spc.add(Counter::OutOfSequenceMessages, 7);
    spc.add(Counter::MatchTimeNanos, 1234);
    spc.record_hist(Histogram::OosReplayChain, 2);

    let doc = json::Value::Obj(vec![
        ("schema".to_string(), json::Value::from("fairmpi.pvars")),
        ("version".to_string(), json::Value::from(1u64)),
        ("pvars".to_string(), json::pvars_value(&registry)),
    ]);
    let text = doc.render();
    let back = json::parse(&text).expect("snapshot must parse");

    assert_eq!(
        back.get("schema").and_then(|v| v.as_str()),
        Some("fairmpi.pvars")
    );
    let pvars = back.get("pvars").and_then(|v| v.as_arr()).unwrap();
    assert_eq!(pvars.len(), registry.num_pvars());

    let find = |name: &str| -> &json::Value {
        pvars
            .iter()
            .find(|p| p.get("name").and_then(|v| v.as_str()) == Some(name))
            .unwrap_or_else(|| panic!("missing pvar {name}"))
    };
    assert_eq!(
        find("out_of_sequence_messages")
            .get("value")
            .and_then(|v| v.as_u64()),
        Some(7)
    );
    assert_eq!(
        find("match_time_ns").get("value").and_then(|v| v.as_u64()),
        Some(1234)
    );
    let hist = find("oos_replay_chain_hist");
    assert_eq!(hist.get("count").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(hist.get("sum").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(
        hist.get("buckets")
            .and_then(|v| v.as_arr())
            .map(|a| a.len()),
        Some(HISTOGRAM_BUCKETS)
    );
}

#[test]
fn json_parser_handles_general_documents() {
    let v =
        json::parse(r#"{"a": [1, 2.5, -3], "b": {"nested": true}, "s": "x\n\"y\"", "n": null}"#)
            .unwrap();
    assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
    assert_eq!(
        v.get("b").unwrap().get("nested"),
        Some(&json::Value::Bool(true))
    );
    assert_eq!(v.get("s").unwrap().as_str(), Some("x\n\"y\""));
    assert_eq!(v.get("n"), Some(&json::Value::Null));
    assert!(json::parse("{\"unterminated\": ").is_err());
    assert!(json::parse("[1, 2,]").is_err());
    assert!(json::parse("{} trailing").is_err());
}

/// An untouched low watermark stores `u64::MAX` internally as its
/// fetch_min identity; every externally visible path — raw registry
/// reads, the JSON dump, the Prometheus page — must translate that
/// sentinel to 0 rather than report an absurd 18-quintillion "minimum".
#[test]
fn untouched_watermarks_export_zero_not_the_sentinel() {
    let (spc, registry) = registry();
    for w in Watermark::ALL {
        for suffix in ["_hwm", "_lwm"] {
            let idx = registry
                .index_of(&format!("{}{}", w.name(), suffix))
                .unwrap();
            assert_eq!(
                registry.read_raw(idx).unwrap(),
                PvarValue::Scalar(0),
                "{}{suffix} before any record",
                w.name()
            );
        }
    }
    let sentinel = u64::MAX.to_string();
    assert!(
        !prometheus::render(&registry).contains(&sentinel),
        "Prometheus page leaked the untouched-lwm sentinel"
    );
    assert!(
        !json::pvars_value(&registry).render().contains(&sentinel),
        "JSON dump leaked the untouched-lwm sentinel"
    );

    // One record arms both extremes of that cell only; its neighbors keep
    // reading zero.
    spc.record_level(Watermark::OffloadQueueDepth, 17);
    let lwm = registry.index_of("offload_queue_depth_lwm").unwrap();
    assert_eq!(registry.read_raw(lwm).unwrap(), PvarValue::Scalar(17));
    let other = registry.index_of("posted_recv_queue_depth_lwm").unwrap();
    assert_eq!(registry.read_raw(other).unwrap(), PvarValue::Scalar(0));
}
