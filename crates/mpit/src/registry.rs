//! The performance-variable registry: enumeration and raw reads.

use std::sync::Arc;

use fairmpi_spc::{Counter, Histogram, SpcSet, Watermark};

use crate::pvar::{MpitError, PvarBind, PvarClass, PvarInfo, PvarValue};

/// Where one pvar's data lives inside the [`SpcSet`].
#[derive(Debug, Clone, Copy)]
enum PvarSource {
    Counter(Counter),
    WatermarkHigh(Watermark),
    WatermarkLow(Watermark),
    Histogram(Histogram),
}

/// The set of performance variables exported by one rank's [`SpcSet`].
///
/// Mirrors `MPI_T_pvar_get_num` ([`PvarRegistry::num_pvars`]),
/// `MPI_T_pvar_get_info` ([`PvarRegistry::info`]) and
/// `MPI_T_pvar_get_index` ([`PvarRegistry::index_of`]). Variable indices
/// are stable for the life of the registry, as MPI_T requires.
pub struct PvarRegistry {
    spc: Arc<SpcSet>,
    vars: Vec<(PvarInfo, PvarSource)>,
}

fn counter_info(c: Counter) -> PvarInfo {
    // MatchTimeNanos accumulates nanoseconds, not events: TIMER class,
    // exactly like OMPI exposes OMPI_SPC_MATCH_TIME.
    let class = if c == Counter::MatchTimeNanos || c == Counter::RetryBackoffNanos {
        PvarClass::Timer
    } else {
        PvarClass::Counter
    };
    PvarInfo {
        name: c.name().to_string(),
        desc: counter_desc(c),
        class,
        bind: PvarBind::NoObject,
        readonly: true,
        continuous: false,
    }
}

fn counter_desc(c: Counter) -> &'static str {
    match c {
        Counter::MessagesSent => "point-to-point messages handed to the network",
        Counter::MessagesReceived => "messages fully matched and delivered",
        Counter::BytesSent => "bytes injected including the matching envelope",
        Counter::BytesReceived => "payload bytes delivered to user buffers",
        Counter::OutOfSequenceMessages => {
            "messages buffered because their sequence number was not next (OMPI_SPC_OUT_OF_SEQUENCE)"
        }
        Counter::MatchTimeNanos => {
            "nanoseconds spent inside the matching critical section (OMPI_SPC_MATCH_TIME)"
        }
        Counter::UnexpectedMessages => {
            "messages that arrived before a matching receive (OMPI_SPC_UNEXPECTED)"
        }
        Counter::ExpectedMessages => "messages matched directly against a posted receive",
        Counter::MaxPostedRecvQueueLen => "high-water mark of the posted-receive queue",
        Counter::MaxUnexpectedQueueLen => "high-water mark of the unexpected-message queue",
        Counter::MaxOutOfSequenceBuffered => "high-water mark of the out-of-sequence buffer",
        Counter::MatchQueueTraversals => "queue entries traversed during matching searches",
        Counter::OvertakenMessages => "messages admitted without sequence validation",
        Counter::EagerSends => "sends below the eager threshold",
        Counter::RendezvousSends => "sends using the rendezvous protocol",
        Counter::RmaPuts => "one-sided put operations initiated",
        Counter::RmaGets => "one-sided get operations initiated",
        Counter::RmaAccumulates => "one-sided accumulate operations initiated",
        Counter::RmaFlushes => "window flush synchronizations completed",
        Counter::CriRoundRobinAssignments => "CRI acquisitions served round-robin",
        Counter::CriDedicatedHits => "CRI acquisitions served from dedicated state",
        Counter::InstanceTryLockFailures => "failed try_lock attempts on an instance",
        Counter::InstanceLockAcquisitions => "successful instance lock acquisitions",
        Counter::ProgressCalls => "calls into the progress engine",
        Counter::CompletionsDrained => "completion events drained from completion queues",
        Counter::ProgressFallbackSweeps => "progress calls that swept beyond the dedicated instance",
        Counter::ProgressUsefulPasses => "progress passes that produced at least one completion",
        Counter::ProgressWastedPasses => "progress passes that produced nothing",
        Counter::OffloadCommands => "command descriptors enqueued to offload workers",
        Counter::OffloadBatches => "command batches drained by offload workers",
        Counter::OffloadBackpressureStalls => {
            "enqueue attempts stalled or rejected by a full offload command queue"
        }
        Counter::ChaosDrops => "packets dropped on the wire by the active fault plan",
        Counter::ChaosDups => "packets duplicated on the wire by the active fault plan",
        Counter::ChaosReorders => "packets held back past a later packet by the fault plan",
        Counter::ChaosRefusals => "injection attempts transiently refused by the fault plan",
        Counter::Retransmits => "frames re-injected after an acknowledgment timeout",
        Counter::RetryBackoffNanos => "nanoseconds of exponential backoff between retransmits",
        Counter::DuplicatesSuppressed => "already-delivered frames discarded by receiver dedup",
        Counter::CriFailovers => "dead instances quarantined with pending frames re-queued",
        Counter::WatchdogTrips => "stall-watchdog firings while recovery made no progress",
    }
}

fn watermark_desc(w: Watermark) -> &'static str {
    match w {
        Watermark::PostedRecvQueueDepth => "posted-receive queue depth",
        Watermark::UnexpectedQueueDepth => "unexpected-message queue depth",
        Watermark::OutOfSequenceBuffered => "out-of-sequence messages parked",
        Watermark::InstancePendingOps => "in-flight operations per instance at injection",
        Watermark::InstanceRxDepth => "receive-ring depth at wire delivery",
        Watermark::OffloadQueueDepth => "offload command-queue depth at enqueue",
    }
}

fn histogram_desc(h: Histogram) -> &'static str {
    match h {
        Histogram::MatchDeliverAttempts => "PRQ entries inspected per incoming-message match",
        Histogram::MatchPostAttempts => "UMQ entries inspected per posted receive",
        Histogram::DrainBatchSize => "items extracted per progress-engine visit",
        Histogram::OosReplayChain => "out-of-sequence messages replayed per in-sequence arrival",
    }
}

impl PvarRegistry {
    /// Enumerate every variable the given counter set can answer for.
    ///
    /// Layout: all [`Counter`]s in index order, then for each [`Watermark`]
    /// a `<name>_hwm` high- and `<name>_lwm` low-watermark pair, then each
    /// [`Histogram`] as `<name>_hist`.
    pub fn new(spc: Arc<SpcSet>) -> Self {
        let mut vars = Vec::with_capacity(Counter::COUNT + 2 * Watermark::COUNT + Histogram::COUNT);
        for c in Counter::ALL {
            vars.push((counter_info(c), PvarSource::Counter(c)));
        }
        for w in Watermark::ALL {
            // Watermarks are readonly *and* continuous: they track a live
            // level, so MPI_T forbids start/stop on them (the same shape as
            // OMPI's water-mark SPC pvars).
            vars.push((
                PvarInfo {
                    name: format!("{}_hwm", w.name()),
                    desc: watermark_desc(w),
                    class: PvarClass::HighWatermark,
                    bind: PvarBind::NoObject,
                    readonly: true,
                    continuous: true,
                },
                PvarSource::WatermarkHigh(w),
            ));
            vars.push((
                PvarInfo {
                    name: format!("{}_lwm", w.name()),
                    desc: watermark_desc(w),
                    class: PvarClass::LowWatermark,
                    bind: PvarBind::NoObject,
                    readonly: true,
                    continuous: true,
                },
                PvarSource::WatermarkLow(w),
            ));
        }
        for h in Histogram::ALL {
            vars.push((
                PvarInfo {
                    name: format!("{}_hist", h.name()),
                    desc: histogram_desc(h),
                    class: PvarClass::Histogram,
                    bind: PvarBind::NoObject,
                    readonly: true,
                    continuous: false,
                },
                PvarSource::Histogram(h),
            ));
        }
        Self { spc, vars }
    }

    /// Number of exported variables (`MPI_T_pvar_get_num`).
    pub fn num_pvars(&self) -> usize {
        self.vars.len()
    }

    /// Metadata for variable `index` (`MPI_T_pvar_get_info`).
    pub fn info(&self, index: usize) -> Result<&PvarInfo, MpitError> {
        self.vars
            .get(index)
            .map(|(i, _)| i)
            .ok_or(MpitError::InvalidIndex)
    }

    /// Look a variable up by name (`MPI_T_pvar_get_index`).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.vars.iter().position(|(i, _)| i.name == name)
    }

    /// The counter set this registry reads from.
    pub fn spc(&self) -> &Arc<SpcSet> {
        &self.spc
    }

    /// Read the current global value of variable `index`, with no session
    /// baseline applied.
    pub fn read_raw(&self, index: usize) -> Result<PvarValue, MpitError> {
        let (_, source) = self.vars.get(index).ok_or(MpitError::InvalidIndex)?;
        Ok(match *source {
            PvarSource::Counter(c) => PvarValue::Scalar(self.spc.get(c)),
            PvarSource::WatermarkHigh(w) => PvarValue::Scalar(self.spc.watermark(w).high()),
            PvarSource::WatermarkLow(w) => PvarValue::Scalar(self.spc.watermark(w).low()),
            PvarSource::Histogram(h) => {
                let cell = self.spc.histogram(h);
                PvarValue::Histogram {
                    buckets: cell.snapshot(),
                    sum: cell.sum(),
                    count: cell.count(),
                }
            }
        })
    }
}
