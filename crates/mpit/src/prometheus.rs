//! Hand-rolled Prometheus text exposition (format version 0.0.4).
//!
//! The build is offline, so instead of a client library this module writes
//! the exposition format directly: `# HELP`/`# TYPE` headers, one sample
//! line per scalar, and the cumulative `_bucket{le="..."}`/`_sum`/`_count`
//! triplet for histograms. [`parse`] reads the same subset back, which is
//! how the tests prove the output is well-formed.

use fairmpi_spc::bucket_upper_bound;

use crate::pvar::{PvarClass, PvarValue};
use crate::registry::PvarRegistry;

/// Prefix applied to every exported metric name.
pub const METRIC_PREFIX: &str = "fairmpi_";

fn prom_type(class: PvarClass) -> &'static str {
    match class {
        // Timers accumulate like counters; watermarks can move only via
        // reset, so Prometheus-wise they are gauges.
        PvarClass::Counter | PvarClass::Timer => "counter",
        PvarClass::HighWatermark | PvarClass::LowWatermark => "gauge",
        PvarClass::Histogram => "histogram",
    }
}

/// Render every variable's current global value as one exposition page.
pub fn render(registry: &PvarRegistry) -> String {
    let mut out = String::new();
    for index in 0..registry.num_pvars() {
        let info = registry.info(index).expect("index in range");
        let value = registry.read_raw(index).expect("index in range");
        let name = format!("{METRIC_PREFIX}{}", info.name);
        out.push_str(&format!("# HELP {name} {}\n", info.desc));
        out.push_str(&format!("# TYPE {name} {}\n", prom_type(info.class)));
        match value {
            PvarValue::Scalar(v) => {
                out.push_str(&format!("{name} {v}\n"));
            }
            PvarValue::Histogram {
                buckets,
                sum,
                count,
            } => {
                let mut cumulative = 0u64;
                for (b, n) in buckets.iter().enumerate() {
                    cumulative = cumulative.saturating_add(*n);
                    match bucket_upper_bound(b) {
                        Some(ub) => {
                            out.push_str(&format!("{name}_bucket{{le=\"{ub}\"}} {cumulative}\n"))
                        }
                        None => {
                            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"))
                        }
                    }
                }
                out.push_str(&format!("{name}_sum {sum}\n"));
                out.push_str(&format!("{name}_count {count}\n"));
            }
        }
    }
    out
}

/// One sample line parsed back from an exposition page.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Full metric name, including any `_bucket`/`_sum`/`_count` suffix.
    pub name: String,
    /// The `le` label for histogram bucket lines.
    pub le: Option<String>,
    /// Sample value.
    pub value: f64,
}

/// Parse the subset of the exposition format [`render`] produces.
///
/// Returns `Err` with a line-numbered message on any malformed line, so
/// tests (and the CI smoke check) can assert the page round-trips.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator", lineno + 1))?;
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("line {}: bad value {value_part:?}", lineno + 1))?;
        let (name, le) = match name_part.split_once('{') {
            None => (name_part.to_string(), None),
            Some((name, labels)) => {
                let labels = labels
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated labels", lineno + 1))?;
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|rest| rest.strip_suffix('"'))
                    .ok_or_else(|| format!("line {}: expected le label", lineno + 1))?;
                (name.to_string(), Some(le.to_string()))
            }
        };
        if !name.starts_with(METRIC_PREFIX) {
            return Err(format!(
                "line {}: name lacks {METRIC_PREFIX} prefix",
                lineno + 1
            ));
        }
        samples.push(Sample { name, le, value });
    }
    Ok(samples)
}
