//! Pvar sessions and handles: start/stop/read/reset semantics.

use fairmpi_spc::HISTOGRAM_BUCKETS;

use crate::pvar::{MpitError, PvarClass, PvarValue};
use crate::registry::PvarRegistry;

/// An allocated handle inside one session (`MPI_T_pvar_handle_alloc`).
///
/// Plain index — only meaningful to the session that allocated it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PvarHandle(usize);

#[derive(Debug)]
struct HandleState {
    index: usize,
    /// Non-continuous variables only accumulate while started.
    started: bool,
    /// Global value captured at the last start/reset; reads subtract it.
    baseline: PvarValue,
    /// Value frozen by `stop` (`None` while running).
    frozen: Option<PvarValue>,
}

/// One measurement session (`MPI_T_pvar_session_create`).
///
/// Sessions isolate tools from each other: every handle carries its own
/// baseline, and [`PvarSession::reset`] rebases that baseline instead of
/// writing the shared [`fairmpi_spc::SpcSet`] cell. Two sessions reading
/// the same variable therefore never perturb each other — the guarantee
/// MPI_T §14.3.7 requires of per-session pvars.
pub struct PvarSession<'a> {
    registry: &'a PvarRegistry,
    handles: Vec<HandleState>,
}

fn zero_like(v: &PvarValue) -> PvarValue {
    match v {
        PvarValue::Scalar(_) => PvarValue::Scalar(0),
        PvarValue::Histogram { .. } => PvarValue::Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
            count: 0,
        },
    }
}

/// Element-wise saturating `now - baseline`. Saturating, not wrapping: a
/// concurrent global reset can legitimately move `now` below the baseline,
/// and a session must then read 0, not a number near `u64::MAX`.
fn delta(now: &PvarValue, baseline: &PvarValue) -> PvarValue {
    match (now, baseline) {
        (PvarValue::Scalar(n), PvarValue::Scalar(b)) => PvarValue::Scalar(n.saturating_sub(*b)),
        (
            PvarValue::Histogram {
                buckets: nb,
                sum: ns,
                count: nc,
            },
            PvarValue::Histogram {
                buckets: bb,
                sum: bs,
                count: bc,
            },
        ) => {
            let mut buckets = [0u64; HISTOGRAM_BUCKETS];
            for (out, (n, b)) in buckets.iter_mut().zip(nb.iter().zip(bb.iter())) {
                *out = n.saturating_sub(*b);
            }
            PvarValue::Histogram {
                buckets,
                sum: ns.saturating_sub(*bs),
                count: nc.saturating_sub(*bc),
            }
        }
        // A variable never changes shape, so mixed arms are unreachable;
        // fall back to the raw value rather than panic in telemetry code.
        (n, _) => n.clone(),
    }
}

impl<'a> PvarSession<'a> {
    /// Create an empty session over `registry`.
    pub fn new(registry: &'a PvarRegistry) -> Self {
        Self {
            registry,
            handles: Vec::new(),
        }
    }

    /// Bind variable `index` into this session (`MPI_T_pvar_handle_alloc`).
    ///
    /// Non-continuous variables start *stopped* with their baseline at the
    /// current global value, so a freshly allocated handle reads 0 until
    /// [`PvarSession::start`].
    pub fn handle_alloc(&mut self, index: usize) -> Result<PvarHandle, MpitError> {
        let info = self.registry.info(index)?;
        let continuous = info.continuous;
        let baseline = self.registry.read_raw(index)?;
        let frozen = if continuous {
            None
        } else {
            Some(zero_like(&baseline))
        };
        self.handles.push(HandleState {
            index,
            started: continuous,
            baseline,
            frozen,
        });
        Ok(PvarHandle(self.handles.len() - 1))
    }

    fn state(&self, h: PvarHandle) -> Result<&HandleState, MpitError> {
        self.handles.get(h.0).ok_or(MpitError::InvalidHandle)
    }

    fn state_mut(&mut self, h: PvarHandle) -> Result<&mut HandleState, MpitError> {
        self.handles.get_mut(h.0).ok_or(MpitError::InvalidHandle)
    }

    /// Variable class behind a handle (convenience for exporters).
    pub fn class(&self, h: PvarHandle) -> Result<PvarClass, MpitError> {
        let index = self.state(h)?.index;
        Ok(self.registry.info(index)?.class)
    }

    /// Begin accumulating (`MPI_T_pvar_start`). Rebases the baseline to the
    /// current global value; errors with [`MpitError::NoStartStop`] on
    /// continuous variables.
    pub fn start(&mut self, h: PvarHandle) -> Result<(), MpitError> {
        let registry = self.registry;
        let state = self.state_mut(h)?;
        if registry.info(state.index)?.continuous {
            return Err(MpitError::NoStartStop);
        }
        state.baseline = registry.read_raw(state.index)?;
        state.started = true;
        state.frozen = None;
        Ok(())
    }

    /// Freeze the handle's value (`MPI_T_pvar_stop`). Later reads return
    /// the frozen value until the next [`PvarSession::start`].
    pub fn stop(&mut self, h: PvarHandle) -> Result<(), MpitError> {
        let registry = self.registry;
        let state = self.state_mut(h)?;
        if registry.info(state.index)?.continuous {
            return Err(MpitError::NoStartStop);
        }
        let now = registry.read_raw(state.index)?;
        state.frozen = Some(delta(&now, &state.baseline));
        state.started = false;
        Ok(())
    }

    /// Read the handle's value (`MPI_T_pvar_read`).
    ///
    /// Continuous variables (watermarks) read the live global value;
    /// started non-continuous variables read the saturating delta from the
    /// session baseline; stopped ones read the frozen value.
    pub fn read(&self, h: PvarHandle) -> Result<PvarValue, MpitError> {
        let state = self.state(h)?;
        if let Some(frozen) = &state.frozen {
            return Ok(frozen.clone());
        }
        let now = self.registry.read_raw(state.index)?;
        if self.registry.info(state.index)?.continuous {
            return Ok(now);
        }
        Ok(delta(&now, &state.baseline))
    }

    /// Zero the handle's view of the variable (`MPI_T_pvar_reset`).
    ///
    /// Deviation from MPI_T proper, documented in the crate docs: instead
    /// of writing the global cell, reset rebases this session's baseline —
    /// other sessions' reads are unaffected. Watermarks are readonly and
    /// error with [`MpitError::NoWrite`].
    pub fn reset(&mut self, h: PvarHandle) -> Result<(), MpitError> {
        let registry = self.registry;
        let state = self.state_mut(h)?;
        if registry.info(state.index)?.readonly && registry.info(state.index)?.continuous {
            return Err(MpitError::NoWrite);
        }
        state.baseline = registry.read_raw(state.index)?;
        if state.frozen.is_some() {
            state.frozen = Some(zero_like(&state.baseline));
        }
        Ok(())
    }

    /// Number of handles allocated in this session.
    pub fn num_handles(&self) -> usize {
        self.handles.len()
    }
}
