//! MPI_T-style performance variables (`pvars`) over the SPC counter sets.
//!
//! The paper reads every number in Table II and Figs. 3–7 through
//! Software-based Performance Counters exposed via Open MPI's **MPI tool
//! information interface** (`MPI_T`, MPI-3 §14.3): a tool enumerates
//! performance variables, allocates handles inside a *session*, and uses
//! `MPI_T_pvar_{start,stop,read,reset}` to sample them without perturbing
//! the measured run. This crate reproduces that model over
//! [`fairmpi_spc::SpcSet`]:
//!
//! * [`PvarRegistry`] — enumeration and metadata (name, class, binding,
//!   readonly/continuous), mirroring `MPI_T_pvar_get_num` /
//!   `MPI_T_pvar_get_info` / `MPI_T_pvar_get_index`;
//! * [`PvarSession`] + [`PvarHandle`] — mirroring
//!   `MPI_T_pvar_session_create` / `MPI_T_pvar_handle_alloc`, with
//!   per-session start baselines so concurrent tools don't see each other's
//!   resets;
//! * variable classes `COUNTER`, `TIMER`, `HIGHWATERMARK`, `LOWWATERMARK`
//!   and a log2-bucket `HISTOGRAM` extension (MPI_T's generic class), fed
//!   by the watermark/histogram cells of the SPC set;
//! * text exporters: [`prometheus`] exposition and a [`json`] snapshot,
//!   both hand-rolled (the build is offline; no serde).
//!
//! The deviation from MPI_T proper is deliberate and documented per item:
//! reads return Rust values instead of filling caller buffers, and
//! `reset` rebases the *session's* baseline rather than writing the global
//! cell (so one tool's reset can never corrupt another's view — the same
//! end MPI_T achieves by making most OMPI SPC pvars readonly).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use fairmpi_spc::{Counter, SpcSet};
//! use fairmpi_mpit::{PvarRegistry, PvarSession, PvarValue};
//!
//! let spc = Arc::new(SpcSet::new());
//! let registry = PvarRegistry::new(Arc::clone(&spc));
//! let mut session = PvarSession::new(&registry);
//! let idx = registry.index_of("messages_sent").unwrap();
//! let h = session.handle_alloc(idx).unwrap();
//! session.start(h).unwrap();
//! spc.inc(Counter::MessagesSent);
//! assert_eq!(session.read(h).unwrap(), PvarValue::Scalar(1));
//! ```

mod pvar;
mod registry;
mod session;

pub mod json;
pub mod prometheus;

pub use pvar::{MpitError, PvarBind, PvarClass, PvarInfo, PvarValue};
pub use registry::PvarRegistry;
pub use session::{PvarHandle, PvarSession};

#[cfg(test)]
mod tests;
