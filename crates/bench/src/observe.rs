//! Observability wiring shared by the bench binaries.
//!
//! `--trace <out.json>` records a Chrome-trace-event file (load it in
//! Perfetto or `chrome://tracing`) and prints the lock-contention report;
//! `--spc-series <out.csv>` samples the SPC counters on a fixed virtual-time
//! interval and writes a per-interval rate time-series;
//! `--pvars <out.json>` reads the run through the MPI_T-style
//! performance-variable interface (`fairmpi-mpit`) and writes a JSON
//! snapshot plus a Prometheus exposition page next to it (`<out>.prom`).
//!
//! A full figure runs hundreds of simulations; a trace of all of them would
//! be unreadable and enormous. When any flag is present the binaries
//! instead run **one flagship design point** of their figure (see the
//! `*_flagship` constructors in [`crate::figures`]) under observation and
//! skip the sweep. The fig3/fig5/table2/diag binaries all share this exact
//! logic — [`Observe::from_env`] is the single place the flags are parsed.

use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::Arc;

use fairmpi_mpit::{json, prometheus, PvarRegistry, PvarSession, PvarValue};
use fairmpi_spc::{SpcSet, Watermark};
use fairmpi_trace as trace;
use fairmpi_vsim::{MultirateSim, RunHooks, SimDesign};

/// Rows of the `--pvars` scrape time-series: (virtual boundary ns, one
/// value per [`SCRAPE_PVARS`] entry).
type ScrapeRows = Rc<RefCell<Vec<(u64, Vec<u64>)>>>;

/// The scrape callback handed to [`RunHooks`].
type ScrapeFn = Box<dyn FnMut(u64, &SpcSet)>;

/// The pvars sampled into the `--pvars` time-series at each scrape
/// interval (a handful of rates tells the story; the full registry is
/// dumped once at the end).
const SCRAPE_PVARS: [&str; 8] = [
    "messages_sent",
    "messages_received",
    "out_of_sequence_messages",
    "match_time_ns",
    "instance_try_lock_failures",
    "progress_wasted_passes",
    "offload_commands",
    "offload_queue_depth_hwm",
];

/// Parsed observability flags.
#[derive(Debug, Default)]
pub struct Observe {
    /// Destination for the Chrome-trace-event JSON (`--trace`).
    pub trace_path: Option<PathBuf>,
    /// Destination for the SPC time-series CSV (`--spc-series`).
    pub spc_series_path: Option<PathBuf>,
    /// Destination for the MPI_T pvar snapshot JSON (`--pvars`).
    pub pvars_path: Option<PathBuf>,
    /// Chaos RNG seed for the run (`--chaos-seed <n>`).
    pub chaos_seed: Option<u64>,
    /// Chaos drop probability in per-mille (`--chaos-drop <pm>`).
    pub chaos_drop: Option<u16>,
}

impl Observe {
    /// Strip `--trace <path>` / `--spc-series <path>` / `--pvars <path>` /
    /// `--chaos-seed <n>` / `--chaos-drop <pm>` out of `args`, leaving the
    /// binary's own arguments in place.
    pub fn from_args(args: &mut Vec<String>) -> Self {
        fn take(args: &mut Vec<String>, flag: &str) -> Option<String> {
            let i = args.iter().position(|a| a == flag)?;
            assert!(i + 1 < args.len(), "{flag} requires a value argument");
            let value = args.remove(i + 1);
            args.remove(i);
            Some(value)
        }
        Self {
            trace_path: take(args, "--trace").map(PathBuf::from),
            spc_series_path: take(args, "--spc-series").map(PathBuf::from),
            pvars_path: take(args, "--pvars").map(PathBuf::from),
            chaos_seed: take(args, "--chaos-seed")
                .map(|v| v.parse().expect("--chaos-seed takes an integer seed")),
            chaos_drop: take(args, "--chaos-drop")
                .map(|v| v.parse().expect("--chaos-drop takes a per-mille integer")),
        }
    }

    /// Parse the process arguments: the observability flags land in the
    /// returned `Observe`, everything else in the returned vector. The one
    /// entry point all bench binaries share.
    pub fn from_env() -> (Self, Vec<String>) {
        let mut args: Vec<String> = std::env::args().collect();
        let observe = Self::from_args(&mut args);
        (observe, args)
    }

    /// Whether any observability output was requested.
    pub fn active(&self) -> bool {
        self.trace_path.is_some() || self.spc_series_path.is_some() || self.pvars_path.is_some()
    }

    /// Arm the lossy wire on a design when `--chaos-seed` / `--chaos-drop`
    /// were given (every bench binary inherits the flags through here —
    /// none of them parses chaos options itself).
    pub fn apply_chaos(&self, design: SimDesign) -> SimDesign {
        if self.chaos_seed.is_none() && self.chaos_drop.is_none() {
            return design;
        }
        design.chaos(
            self.chaos_drop.unwrap_or(100),
            0,
            self.chaos_seed.unwrap_or(1),
        )
    }

    /// If any flag is set, run the binary's flagship design point under
    /// observation and return `true` (the caller should skip its sweep).
    /// Chaos flags apply to the flagship run.
    pub fn maybe_run(&self, label: &str, sim: impl FnOnce() -> MultirateSim) -> bool {
        if !self.active() {
            return false;
        }
        let mut sim = sim();
        sim.design = self.apply_chaos(sim.design);
        self.run(label, &sim);
        true
    }

    /// SPC sampling / pvar scrape interval in virtual nanoseconds
    /// (`FAIRMPI_SPC_INTERVAL_US`, default 50 µs).
    fn series_interval_ns(&self) -> u64 {
        crate::env_usize("FAIRMPI_SPC_INTERVAL_US", 50) as u64 * 1_000
    }

    /// Run one simulation under observation: arm the recorder on virtual
    /// time, execute, then write the requested artifacts and print the
    /// top-10 lock-contention table. Returns the simulation result.
    pub fn run(&self, label: &str, sim: &MultirateSim) -> fairmpi_vsim::MultirateResult {
        trace::start_virtual();
        let interval = self.series_interval_ns();

        // The pvar path: one SpcSet shared between the simulation and the
        // MPI_T registry, so every value a tool reads through a session is
        // the live cell the run updates — the acceptance criterion is that
        // session reads equal the SpcSnapshot numbers exactly.
        let spc = Arc::new(SpcSet::new());
        let registry = Arc::new(PvarRegistry::new(Arc::clone(&spc)));
        let mut session = PvarSession::new(&registry);
        let tracked: Vec<_> = [
            "out_of_sequence_messages",
            "match_time_ns",
            "offload_commands",
            "offload_batches",
            "offload_backpressure_stalls",
        ]
        .iter()
        .map(|name| {
            let idx = registry.index_of(name).expect("registered pvar");
            let h = session.handle_alloc(idx).expect("valid index");
            session.start(h).expect("counter pvars support start");
            (*name, h)
        })
        .collect();

        // Interval scraping through the registry (MPI_T-style periodic
        // reads), collected for the JSON time-series.
        let scraped: ScrapeRows = Rc::new(RefCell::new(Vec::new()));
        let scrape = self.pvars_path.is_some().then(|| {
            let rows = Rc::clone(&scraped);
            let registry = Arc::clone(&registry);
            let indices: Vec<usize> = SCRAPE_PVARS
                .iter()
                .map(|name| registry.index_of(name).expect("registered pvar"))
                .collect();
            let f: ScrapeFn = Box::new(move |boundary_ns, _spc| {
                let values = indices
                    .iter()
                    .map(|&i| match registry.read_raw(i).expect("valid index") {
                        PvarValue::Scalar(v) => v,
                        PvarValue::Histogram { count, .. } => count,
                    })
                    .collect();
                rows.borrow_mut().push((boundary_ns, values));
            });
            (interval, f)
        });

        let (result, series) = sim.run_hooked(RunHooks {
            spc: Some(Arc::clone(&spc)),
            series_interval_ns: self.spc_series_path.is_some().then_some(interval),
            scrape,
        });
        let t = trace::stop();

        println!("\n== observed run: {label} ==");
        println!(
            "{:.0} msg/s, {} messages, makespan {:.3} ms (virtual)",
            result.msg_rate_per_s,
            result.total_messages,
            result.makespan_ns as f64 / 1e6
        );

        if let Some(path) = &self.trace_path {
            if !cfg!(feature = "trace") {
                println!(
                    "note: fairmpi-bench built without the `trace` feature; \
                     the trace will be empty"
                );
            }
            std::fs::write(path, t.to_chrome_json()).expect("write trace json");
            println!(
                "wrote {} (open in Perfetto / chrome://tracing)",
                path.display()
            );
        }
        if let (Some(path), Some(series)) = (&self.spc_series_path, &series) {
            std::fs::write(path, series.to_csv()).expect("write spc series csv");
            println!(
                "wrote {} ({} samples @ {} ns)",
                path.display(),
                series.len(),
                interval
            );
        }
        if let Some(path) = &self.pvars_path {
            // The MPI_T sessions were opened on an untouched set, so their
            // reads must equal the snapshot counters for the same run.
            let mut session_reads = Vec::new();
            for (name, h) in &tracked {
                session.stop(*h).expect("counter pvars support stop");
                let read = session
                    .read(*h)
                    .expect("valid handle")
                    .as_scalar()
                    .expect("scalar class");
                let counter = fairmpi_spc::Counter::ALL
                    .iter()
                    .copied()
                    .find(|c| c.name() == *name)
                    .expect("pvar names mirror counter names");
                assert_eq!(
                    read, result.spc[counter],
                    "pvar session read of {name} diverged from the SPC snapshot"
                );
                session_reads.push((name.to_string(), json::Value::from(read)));
            }
            // Watermark pvars are continuous (no start/stop), so the
            // offload queue-depth high-water mark is checked as a raw
            // registry read against the live cell the run recorded into.
            let hwm_idx = registry
                .index_of("offload_queue_depth_hwm")
                .expect("registered pvar");
            let hwm = match registry.read_raw(hwm_idx).expect("valid index") {
                PvarValue::Scalar(v) => v,
                PvarValue::Histogram { .. } => unreachable!("watermark pvars are scalar"),
            };
            assert_eq!(
                hwm,
                spc.watermark(Watermark::OffloadQueueDepth).high(),
                "offload_queue_depth_hwm pvar diverged from the SPC watermark cell"
            );
            session_reads.push((
                "offload_queue_depth_hwm".to_string(),
                json::Value::from(hwm),
            ));
            crate::check(
                "MPI_T session reads equal the SpcSnapshot values for this run",
                true,
            );

            let series_rows = scraped
                .borrow()
                .iter()
                .map(|(t_ns, values)| {
                    let mut fields = vec![("t_ns".to_string(), json::Value::from(*t_ns))];
                    fields.extend(
                        SCRAPE_PVARS
                            .iter()
                            .zip(values.iter())
                            .map(|(name, v)| (name.to_string(), json::Value::from(*v))),
                    );
                    json::Value::Obj(fields)
                })
                .collect();
            let doc = json::Value::Obj(vec![
                ("schema".to_string(), json::Value::from("fairmpi.pvars")),
                ("version".to_string(), json::Value::from(1u64)),
                ("label".to_string(), json::Value::from(label)),
                ("interval_ns".to_string(), json::Value::from(interval)),
                (
                    "result".to_string(),
                    json::Value::Obj(vec![
                        (
                            "msg_rate_per_s".to_string(),
                            json::Value::Num(result.msg_rate_per_s),
                        ),
                        (
                            "makespan_ns".to_string(),
                            json::Value::from(result.makespan_ns),
                        ),
                        (
                            "total_messages".to_string(),
                            json::Value::from(result.total_messages),
                        ),
                    ]),
                ),
                ("session_reads".to_string(), json::Value::Obj(session_reads)),
                ("pvars".to_string(), json::pvars_value(&registry)),
                ("series".to_string(), json::Value::Arr(series_rows)),
            ]);
            std::fs::write(path, doc.render()).expect("write pvars json");
            println!(
                "wrote {} ({} pvars, {} series samples)",
                path.display(),
                registry.num_pvars(),
                scraped.borrow().len()
            );

            let prom_path = path.with_extension("prom");
            std::fs::write(&prom_path, prometheus::render(&registry))
                .expect("write prometheus page");
            println!("wrote {} (Prometheus text exposition)", prom_path.display());
        }

        print!("{}", t.contention_report().render(10));
        result
    }
}
