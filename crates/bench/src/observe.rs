//! Observability wiring shared by the bench binaries.
//!
//! `--trace <out.json>` records a Chrome-trace-event file (load it in
//! Perfetto or `chrome://tracing`) and prints the lock-contention report;
//! `--spc-series <out.csv>` samples the SPC counters on a fixed virtual-time
//! interval and writes a per-interval rate time-series.
//!
//! A full figure runs hundreds of simulations; a trace of all of them would
//! be unreadable and enormous. When either flag is present the binaries
//! instead run **one flagship design point** of their figure (see the
//! `*_flagship` constructors in [`crate::figures`]) under observation and
//! skip the sweep.

use std::path::PathBuf;

use fairmpi_trace as trace;
use fairmpi_vsim::MultirateSim;

/// Parsed observability flags.
#[derive(Debug, Default)]
pub struct Observe {
    /// Destination for the Chrome-trace-event JSON (`--trace`).
    pub trace_path: Option<PathBuf>,
    /// Destination for the SPC time-series CSV (`--spc-series`).
    pub spc_series_path: Option<PathBuf>,
}

impl Observe {
    /// Strip `--trace <path>` / `--spc-series <path>` out of `args`,
    /// leaving the binary's own arguments in place.
    pub fn from_args(args: &mut Vec<String>) -> Self {
        fn take(args: &mut Vec<String>, flag: &str) -> Option<PathBuf> {
            let i = args.iter().position(|a| a == flag)?;
            assert!(i + 1 < args.len(), "{flag} requires a path argument");
            let value = args.remove(i + 1);
            args.remove(i);
            Some(PathBuf::from(value))
        }
        Self {
            trace_path: take(args, "--trace"),
            spc_series_path: take(args, "--spc-series"),
        }
    }

    /// Whether any observability output was requested.
    pub fn active(&self) -> bool {
        self.trace_path.is_some() || self.spc_series_path.is_some()
    }

    /// SPC sampling interval in virtual nanoseconds
    /// (`FAIRMPI_SPC_INTERVAL_US`, default 50 µs).
    fn series_interval_ns(&self) -> u64 {
        crate::env_usize("FAIRMPI_SPC_INTERVAL_US", 50) as u64 * 1_000
    }

    /// Run one simulation under observation: arm the recorder on virtual
    /// time, execute, then write the requested artifacts and print the
    /// top-10 lock-contention table. Returns the simulation result.
    pub fn run(&self, label: &str, sim: &MultirateSim) -> fairmpi_vsim::MultirateResult {
        trace::start_virtual();
        let interval = self
            .spc_series_path
            .is_some()
            .then(|| self.series_interval_ns());
        let (result, series) = sim.run_observed(interval);
        let t = trace::stop();

        println!("\n== observed run: {label} ==");
        println!(
            "{:.0} msg/s, {} messages, makespan {:.3} ms (virtual)",
            result.msg_rate_per_s,
            result.total_messages,
            result.makespan_ns as f64 / 1e6
        );

        if let Some(path) = &self.trace_path {
            if !cfg!(feature = "trace") {
                println!(
                    "note: fairmpi-bench built without the `trace` feature; \
                     the trace will be empty"
                );
            }
            std::fs::write(path, t.to_chrome_json()).expect("write trace json");
            println!(
                "wrote {} (open in Perfetto / chrome://tracing)",
                path.display()
            );
        }
        if let (Some(path), Some(series)) = (&self.spc_series_path, &series) {
            std::fs::write(path, series.to_csv()).expect("write spc series csv");
            println!(
                "wrote {} ({} samples @ {} ns)",
                path.display(),
                series.len(),
                self.series_interval_ns()
            );
        }

        print!("{}", t.contention_report().render(10));
        result
    }
}
