//! The degradation sweep (DESIGN.md §9; *not* a paper figure): message
//! rate under an increasingly lossy wire for a big-lock implementation,
//! the paper's CRI designs, and software offload. The reliability layer's
//! acceptance criterion is graceful degradation — retransmission and
//! backoff cost virtual time, but every message still arrives exactly
//! once and the rate never collapses to zero.

use fairmpi_bench::observe::Observe;
use fairmpi_bench::report::rate_report;
use fairmpi_bench::{check, figures, print_series, write_csv};
use fairmpi_spc::Counter;

fn main() {
    let (observe, _args) = Observe::from_env();
    if observe.maybe_run(
        "fig_degradation flagship (CRIs* @ 10% drop)",
        figures::fig_degradation_flagship,
    ) {
        return;
    }

    let series = figures::fig_degradation();
    print_series(
        "Degradation: 0-byte msg rate (msg/s) vs wire drop probability (per-mille)",
        &series,
    );
    let path = write_csv("fig_degradation", &series).expect("write csv");
    println!("wrote {}", path.display());
    let path = rate_report("fig_degradation", &[(String::new(), series.clone())])
        .write()
        .expect("write bench report");
    println!("wrote {}", path.display());

    let worst = *figures::DEGRADATION_DROPS_PM.last().unwrap() as f64;
    for s in &series {
        let clean = s.at(0.0).expect("zero-drop point");
        let lossy = s.at(worst).expect("worst-drop point");
        check(
            &format!("degradation: {} completes at every drop rate", s.label),
            s.points.iter().all(|p| p.mean > 0.0),
        );
        check(
            &format!(
                "degradation: {} degrades gracefully ({}\u{2030} drop keeps >10% of the clean rate)",
                s.label, worst
            ),
            lossy > clean / 10.0,
        );
    }

    // One observed flagship run: drops happened, retransmission repaired
    // them, and delivery stayed exactly-once.
    let r = figures::fig_degradation_flagship().run();
    check(
        "degradation: every message arrives exactly once under 10% drop",
        r.spc[Counter::MessagesReceived] == r.total_messages,
    );
    check(
        "degradation: drops were repaired by retransmits with real backoff",
        r.spc[Counter::ChaosDrops] > 0
            && r.spc[Counter::Retransmits] > 0
            && r.spc[Counter::RetryBackoffNanos] > 0,
    );
    check(
        "degradation: injected duplicates were suppressed at the receiver",
        r.spc[Counter::ChaosDups] > 0 && r.spc[Counter::DuplicatesSuppressed] > 0,
    );

    // Zero-fault identity: with chaos off, no reliability machinery runs.
    let mut clean = figures::fig_degradation_flagship();
    clean.design = clean.design.chaos(0, 0, 0);
    let c = clean.run();
    check(
        "degradation: a chaos-free run books zero chaos work",
        c.spc[Counter::ChaosDrops] == 0
            && c.spc[Counter::Retransmits] == 0
            && c.spc[Counter::DuplicatesSuppressed] == 0,
    );
}
