//! Regenerate paper Fig. 3: zero-byte message rate under serial progress
//! (a), concurrent progress (b), and concurrent progress + concurrent
//! matching (c), with ordering enforced.
//!
//! Usage: `cargo run --release -p fairmpi-bench --bin fig3 [-- --panel a|b|c]`
//! (no panel: all three). With `--trace <out.json>` or
//! `--spc-series <out.csv>` the sweep is replaced by one observed flagship
//! run per panel (see `fairmpi_bench::observe`).

use fairmpi_bench::observe::Observe;
use fairmpi_bench::report::rate_report;
use fairmpi_bench::{check, figures, print_series, write_csv};

fn main() {
    let (observe, args) = Observe::from_env();
    let panels: Vec<char> = match args.iter().position(|a| a == "--panel") {
        Some(i) => vec![args[i + 1].chars().next().expect("panel letter")],
        None => vec!['a', 'b', 'c'],
    };

    // One output file, one observed run: default to panel a unless the
    // user picked one.
    if panels.len() > 1 && observe.active() {
        println!(
            "observability mode: tracing panel {} only (pass --panel to choose)",
            panels[0]
        );
    }
    if observe.maybe_run(
        &format!("fig3{} flagship (1 inst / round-robin)", panels[0]),
        || figures::fig3_flagship(panels[0]),
    ) {
        return;
    }

    let mut all = Vec::new();
    for panel in panels {
        let series = figures::fig3(panel);
        let name = format!("fig3{panel}");
        print_series(
            &format!("Fig 3{panel}: 0-byte msg rate (msg/s) vs thread pairs"),
            &series,
        );
        let path = write_csv(&name, &series).expect("write csv");
        println!("wrote {}", path.display());
        all.push((panel, series));
    }

    let groups: Vec<(String, Vec<fairmpi_bench::Series>)> = all
        .iter()
        .map(|(panel, series)| (format!("3{panel}: "), series.clone()))
        .collect();
    let path = rate_report("fig3", &groups)
        .write()
        .expect("write bench report");
    println!("wrote {}", path.display());

    // Qualitative checks from DESIGN.md §5 (only meaningful when all three
    // panels were produced).
    if all.len() == 3 {
        let a = &all[0].1;
        let b = &all[1].1;
        let c = &all[2].1;
        let find = |s: &[fairmpi_bench::Series], label: &str| {
            s.iter()
                .find(|x| x.label == label)
                .unwrap_or_else(|| panic!("missing series {label}"))
                .clone()
        };
        let a_1 = find(a, "1 inst / dedicated");
        let a_20 = find(a, "20 inst / dedicated");
        check(
            "3a: 20 dedicated CRIs beat the single shared instance at 20 pairs (≈2x)",
            a_20.last() > 1.5 * a_1.last(),
        );
        check(
            "3a: single instance degrades as threads contend (peak > last point)",
            a_1.points.iter().map(|p| p.mean).fold(0.0, f64::max) > a_1.last() * 1.1,
        );
        let b_20 = find(b, "20 inst / dedicated");
        check(
            "3b: concurrent progress does not beat serial progress (bottleneck moved to matching)",
            b_20.last() <= a_20.last() * 1.15,
        );
        let c_20 = find(c, "20 inst / dedicated");
        check(
            "3c: concurrent matching scales past both (max over panel a)",
            c_20.points.iter().map(|p| p.mean).fold(0.0, f64::max)
                > a_20.points.iter().map(|p| p.mean).fold(0.0, f64::max),
        );
        let c_rr = find(c, "20 inst / round-robin");
        check(
            "3c: round-robin also improves with threads once matching is concurrent",
            c_rr.last() > c_rr.points[0].mean,
        );
    }
}
