//! Diagnostic: run one Multirate design point and dump every counter plus
//! derived per-message costs. Not a paper figure; a calibration aid.
//!
//! Usage: `diag [pairs] [instances] [serial|concurrent] [single|perpair]
//! [--trace out.json] [--spc-series out.csv]`

use fairmpi_bench::figures::presets;
use fairmpi_bench::observe::Observe;
use fairmpi_bench::report::{BenchReport, Better, Metric};
use fairmpi_spc::Counter;
use fairmpi_vsim::workload::multirate::SimMatchLayout;
use fairmpi_vsim::{Machine, MachinePreset, MultirateSim, SimAssignment, SimProgress};

fn main() {
    let (observe, args) = Observe::from_env();
    let pairs: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(20);
    let instances: usize = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(20);
    let progress = match args.get(3).map(|s| s.as_str()) {
        Some("concurrent") => SimProgress::Concurrent,
        _ => SimProgress::Serial,
    };
    let matching = match args.get(4).map(|s| s.as_str()) {
        Some("perpair") => SimMatchLayout::CommPerPair,
        _ => SimMatchLayout::SingleComm,
    };
    let sim = MultirateSim {
        machine: Machine::preset(MachinePreset::Alembert),
        pairs,
        window: 128,
        iterations: 20,
        design: presets::cell(
            instances,
            SimAssignment::Dedicated,
            progress,
            matching,
            false,
        ),
        seed: 0xD1A6,
        cost: None,
    };
    let r = if observe.active() {
        observe.run(
            &format!("diag {pairs}p/{instances}i {progress:?}/{matching:?}"),
            &sim,
        )
    } else {
        sim.run()
    };
    println!(
        "pairs={pairs} inst={instances} {progress:?} {matching:?}: \
         {:.0} msg/s, makespan {:.3} ms, {} msgs",
        r.msg_rate_per_s,
        r.makespan_ns as f64 / 1e6,
        r.total_messages
    );
    println!(
        "per-message virtual time: {:.0} ns",
        r.makespan_ns as f64 / r.total_messages as f64
    );
    for (c, v) in r.spc.iter() {
        if v != 0 {
            println!(
                "  {:<32} {:>12}  ({:.2}/msg)",
                c.name(),
                v,
                v as f64 / r.total_messages as f64
            );
        }
    }

    let mut report = BenchReport::new("diag");
    report.push_meta("pairs", pairs as u64);
    report.push_meta("instances", instances as u64);
    report.push_meta("progress", format!("{progress:?}"));
    report.push_meta("matching", format!("{matching:?}"));
    let metric = |mean: f64, better: Better| Metric {
        mean,
        stddev: 0.0,
        better,
    };
    report.push_point(
        "diag",
        pairs as f64,
        vec![
            (
                "msg_rate_per_s".to_string(),
                metric(r.msg_rate_per_s, Better::Higher),
            ),
            (
                "out_of_sequence_messages".to_string(),
                metric(r.spc[Counter::OutOfSequenceMessages] as f64, Better::Lower),
            ),
            (
                "match_time_ns".to_string(),
                metric(r.spc[Counter::MatchTimeNanos] as f64, Better::Lower),
            ),
            (
                "instance_try_lock_failures".to_string(),
                metric(
                    r.spc[Counter::InstanceTryLockFailures] as f64,
                    Better::Lower,
                ),
            ),
            (
                "progress_wasted_passes".to_string(),
                metric(r.spc[Counter::ProgressWastedPasses] as f64, Better::Lower),
            ),
        ],
    );
    let path = report.write().expect("write bench report");
    println!("wrote {}", path.display());
}
