//! Diagnostic: run one Multirate design point and dump every counter plus
//! derived per-message costs. Not a paper figure; a calibration aid.
//!
//! Usage: `diag [pairs] [instances] [serial|concurrent] [single|perpair]
//! [--trace out.json] [--spc-series out.csv]`

use fairmpi_bench::observe::Observe;
use fairmpi_vsim::workload::multirate::SimMatchLayout;
use fairmpi_vsim::{Machine, MachinePreset, MultirateSim, SimAssignment, SimDesign, SimProgress};

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let observe = Observe::from_args(&mut args);
    let pairs: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(20);
    let instances: usize = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(20);
    let progress = match args.get(3).map(|s| s.as_str()) {
        Some("concurrent") => SimProgress::Concurrent,
        _ => SimProgress::Serial,
    };
    let matching = match args.get(4).map(|s| s.as_str()) {
        Some("perpair") => SimMatchLayout::CommPerPair,
        _ => SimMatchLayout::SingleComm,
    };
    let sim = MultirateSim {
        machine: Machine::preset(MachinePreset::Alembert),
        pairs,
        window: 128,
        iterations: 20,
        design: SimDesign {
            instances,
            assignment: SimAssignment::Dedicated,
            progress,
            matching,
            allow_overtaking: false,
            any_tag: false,
            big_lock: false,
            process_mode: false,
        },
        seed: 0xD1A6,
        cost: None,
    };
    let r = if observe.active() {
        observe.run(
            &format!("diag {pairs}p/{instances}i {progress:?}/{matching:?}"),
            &sim,
        )
    } else {
        sim.run()
    };
    println!(
        "pairs={pairs} inst={instances} {progress:?} {matching:?}: \
         {:.0} msg/s, makespan {:.3} ms, {} msgs",
        r.msg_rate_per_s,
        r.makespan_ns as f64 / 1e6,
        r.total_messages
    );
    println!(
        "per-message virtual time: {:.0} ns",
        r.makespan_ns as f64 / r.total_messages as f64
    );
    for (c, v) in r.spc.iter() {
        if v != 0 {
            println!(
                "  {:<32} {:>12}  ({:.2}/msg)",
                c.name(),
                v,
                v as f64 / r.total_messages as f64
            );
        }
    }
}
