//! Regenerate paper Fig. 4: zero-byte message rate when message ordering
//! is not enforced (`mpi_assert_allow_overtaking` + `MPI_ANY_TAG`).
//!
//! Usage: `cargo run --release -p fairmpi-bench --bin fig4 [-- --panel a|b|c]`.

use fairmpi_bench::report::rate_report;
use fairmpi_bench::{check, figures, print_series, write_csv};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let panels: Vec<char> = match args.iter().position(|a| a == "--panel") {
        Some(i) => vec![args[i + 1].chars().next().expect("panel letter")],
        None => vec!['a', 'b', 'c'],
    };

    let mut all = Vec::new();
    for panel in panels {
        let series = figures::fig4(panel);
        let name = format!("fig4{panel}");
        print_series(
            &format!("Fig 4{panel}: 0-byte msg rate (msg/s), overtaking allowed"),
            &series,
        );
        let path = write_csv(&name, &series).expect("write csv");
        println!("wrote {}", path.display());
        all.push((panel, series));
    }

    let groups: Vec<(String, Vec<fairmpi_bench::Series>)> = all
        .iter()
        .map(|(panel, series)| (format!("4{panel}: "), series.clone()))
        .collect();
    let path = rate_report("fig4", &groups)
        .write()
        .expect("write bench report");
    println!("wrote {}", path.display());

    if all.len() == 3 {
        let a = &all[0].1;
        let ordered_a = figures::fig3('a');
        let find = |s: &[fairmpi_bench::Series], label: &str| {
            s.iter()
                .find(|x| x.label == label)
                .unwrap_or_else(|| panic!("missing series {label}"))
                .clone()
        };
        // §IV-D: with minimal matching cost the serial-progress rate
        // flattens at a level at or above the ordered case.
        let over = find(a, "20 inst / dedicated");
        let ord = find(&ordered_a, "20 inst / dedicated");
        check(
            "4a: overtaking at 20 pairs is at least the ordered rate",
            over.last() >= 0.9 * ord.last(),
        );
        let c = &all[2].1;
        let ordered_c = figures::fig3('c');
        let over_c = find(c, "20 inst / dedicated");
        let ord_c = find(&ordered_c, "20 inst / dedicated");
        check(
            "4c: removing ordering barely changes concurrent matching (already optimal)",
            (over_c.last() - ord_c.last()).abs() < 0.35 * ord_c.last(),
        );
    }
}
