//! Regenerate paper Fig. 5: the state of MPI threading — process vs
//! thread mode across implementations (vendor entries emulated; see
//! DESIGN.md §1) plus the paper's CRI designs. The paper plots this on a
//! log Y axis.

use fairmpi_bench::observe::Observe;
use fairmpi_bench::report::rate_report;
use fairmpi_bench::{check, figures, print_series, write_csv};

fn main() {
    let (observe, _args) = Observe::from_env();
    if observe.maybe_run(
        "fig5 flagship (OMPI Thread baseline)",
        figures::fig5_flagship,
    ) {
        return;
    }

    let series = figures::fig5();
    print_series(
        "Fig 5: 0-byte msg rate (msg/s) vs communication pairs",
        &series,
    );
    let path = write_csv("fig5", &series).expect("write csv");
    println!("wrote {}", path.display());
    let path = rate_report("fig5", &[(String::new(), series.clone())])
        .write()
        .expect("write bench report");
    println!("wrote {}", path.display());

    let find = |label: &str| {
        series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
            .clone()
    };
    let process = find("OMPI Process");
    let thread = find("OMPI Thread");
    let cris = find("OMPI Thread + CRIs");
    let star = find("OMPI Thread + CRIs*");
    let impi = find("IMPI Thread");
    let mpich = find("MPICH Thread");

    check(
        "5: process mode is roughly an order of magnitude above the threaded baseline",
        process.last() > 5.0 * thread.last(),
    );
    check(
        "5: CRIs give ~2x over the threaded baseline",
        cris.last() > 1.5 * thread.last(),
    );
    check(
        "5: CRIs* (concurrent progress+matching) is the best threaded design",
        star.last() > cris.last() && star.last() > thread.last(),
    );
    check(
        "5: CRIs* still does not reach process mode",
        star.last() < process.last(),
    );
    check(
        "5: all big-lock threaded designs cluster together (within 3x)",
        {
            let lo = thread.last().min(impi.last()).min(mpich.last());
            let hi = thread.last().max(impi.last()).max(mpich.last());
            hi < 3.0 * lo
        },
    );
    check(
        "5: threaded baselines do not scale with pairs (flat or declining)",
        thread.last() < 2.0 * thread.points[0].mean,
    );
}
