//! Regenerate paper Fig. 7: RMA-MT message rate (`MPI_Put` +
//! `MPI_Win_flush`) on the KNL partition (68 slower cores, 72 instances),
//! one panel per message size.

use fairmpi_bench::figures;

fn main() {
    let panels = figures::fig7();
    figures::report_rma_figure("fig7", &panels);
}
