//! Regenerate paper Table II: SPC counters (out-of-sequence messages and
//! match time) at 20 thread pairs with dedicated assignment, for serial
//! progress, concurrent progress, and concurrent progress + matching, at
//! 1/10/20 instances.
//!
//! `FAIRMPI_ITERS=1010` reproduces the paper's exact 2,585,600-message
//! total (the default here; pass a smaller value for a quick run).

use fairmpi_bench::observe::Observe;
use fairmpi_bench::report::table2_report;
use fairmpi_bench::{check, env_usize, figures};

/// Paper Table II reference values, for side-by-side printing.
const PAPER: [(&str, usize, u64, f64, f64); 9] = [
    ("Serial Progress", 1, 2_154_493, 83.32, 2_732.0),
    ("Serial Progress", 10, 2_323_003, 89.98, 2_622.0),
    ("Serial Progress", 20, 2_225_190, 86.08, 2_738.0),
    ("Concurrent Progress", 1, 2_375_922, 91.89, 8_553.0),
    ("Concurrent Progress", 10, 2_425_818, 93.82, 7_944.0),
    ("Concurrent Progress", 20, 2_420_660, 93.62, 8_069.0),
    ("Concurrent Progress + Matching", 1, 15_188, 0.59, 476.0),
    ("Concurrent Progress + Matching", 10, 45, 0.0, 430.0),
    ("Concurrent Progress + Matching", 20, 0, 0.0, 389.0),
];

fn main() {
    let (observe, _args) = Observe::from_env();
    let iterations = env_usize("FAIRMPI_ITERS", 1010);
    if observe.maybe_run("table2 flagship (1 inst / serial progress)", || {
        figures::table2_flagship(iterations)
    }) {
        return;
    }
    println!(
        "Table II reproduction: 20 thread pairs, dedicated assignment, \
         window 128, {iterations} iterations \
         ({} total messages; paper used 2,585,600)",
        20 * 128 * iterations
    );
    let cells = figures::table2(iterations);

    println!(
        "\n{:<34} {:>5} | {:>12} {:>8} {:>12} | {:>12} {:>8} {:>12}",
        "group", "inst", "OOS (ours)", "% (ours)", "match ms", "OOS (paper)", "%", "match ms"
    );
    let mut csv =
        String::from("group,instances,oos,oos_pct,match_ms,paper_oos,paper_pct,paper_match_ms\n");
    for (cell, paper) in cells.iter().zip(PAPER.iter()) {
        assert_eq!(cell.group, paper.0);
        assert_eq!(cell.instances, paper.1);
        println!(
            "{:<34} {:>5} | {:>12} {:>7.2}% {:>12.0} | {:>12} {:>7.2}% {:>12.0}",
            cell.group,
            cell.instances,
            cell.oos,
            cell.oos_fraction * 100.0,
            cell.match_time_ms,
            paper.2,
            paper.3,
            paper.4
        );
        csv.push_str(&format!(
            "{},{},{},{:.2},{:.0},{},{:.2},{:.0}\n",
            cell.group,
            cell.instances,
            cell.oos,
            cell.oos_fraction * 100.0,
            cell.match_time_ms,
            paper.2,
            paper.3,
            paper.4
        ));
    }
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/table2.csv", csv).expect("write csv");
    println!("wrote results/table2.csv");

    let path = table2_report(iterations, &cells)
        .write()
        .expect("write bench report");
    println!("wrote {}", path.display());

    // Shape checks.
    let serial = &cells[0..3];
    let conc = &cells[3..6];
    let matched = &cells[6..9];
    check(
        "serial & concurrent progress: most messages arrive out of sequence (>50%)",
        serial.iter().chain(conc).all(|c| c.oos_fraction > 0.5),
    );
    check(
        "concurrent progress inflates match time well above serial (paper: ~3x)",
        conc.iter().map(|c| c.match_time_ms).sum::<f64>()
            > 1.5 * serial.iter().map(|c| c.match_time_ms).sum::<f64>(),
    );
    check(
        "concurrent matching collapses out-of-sequence counts (<1%)",
        matched.iter().all(|c| c.oos_fraction < 0.01),
    );
    check(
        "concurrent matching collapses match time (≥5x below serial)",
        matched.iter().map(|c| c.match_time_ms).sum::<f64>()
            < serial.iter().map(|c| c.match_time_ms).sum::<f64>() / 5.0,
    );
    check(
        "concurrent matching keeps OOS at least 100x below the shared-comm designs at every instance count",
        matched
            .iter()
            .zip(serial.iter())
            .all(|(m, s)| m.oos * 100 <= s.oos),
    );
}
