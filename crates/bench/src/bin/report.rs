//! `fairmpi-report`: diff two `results/BENCH_*.json` files and flag
//! regressions, or validate a `--pvars` dump.
//!
//! Usage:
//!
//! ```text
//! fairmpi-report <baseline.json> <candidate.json> [--noise 0.05]
//! fairmpi-report --check-pvars <pvars.json>
//! ```
//!
//! A metric regresses when it moves in its own bad direction (each metric
//! in the file declares `"better": "higher"|"lower"`) by more than the
//! noise threshold and more than twice the recorded stddev. Exit status is
//! non-zero on regressions, so CI can gate on it directly.

use std::path::Path;
use std::process::ExitCode;

use fairmpi_bench::report::{compare, validate_pvars, BenchReport, DEFAULT_NOISE};

fn usage() -> ExitCode {
    eprintln!(
        "usage: fairmpi-report <baseline.json> <candidate.json> [--noise FRAC]\n\
         \x20      fairmpi-report --check-pvars <pvars.json>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(i) = args.iter().position(|a| a == "--check-pvars") {
        if i + 1 >= args.len() {
            return usage();
        }
        let path = &args[i + 1];
        return match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| validate_pvars(&text))
        {
            Ok(n) => {
                println!("{path}: OK ({n} pvars, at least one non-zero)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let noise = match args.iter().position(|a| a == "--noise") {
        Some(i) => {
            if i + 1 >= args.len() {
                return usage();
            }
            let v: f64 = match args[i + 1].parse() {
                Ok(v) if v >= 0.0 => v,
                _ => return usage(),
            };
            args.remove(i + 1);
            args.remove(i);
            v
        }
        None => DEFAULT_NOISE,
    };
    let [baseline_path, candidate_path] = args.as_slice() else {
        return usage();
    };

    let load = |p: &str| match BenchReport::load(Path::new(p)) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!("error: {e}");
            None
        }
    };
    let (Some(baseline), Some(candidate)) = (load(baseline_path), load(candidate_path)) else {
        return ExitCode::FAILURE;
    };
    if baseline.bench != candidate.bench {
        eprintln!(
            "warning: comparing different benchmarks ({} vs {})",
            baseline.bench, candidate.bench
        );
    }

    let c = compare(&baseline, &candidate, noise);
    println!(
        "compared {} metrics ({} baseline points) at noise threshold {:.1}%",
        c.compared,
        baseline.points.len(),
        noise * 100.0
    );
    for d in &c.improvements {
        println!(
            "  improved  {:<56} {:>12.1} -> {:>12.1} ({:+.1}%)",
            d.what,
            d.base,
            d.cand,
            -d.worse_frac * 100.0
        );
    }
    for m in &c.missing {
        println!("  missing   {m}");
    }
    for d in &c.regressions {
        println!(
            "  REGRESSED {:<56} {:>12.1} -> {:>12.1} ({:+.1}% worse)",
            d.what,
            d.base,
            d.cand,
            d.worse_frac * 100.0
        );
    }
    if c.regressions.is_empty() && c.missing.is_empty() {
        println!("zero regressions");
        ExitCode::SUCCESS
    } else {
        println!(
            "{} regression(s), {} missing point(s)",
            c.regressions.len(),
            c.missing.len()
        );
        ExitCode::FAILURE
    }
}
