//! Regenerate every figure and table of the paper in one run, writing CSVs
//! under `results/`. Equivalent to running the fig3/fig4/fig5/fig6/fig7/
//! table2 binaries in sequence (table2 runs at the FAIRMPI_ITERS default of
//! this harness, not the paper-exact 1010, unless overridden).

use fairmpi_bench::{env_usize, figures, print_series, write_csv};

fn main() {
    for panel in ['a', 'b', 'c'] {
        let s = figures::fig3(panel);
        print_series(&format!("Fig 3{panel}"), &s);
        write_csv(&format!("fig3{panel}"), &s).expect("csv");
    }
    for panel in ['a', 'b', 'c'] {
        let s = figures::fig4(panel);
        print_series(&format!("Fig 4{panel}"), &s);
        write_csv(&format!("fig4{panel}"), &s).expect("csv");
    }
    let s = figures::fig5();
    print_series("Fig 5", &s);
    write_csv("fig5", &s).expect("csv");

    figures::report_rma_figure("fig6", &figures::fig6());
    figures::report_rma_figure("fig7", &figures::fig7());

    let iterations = env_usize("FAIRMPI_ITERS", 200);
    let cells = figures::table2(iterations);
    println!("\n== Table II ({} iterations) ==", iterations);
    for c in &cells {
        println!(
            "{:<34} {:>3} inst: OOS {:>9} ({:>6.2}%), match {:>8.0} ms",
            c.group,
            c.instances,
            c.oos,
            c.oos_fraction * 100.0,
            c.match_time_ms
        );
    }
    println!("\nall figures regenerated into results/");
}
