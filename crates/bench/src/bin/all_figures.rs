//! Regenerate every figure and table of the paper in one run, writing CSVs
//! under `results/`. Equivalent to running the fig3/fig4/fig5/fig6/fig7/
//! table2 binaries in sequence (table2 runs at the FAIRMPI_ITERS default of
//! this harness, not the paper-exact 1010, unless overridden).

use fairmpi_bench::report::{rate_report, table2_report};
use fairmpi_bench::{env_usize, figures, print_series, write_csv};

fn main() {
    for (fig, gen) in [
        (
            "fig3",
            figures::fig3 as fn(char) -> Vec<fairmpi_bench::Series>,
        ),
        ("fig4", figures::fig4),
    ] {
        let mut groups = Vec::new();
        for panel in ['a', 'b', 'c'] {
            let s = gen(panel);
            print_series(&format!("Fig {}{panel}", &fig[3..]), &s);
            write_csv(&format!("{fig}{panel}"), &s).expect("csv");
            groups.push((format!("{}{panel}: ", &fig[3..]), s));
        }
        rate_report(fig, &groups).write().expect("bench report");
    }
    let s = figures::fig5();
    print_series("Fig 5", &s);
    write_csv("fig5", &s).expect("csv");
    rate_report("fig5", &[(String::new(), s.clone())])
        .write()
        .expect("bench report");

    let s = figures::fig_degradation();
    print_series("Degradation (lossy wire)", &s);
    write_csv("fig_degradation", &s).expect("csv");
    rate_report("fig_degradation", &[(String::new(), s.clone())])
        .write()
        .expect("bench report");

    figures::report_rma_figure("fig6", &figures::fig6());
    figures::report_rma_figure("fig7", &figures::fig7());

    let iterations = env_usize("FAIRMPI_ITERS", 200);
    let cells = figures::table2(iterations);
    table2_report(iterations, &cells)
        .write()
        .expect("bench report");
    println!("\n== Table II ({} iterations) ==", iterations);
    for c in &cells {
        println!(
            "{:<34} {:>3} inst: OOS {:>9} ({:>6.2}%), match {:>8.0} ms",
            c.group,
            c.instances,
            c.oos,
            c.oos_fraction * 100.0,
            c.match_time_ms
        );
    }
    println!("\nall figures regenerated into results/");
}
