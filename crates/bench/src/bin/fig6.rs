//! Regenerate paper Fig. 6: RMA-MT message rate (`MPI_Put` +
//! `MPI_Win_flush`) on the Haswell partition, one panel per message size.

use fairmpi_bench::figures;

fn main() {
    let panels = figures::fig6();
    figures::report_rma_figure("fig6", &panels);
}
