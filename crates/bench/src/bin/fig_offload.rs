//! The software-offload comparison (DESIGN.md §8) — the design point the
//! paper leaves on the table: dedicated communication threads fed by
//! lock-free command queues, swept against a big-lock implementation, the
//! paper's CRI designs, and process mode. Not a paper figure; the axes
//! match Fig. 5 so the curves are directly comparable.

use std::sync::Arc;

use fairmpi_bench::observe::Observe;
use fairmpi_bench::report::rate_report;
use fairmpi_bench::{check, figures, print_series, write_csv};
use fairmpi_mpit::{PvarRegistry, PvarSession, PvarValue};
use fairmpi_spc::{Counter, SpcSet, Watermark};
use fairmpi_vsim::RunHooks;

fn main() {
    let (observe, _args) = Observe::from_env();
    if observe.maybe_run(
        "fig_offload flagship (Offload x2)",
        figures::fig_offload_flagship,
    ) {
        return;
    }

    let series = figures::fig_offload();
    print_series(
        "Offload: 0-byte msg rate (msg/s) vs communication pairs",
        &series,
    );
    let path = write_csv("fig_offload", &series).expect("write csv");
    println!("wrote {}", path.display());
    let path = rate_report("fig_offload", &[(String::new(), series.clone())])
        .write()
        .expect("write bench report");
    println!("wrote {}", path.display());

    let find = |label: &str| {
        series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
            .clone()
    };
    let process = find("Process");
    let big = find("Big-lock Thread");
    let cris = find("Thread + CRIs");
    let star = find("Thread + CRIs*");
    let off1 = find("Offload x1");
    let off2 = find("Offload x2");
    let off4 = find("Offload x4");

    check(
        "offload: every worker count clears the big-lock baseline at full load",
        off1.last() > big.last() && off2.last() > big.last() && off4.last() > big.last(),
    );
    // "High thread counts": the ISSUE pegs the comparison at >= 16 pairs.
    // When FAIRMPI_MAX_PAIRS is trimmed below that (CI smoke runs), the
    // last point is the closest stand-in.
    let high_x = series[0]
        .points
        .last()
        .map(|p| p.x)
        .unwrap_or(1.0)
        .min(16.0);
    let at_high = |s: &fairmpi_bench::Series| s.at(high_x).expect("swept point");
    check(
        "offload: best worker count matches or beats CRIs* at high pair counts",
        at_high(&off2).max(at_high(&off4)) >= at_high(&star),
    );
    check(
        "offload: CRIs remain below the offloaded designs at full load",
        off2.last().max(off4.last()) > cris.last(),
    );
    // Process mode scales with the pair count while offload capacity
    // scales with the worker count, so four workers legitimately beat
    // three pairs' worth of processes — the comparison only means
    // something once the grid has more pairs than the widest offload
    // configuration. Degenerate CI grids skip it.
    let full_x = series[0].points.last().map(|p| p.x).unwrap_or(1.0);
    if full_x > 4.0 {
        check(
            "offload: still does not reach process mode",
            off1.last() < process.last()
                && off2.last() < process.last()
                && off4.last() < process.last(),
        );
    } else {
        println!(
            "[check] offload: still does not reach process mode ... SKIP \
             (grid stops at {full_x} pairs, fewer than the 4 offload workers)"
        );
    }

    pvar_consistency();
}

/// Run the flagship once with an MPI_T registry attached and assert that
/// the four `offload_*` SPCs are enumerable and that their pvar reads
/// equal the run's `SpcSnapshot` / live watermark cell.
fn pvar_consistency() {
    let spc = Arc::new(SpcSet::new());
    let registry = PvarRegistry::new(Arc::clone(&spc));
    let mut session = PvarSession::new(&registry);
    let counters = [
        ("offload_commands", Counter::OffloadCommands),
        ("offload_batches", Counter::OffloadBatches),
        (
            "offload_backpressure_stalls",
            Counter::OffloadBackpressureStalls,
        ),
    ];
    let handles: Vec<_> = counters
        .iter()
        .map(|(name, c)| {
            let idx = registry
                .index_of(name)
                .unwrap_or_else(|| panic!("{name} not enumerable via PvarRegistry"));
            let h = session.handle_alloc(idx).expect("valid index");
            session.start(h).expect("counter pvars support start");
            (h, *c)
        })
        .collect();

    let sim = figures::fig_offload_flagship();
    let (result, _) = sim.run_hooked(RunHooks {
        spc: Some(Arc::clone(&spc)),
        ..RunHooks::default()
    });

    let mut ok = result.spc[Counter::OffloadCommands] > 0;
    for (h, c) in handles {
        session.stop(h).expect("counter pvars support stop");
        let read = session
            .read(h)
            .expect("valid handle")
            .as_scalar()
            .expect("scalar class");
        ok &= read == result.spc[c];
    }
    let hwm_idx = registry
        .index_of("offload_queue_depth_hwm")
        .expect("offload_queue_depth_hwm not enumerable via PvarRegistry");
    let hwm = match registry.read_raw(hwm_idx).expect("valid index") {
        PvarValue::Scalar(v) => v,
        PvarValue::Histogram { .. } => unreachable!("watermark pvars are scalar"),
    };
    ok &= hwm == spc.watermark(Watermark::OffloadQueueDepth).high() && hwm > 0;
    check(
        "offload: the four offload_* pvars read back the run's SPC values",
        ok,
    );
}
