//! Versioned machine-readable benchmark results (`results/BENCH_*.json`)
//! and the regression comparator behind the `fairmpi-report` binary.
//!
//! Every bench binary emits one `BenchReport` next to its CSVs. The format
//! is self-describing: each metric carries its own `better` direction, so
//! the comparator needs no per-benchmark knowledge — message rates
//! (`higher`) and out-of-sequence counts (`lower`) are diffed by the same
//! code. `fairmpi-report old.json new.json` flags any metric that moved in
//! its bad direction beyond a noise threshold.

use std::path::{Path, PathBuf};

use fairmpi_mpit::json::{parse, Value};

use crate::Series;

/// Schema identifier written into every result file.
pub const BENCH_SCHEMA: &str = "fairmpi.bench";
/// Current schema version; bump when the layout changes incompatibly.
pub const BENCH_VERSION: u64 = 1;
/// Default relative noise threshold for regression flagging.
pub const DEFAULT_NOISE: f64 = 0.05;

/// Which direction of change is an improvement for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Better {
    /// Bigger is better (message rates).
    Higher,
    /// Smaller is better (out-of-sequence counts, match time).
    Lower,
}

impl Better {
    fn name(self) -> &'static str {
        match self {
            Better::Higher => "higher",
            Better::Lower => "lower",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        match s {
            "higher" => Some(Better::Higher),
            "lower" => Some(Better::Lower),
            _ => None,
        }
    }
}

/// One measured metric of one point.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Mean over repetitions.
    pub mean: f64,
    /// Standard deviation over repetitions (0 for single-shot metrics).
    pub stddev: f64,
    /// Improvement direction.
    pub better: Better,
}

/// One design point: a series label, an x coordinate, and its metrics.
#[derive(Debug, Clone)]
pub struct BenchPoint {
    /// Series label (design point / figure line).
    pub series: String,
    /// X coordinate (thread pairs, instances, ...).
    pub x: f64,
    /// Named metrics in insertion order.
    pub metrics: Vec<(String, Metric)>,
}

/// A full benchmark result file.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Benchmark name (`fig3`, `table2`, ...); names the output file.
    pub bench: String,
    /// Free-form run metadata (iteration counts, seeds, knobs).
    pub meta: Vec<(String, Value)>,
    /// All measured points.
    pub points: Vec<BenchPoint>,
}

impl BenchReport {
    /// An empty report for benchmark `bench`.
    pub fn new(bench: &str) -> Self {
        Self {
            bench: bench.to_string(),
            meta: Vec::new(),
            points: Vec::new(),
        }
    }

    /// Attach one metadata field.
    pub fn push_meta(&mut self, key: &str, value: impl Into<Value>) {
        self.meta.push((key.to_string(), value.into()));
    }

    /// Add every point of a figure's series under metric `metric`.
    ///
    /// `prefix` distinguishes same-named series across panels
    /// (`"3a: 1 inst / dedicated"`).
    pub fn push_series(&mut self, prefix: &str, series: &[Series], metric: &str, better: Better) {
        for s in series {
            for p in &s.points {
                self.points.push(BenchPoint {
                    series: if prefix.is_empty() {
                        s.label.clone()
                    } else {
                        format!("{prefix}{}", s.label)
                    },
                    x: p.x,
                    metrics: vec![(
                        metric.to_string(),
                        Metric {
                            mean: p.mean,
                            stddev: p.stddev,
                            better,
                        },
                    )],
                });
            }
        }
    }

    /// Add one multi-metric point.
    pub fn push_point(&mut self, series: &str, x: f64, metrics: Vec<(String, Metric)>) {
        self.points.push(BenchPoint {
            series: series.to_string(),
            x,
            metrics,
        });
    }

    /// Serialize to the schema-v1 JSON tree.
    pub fn to_value(&self) -> Value {
        let points = self
            .points
            .iter()
            .map(|p| {
                let metrics = p
                    .metrics
                    .iter()
                    .map(|(name, m)| {
                        (
                            name.clone(),
                            Value::Obj(vec![
                                ("mean".to_string(), Value::Num(m.mean)),
                                ("stddev".to_string(), Value::Num(m.stddev)),
                                ("better".to_string(), Value::from(m.better.name())),
                            ]),
                        )
                    })
                    .collect();
                Value::Obj(vec![
                    ("series".to_string(), Value::from(p.series.clone())),
                    ("x".to_string(), Value::Num(p.x)),
                    ("metrics".to_string(), Value::Obj(metrics)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".to_string(), Value::from(BENCH_SCHEMA)),
            ("version".to_string(), Value::from(BENCH_VERSION)),
            ("bench".to_string(), Value::from(self.bench.clone())),
            ("meta".to_string(), Value::Obj(self.meta.clone())),
            ("points".to_string(), Value::Arr(points)),
        ])
    }

    /// Write `results/BENCH_<bench>.json`; returns the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.bench));
        std::fs::write(&path, self.to_value().render())?;
        Ok(path)
    }

    /// Parse a report back from its JSON tree.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        if v.get("schema").and_then(|s| s.as_str()) != Some(BENCH_SCHEMA) {
            return Err(format!("not a {BENCH_SCHEMA} file"));
        }
        let version = v
            .get("version")
            .and_then(|n| n.as_u64())
            .ok_or("missing version")?;
        if version != BENCH_VERSION {
            return Err(format!(
                "schema version {version} unsupported (expected {BENCH_VERSION})"
            ));
        }
        let bench = v
            .get("bench")
            .and_then(|s| s.as_str())
            .ok_or("missing bench name")?
            .to_string();
        let meta = v
            .get("meta")
            .and_then(|m| m.as_obj())
            .map(|m| m.to_vec())
            .unwrap_or_default();
        let mut points = Vec::new();
        for (i, p) in v
            .get("points")
            .and_then(|p| p.as_arr())
            .ok_or("missing points array")?
            .iter()
            .enumerate()
        {
            let series = p
                .get("series")
                .and_then(|s| s.as_str())
                .ok_or_else(|| format!("point {i}: missing series"))?
                .to_string();
            let x = p
                .get("x")
                .and_then(|x| x.as_f64())
                .ok_or_else(|| format!("point {i}: missing x"))?;
            let mut metrics = Vec::new();
            for (name, m) in p
                .get("metrics")
                .and_then(|m| m.as_obj())
                .ok_or_else(|| format!("point {i}: missing metrics"))?
            {
                let mean = m
                    .get("mean")
                    .and_then(|n| n.as_f64())
                    .ok_or_else(|| format!("point {i}/{name}: missing mean"))?;
                let stddev = m.get("stddev").and_then(|n| n.as_f64()).unwrap_or(0.0);
                let better = m
                    .get("better")
                    .and_then(|b| b.as_str())
                    .and_then(Better::from_name)
                    .ok_or_else(|| format!("point {i}/{name}: missing better direction"))?;
                metrics.push((
                    name.clone(),
                    Metric {
                        mean,
                        stddev,
                        better,
                    },
                ));
            }
            points.push(BenchPoint { series, x, metrics });
        }
        Ok(Self {
            bench,
            meta,
            points,
        })
    }

    /// Load a report file from disk.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let value = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_value(&value).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Build the standard rate report for a sweep figure: `groups` pairs a
/// point-label prefix (panel, message size) with that group's series; the
/// single metric is `msg_rate_per_s`, higher-is-better.
pub fn rate_report(bench: &str, groups: &[(String, Vec<Series>)]) -> BenchReport {
    let mut report = BenchReport::new(bench);
    report.push_meta("reps", crate::env_usize("FAIRMPI_REPS", 3) as u64);
    report.push_meta("iterations", crate::env_usize("FAIRMPI_ITERS", 40) as u64);
    for (prefix, series) in groups {
        report.push_series(prefix, series, "msg_rate_per_s", Better::Higher);
    }
    report
}

/// Build the Table II report: one point per (group, instance count) with
/// the paper's two SPC metrics plus the derived fraction, all
/// lower-is-better.
pub fn table2_report(iterations: usize, cells: &[crate::figures::Table2Cell]) -> BenchReport {
    let mut report = BenchReport::new("table2");
    report.push_meta("iterations", iterations as u64);
    report.push_meta("pairs", 20u64);
    report.push_meta("window", 128u64);
    for cell in cells {
        let lower = |mean: f64| Metric {
            mean,
            stddev: 0.0,
            better: Better::Lower,
        };
        report.push_point(
            cell.group,
            cell.instances as f64,
            vec![
                (
                    "out_of_sequence_messages".to_string(),
                    lower(cell.oos as f64),
                ),
                ("oos_fraction".to_string(), lower(cell.oos_fraction)),
                ("match_time_ms".to_string(), lower(cell.match_time_ms)),
            ],
        );
    }
    report
}

/// One metric that moved between two reports.
#[derive(Debug, Clone)]
pub struct Delta {
    /// `series @ x / metric` identifier.
    pub what: String,
    /// Baseline mean.
    pub base: f64,
    /// Candidate mean.
    pub cand: f64,
    /// Relative change in the metric's *bad* direction (positive = worse).
    pub worse_frac: f64,
}

/// The outcome of comparing a candidate report against a baseline.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Metrics present in both reports.
    pub compared: usize,
    /// Metrics that got worse beyond the noise threshold.
    pub regressions: Vec<Delta>,
    /// Metrics that improved beyond the noise threshold.
    pub improvements: Vec<Delta>,
    /// Points present in the baseline but absent from the candidate.
    pub missing: Vec<String>,
}

/// Diff `candidate` against `baseline`: a metric regresses when it moves in
/// its bad direction by more than `noise` (relative) *and* more than twice
/// the larger stddev (so noisy sweep points don't flap). Points are matched
/// by `(series, x)` and metrics by name.
pub fn compare(baseline: &BenchReport, candidate: &BenchReport, noise: f64) -> Comparison {
    let mut out = Comparison::default();
    for bp in &baseline.points {
        let Some(cp) = candidate
            .points
            .iter()
            .find(|p| p.series == bp.series && (p.x - bp.x).abs() < 1e-9)
        else {
            out.missing.push(format!("{} @ x={}", bp.series, bp.x));
            continue;
        };
        for (name, bm) in &bp.metrics {
            let Some((_, cm)) = cp.metrics.iter().find(|(n, _)| n == name) else {
                out.missing
                    .push(format!("{} @ x={} / {name}", bp.series, bp.x));
                continue;
            };
            out.compared += 1;
            // Positive `worse` = moved in the bad direction.
            let worse = match bm.better {
                Better::Higher => bm.mean - cm.mean,
                Better::Lower => cm.mean - bm.mean,
            };
            let scale = bm.mean.abs().max(1e-9);
            let noise_floor = noise * scale + 2.0 * bm.stddev.max(cm.stddev);
            let delta = Delta {
                what: format!("{} @ x={} / {name}", bp.series, bp.x),
                base: bm.mean,
                cand: cm.mean,
                worse_frac: worse / scale,
            };
            if worse > noise_floor {
                out.regressions.push(delta);
            } else if -worse > noise_floor {
                out.improvements.push(delta);
            }
        }
    }
    out.regressions
        .sort_by(|a, b| b.worse_frac.total_cmp(&a.worse_frac));
    out
}

/// Validate a `--pvars` dump (the CI smoke check): parses, carries the
/// `fairmpi.pvars` schema, and has a non-empty, well-formed `pvars` array.
/// Returns the number of pvars on success.
pub fn validate_pvars(text: &str) -> Result<usize, String> {
    let v = parse(text)?;
    if v.get("schema").and_then(|s| s.as_str()) != Some("fairmpi.pvars") {
        return Err("missing fairmpi.pvars schema marker".to_string());
    }
    v.get("version")
        .and_then(|n| n.as_u64())
        .ok_or("missing version")?;
    let pvars = v
        .get("pvars")
        .and_then(|p| p.as_arr())
        .ok_or("missing pvars array")?;
    if pvars.is_empty() {
        return Err("pvars array is empty".to_string());
    }
    let mut nonzero = 0usize;
    for (i, p) in pvars.iter().enumerate() {
        p.get("name")
            .and_then(|n| n.as_str())
            .ok_or_else(|| format!("pvar {i}: missing name"))?;
        p.get("class")
            .and_then(|c| c.as_str())
            .ok_or_else(|| format!("pvar {i}: missing class"))?;
        let scalar = p.get("value").and_then(|v| v.as_u64());
        let buckets = p.get("buckets").and_then(|b| b.as_arr());
        match (scalar, buckets) {
            (Some(v), None) => nonzero += (v != 0) as usize,
            (None, Some(b)) => nonzero += b.iter().any(|v| v.as_u64() != Some(0)) as usize,
            _ => return Err(format!("pvar {i}: needs a value or buckets")),
        }
    }
    if nonzero == 0 {
        return Err("every pvar is zero — the run recorded nothing".to_string());
    }
    Ok(pvars.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn sample_report() -> BenchReport {
        let mut r = BenchReport::new("unit");
        r.push_meta("iterations", 40u64);
        r.push_series(
            "p: ",
            &[Series {
                label: "base".to_string(),
                points: vec![
                    Point {
                        x: 1.0,
                        mean: 1000.0,
                        stddev: 10.0,
                    },
                    Point {
                        x: 2.0,
                        mean: 1800.0,
                        stddev: 20.0,
                    },
                ],
            }],
            "msg_rate_per_s",
            Better::Higher,
        );
        r.push_point(
            "counters",
            20.0,
            vec![(
                "oos".to_string(),
                Metric {
                    mean: 500.0,
                    stddev: 0.0,
                    better: Better::Lower,
                },
            )],
        );
        r
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample_report();
        let text = r.to_value().render();
        let back = BenchReport::from_value(&parse(&text).unwrap()).unwrap();
        assert_eq!(back.bench, "unit");
        assert_eq!(back.points.len(), r.points.len());
        assert_eq!(back.points[0].series, "p: base");
        assert_eq!(back.points[2].metrics[0].1.better, Better::Lower);
    }

    #[test]
    fn self_comparison_reports_zero_regressions() {
        let r = sample_report();
        let c = compare(&r, &r, DEFAULT_NOISE);
        assert_eq!(c.compared, 3);
        assert!(c.regressions.is_empty());
        assert!(c.improvements.is_empty());
        assert!(c.missing.is_empty());
    }

    #[test]
    fn direction_aware_regression_detection() {
        let base = sample_report();
        let mut cand = sample_report();
        // Rate down 50% → regression for a higher-is-better metric.
        cand.points[0].metrics[0].1.mean = 500.0;
        // OOS down 50% → *improvement* for a lower-is-better metric.
        cand.points[2].metrics[0].1.mean = 250.0;
        let c = compare(&base, &cand, DEFAULT_NOISE);
        assert_eq!(c.regressions.len(), 1);
        assert!(c.regressions[0].what.contains("msg_rate_per_s"));
        assert_eq!(c.improvements.len(), 1);
        assert!(c.improvements[0].what.contains("oos"));
    }

    #[test]
    fn noise_threshold_suppresses_small_moves() {
        let base = sample_report();
        let mut cand = sample_report();
        cand.points[0].metrics[0].1.mean = 990.0; // -1% on 5% noise: fine
        let c = compare(&base, &cand, DEFAULT_NOISE);
        assert!(c.regressions.is_empty());
    }

    #[test]
    fn missing_points_are_reported_not_ignored() {
        let base = sample_report();
        let mut cand = sample_report();
        cand.points.remove(2);
        let c = compare(&base, &cand, DEFAULT_NOISE);
        assert_eq!(c.missing.len(), 1);
        assert!(c.missing[0].contains("counters"));
    }

    #[test]
    fn pvars_validation_accepts_good_and_rejects_bad() {
        let good = r#"{"schema": "fairmpi.pvars", "version": 1,
            "pvars": [{"name": "messages_sent", "class": "counter", "value": 5}]}"#;
        assert_eq!(validate_pvars(good), Ok(1));
        let zero = r#"{"schema": "fairmpi.pvars", "version": 1,
            "pvars": [{"name": "messages_sent", "class": "counter", "value": 0}]}"#;
        assert!(validate_pvars(zero).is_err());
        let empty = r#"{"schema": "fairmpi.pvars", "version": 1, "pvars": []}"#;
        assert!(validate_pvars(empty).is_err());
        assert!(validate_pvars("not json").is_err());
        assert!(validate_pvars(r#"{"schema": "other"}"#).is_err());
    }
}
