//! Experiment drivers, one per paper figure/table.

use fairmpi_vsim::workload::multirate::SimMatchLayout;
use fairmpi_vsim::{
    CostModel, Machine, MachinePreset, MultirateSim, RmamtSim, SimAssignment, SimDesign,
    SimProgress,
};

use crate::stats::over_reps;
use crate::{env_usize, Point, Series};

/// The named design-point vocabulary shared by the bench binaries.
///
/// fig3/fig4/fig5/table2/diag/fig_offload all draw their `SimDesign`s from
/// here instead of re-spelling ten-field literals — one place to extend
/// when the design space grows a new axis.
pub mod presets {
    use fairmpi_vsim::workload::multirate::SimMatchLayout;
    use fairmpi_vsim::{SimAssignment, SimDesign, SimProgress};

    /// One cell of the instance-count × assignment grids: everything
    /// defaulted except the swept axes. Overtaking implies `MPI_ANY_TAG`
    /// receives, as in the paper's Fig. 4 runs.
    pub fn cell(
        instances: usize,
        assignment: SimAssignment,
        progress: SimProgress,
        matching: SimMatchLayout,
        overtaking: bool,
    ) -> SimDesign {
        SimDesign {
            instances,
            assignment,
            progress,
            matching,
            allow_overtaking: overtaking,
            any_tag: overtaking,
            ..SimDesign::baseline()
        }
    }

    /// "Thread": the paper's baseline threaded design — one shared
    /// instance, serial progress, one matching engine.
    pub fn thread_baseline() -> SimDesign {
        SimDesign::baseline()
    }

    /// "Thread + CRIs": `n` dedicated instances, everything else baseline.
    pub fn cris(n: usize) -> SimDesign {
        cell(
            n,
            SimAssignment::Dedicated,
            SimProgress::Serial,
            SimMatchLayout::SingleComm,
            false,
        )
    }

    /// "Thread + CRIs*": dedicated instances plus concurrent progress and
    /// per-pair communicators — the paper's best threaded design.
    pub fn cris_star(n: usize) -> SimDesign {
        cell(
            n,
            SimAssignment::Dedicated,
            SimProgress::Concurrent,
            SimMatchLayout::CommPerPair,
            false,
        )
    }

    /// A big-lock implementation: one global critical section around the
    /// whole library (the IMPI/MPICH emulations of Fig. 5).
    pub fn big_lock() -> SimDesign {
        SimDesign {
            big_lock: true,
            ..SimDesign::baseline()
        }
    }

    /// Process mode: pairs of single-threaded processes.
    pub fn process() -> SimDesign {
        SimDesign::process_mode()
    }

    /// Software offload: `workers` dedicated communication threads per
    /// side fed by lock-free command queues (DESIGN.md §8).
    pub fn offload(workers: usize) -> SimDesign {
        SimDesign::offload(workers)
    }
}

/// Default windows-per-pair for the sweep figures (paper: 1010; the
/// default keeps a full figure under a couple of minutes).
const DEFAULT_ITERS: usize = 40;

fn reps() -> usize {
    env_usize("FAIRMPI_REPS", 3)
}

fn iters() -> usize {
    env_usize("FAIRMPI_ITERS", DEFAULT_ITERS)
}

fn max_pairs() -> usize {
    env_usize("FAIRMPI_MAX_PAIRS", 20)
}

fn run_point(
    machine: &Machine,
    pairs: usize,
    design: SimDesign,
    cost: Option<CostModel>,
) -> (f64, f64) {
    over_reps(reps(), |seed| {
        MultirateSim {
            machine: machine.clone(),
            pairs,
            window: 128,
            iterations: iters(),
            design,
            seed,
            cost,
        }
        .run()
        .msg_rate_per_s
    })
}

fn sweep(machine: &Machine, label: String, design: SimDesign, cost: Option<CostModel>) -> Series {
    let points = (1..=max_pairs())
        .map(|pairs| {
            let (mean, stddev) = run_point(machine, pairs, design, cost);
            Point {
                x: pairs as f64,
                mean,
                stddev,
            }
        })
        .collect();
    Series { label, points }
}

/// The instance-count × assignment grid shared by Figs. 3 and 4.
fn multirate_grid(
    progress: SimProgress,
    matching: SimMatchLayout,
    overtaking: bool,
) -> Vec<Series> {
    let machine = Machine::preset(MachinePreset::Alembert);
    let mut series = Vec::new();
    for &instances in &[1usize, 10, 20] {
        for &(assignment, mode_name) in &[
            (SimAssignment::RoundRobin, "round-robin"),
            (SimAssignment::Dedicated, "dedicated"),
        ] {
            let design = presets::cell(instances, assignment, progress, matching, overtaking);
            series.push(sweep(
                &machine,
                format!("{instances} inst / {mode_name}"),
                design,
                None,
            ));
        }
    }
    series
}

fn panel_params(panel: char) -> (SimProgress, SimMatchLayout) {
    match panel {
        'a' => (SimProgress::Serial, SimMatchLayout::SingleComm),
        'b' => (SimProgress::Concurrent, SimMatchLayout::SingleComm),
        'c' => (SimProgress::Concurrent, SimMatchLayout::CommPerPair),
        _ => panic!("panel must be a, b, or c"),
    }
}

/// Paper Fig. 3: zero-byte message rate, ordering enforced.
pub fn fig3(panel: char) -> Vec<Series> {
    let (progress, matching) = panel_params(panel);
    multirate_grid(progress, matching, false)
}

/// The flagship design point of a Fig. 3 panel for observability mode
/// (`--trace` / `--spc-series`): the panel's progress/matching design with a
/// **single shared instance** under round-robin assignment at the full pair
/// count — the most contended cell of the grid, where the instance-lock
/// convoy the paper describes is most visible.
pub fn fig3_flagship(panel: char) -> MultirateSim {
    let (progress, matching) = panel_params(panel);
    MultirateSim {
        machine: Machine::preset(MachinePreset::Alembert),
        pairs: max_pairs(),
        window: 128,
        iterations: iters(),
        design: presets::cell(1, SimAssignment::RoundRobin, progress, matching, false),
        seed: 1,
        cost: None,
    }
}

/// Paper Fig. 4: zero-byte message rate with message overtaking
/// (`mpi_assert_allow_overtaking` + `MPI_ANY_TAG` receives).
pub fn fig4(panel: char) -> Vec<Series> {
    let (progress, matching) = panel_params(panel);
    multirate_grid(progress, matching, true)
}

/// Scale the software-path constants of a cost model — the documented
/// emulation knob distinguishing implementations in Fig. 5.
fn scaled_cost(machine: &Machine, factor: f64) -> CostModel {
    let mut c = CostModel::for_fabric(&machine.fabric);
    let scale = |v: u64| ((v as f64) * factor) as u64;
    c.send_software_ns = scale(c.send_software_ns);
    c.recv_software_ns = scale(c.recv_software_ns);
    c.match_base_ns = scale(c.match_base_ns);
    c.poll_empty_ns = scale(c.poll_empty_ns);
    c
}

/// Paper Fig. 5: the state of MPI threading — process vs thread mode
/// across implementations, plus the paper's CRI designs.
///
/// "IMPI"/"MPICH" entries are *emulations* of those implementations'
/// documented threading designs (a global critical section) with slightly
/// different software-overhead constants; see DESIGN.md §1.
pub fn fig5() -> Vec<Series> {
    let machine = Machine::preset(MachinePreset::Alembert);
    let n = 20;
    let entries: Vec<(&str, SimDesign, f64)> = vec![
        ("OMPI Process", presets::process(), 1.0),
        ("OMPI Thread", presets::thread_baseline(), 1.0),
        ("OMPI Thread + CRIs", presets::cris(n), 1.0),
        ("OMPI Thread + CRIs*", presets::cris_star(n), 1.0),
        ("IMPI Process", presets::process(), 0.85),
        ("IMPI Thread", presets::big_lock(), 0.85),
        ("MPICH Process", presets::process(), 1.15),
        ("MPICH Thread", presets::big_lock(), 1.15),
    ];
    entries
        .into_iter()
        .map(|(label, design, factor)| {
            let cost = (factor != 1.0).then(|| scaled_cost(&machine, factor));
            sweep(&machine, label.to_string(), design, cost)
        })
        .collect()
}

/// The flagship design point of Fig. 5 for observability mode: the "OMPI
/// Thread" baseline (one instance, serial progress, single matching engine)
/// at the full pair count — the design whose lock convoy motivates the
/// whole paper.
pub fn fig5_flagship() -> MultirateSim {
    MultirateSim {
        machine: Machine::preset(MachinePreset::Alembert),
        pairs: max_pairs(),
        window: 128,
        iterations: iters(),
        design: SimDesign::baseline(),
        seed: 1,
        cost: None,
    }
}

/// The software-offload comparison (DESIGN.md §8; *not* a paper figure —
/// the design point the paper leaves on the table): zero-byte message rate
/// vs pairs for a big-lock implementation, the paper's CRI designs,
/// software offload at 1/2/4 worker pairs, and process mode.
pub fn fig_offload() -> Vec<Series> {
    let machine = Machine::preset(MachinePreset::Alembert);
    let n = 20;
    let entries: Vec<(&str, SimDesign)> = vec![
        ("Process", presets::process()),
        ("Big-lock Thread", presets::big_lock()),
        ("Thread + CRIs", presets::cris(n)),
        ("Thread + CRIs*", presets::cris_star(n)),
        ("Offload x1", presets::offload(1)),
        ("Offload x2", presets::offload(2)),
        ("Offload x4", presets::offload(4)),
    ];
    entries
        .into_iter()
        .map(|(label, design)| sweep(&machine, label.to_string(), design, None))
        .collect()
}

/// The flagship design point of the offload figure for observability mode:
/// two offload worker pairs at the full pair count — command queues,
/// batch draining and both worker roles all exercised.
pub fn fig_offload_flagship() -> MultirateSim {
    MultirateSim {
        machine: Machine::preset(MachinePreset::Alembert),
        pairs: max_pairs(),
        window: 128,
        iterations: iters(),
        design: presets::offload(2),
        seed: 1,
        cost: None,
    }
}

/// The drop probabilities (per-mille) swept by the degradation figure.
pub const DEGRADATION_DROPS_PM: [u16; 5] = [0, 25, 50, 100, 200];

/// The degradation sweep (DESIGN.md §9; *not* a paper figure): zero-byte
/// message rate at a fixed pair count as the wire's drop probability
/// rises, for a big-lock implementation, the paper's CRI designs, and
/// software offload. Duplicates ride along at a quarter of the drop rate
/// so suppression is exercised too. Graceful degradation — recovery pays
/// retransmission and backoff costs but never collapses the rate — is the
/// acceptance criterion of the reliability layer.
pub fn fig_degradation() -> Vec<Series> {
    let machine = Machine::preset(MachinePreset::Alembert);
    let pairs = max_pairs().min(8); // fixed load; the x-axis is drop rate
    let n = 20;
    let entries: Vec<(&str, SimDesign)> = vec![
        ("Big-lock Thread", presets::big_lock()),
        ("Thread + CRIs", presets::cris(n)),
        ("Thread + CRIs*", presets::cris_star(n)),
        ("Offload x2", presets::offload(2)),
    ];
    entries
        .into_iter()
        .map(|(label, design)| {
            let points = DEGRADATION_DROPS_PM
                .iter()
                .map(|&drop_pm| {
                    let (mean, stddev) = over_reps(reps(), |seed| {
                        MultirateSim {
                            machine: machine.clone(),
                            pairs,
                            window: 128,
                            iterations: iters(),
                            design: design.chaos(drop_pm, drop_pm / 4, 0xC0FFEE),
                            seed,
                            cost: None,
                        }
                        .run()
                        .msg_rate_per_s
                    });
                    Point {
                        x: drop_pm as f64,
                        mean,
                        stddev,
                    }
                })
                .collect();
            Series {
                label: label.to_string(),
                points,
            }
        })
        .collect()
}

/// The flagship design point of the degradation figure for observability
/// mode: CRIs* under a 10% drop + 2.5% dup wire — retransmission, backoff
/// and duplicate suppression all active on the paper's best threaded
/// design.
pub fn fig_degradation_flagship() -> MultirateSim {
    MultirateSim {
        machine: Machine::preset(MachinePreset::Alembert),
        pairs: max_pairs().min(8),
        window: 128,
        iterations: iters(),
        design: presets::cris_star(20).chaos(100, 25, 0xC0FFEE),
        seed: 1,
        cost: None,
    }
}

/// One message-size panel of Figs. 6/7.
pub struct RmaPanel {
    /// Payload size in bytes.
    pub msg_size: usize,
    /// The six (mode × progress) series.
    pub series: Vec<Series>,
    /// The theoretical peak line for this size.
    pub peak: f64,
}

fn rma_figure(machine: &Machine, thread_counts: &[usize], instances: usize) -> Vec<RmaPanel> {
    let ops = env_usize("FAIRMPI_RMA_OPS", 1000);
    let sizes = [1usize, 128, 1024, 4096, 16 * 1024];
    sizes
        .iter()
        .map(|&msg_size| {
            let mut series = Vec::new();
            for &(progress, pname) in &[
                (SimProgress::Serial, "serial"),
                (SimProgress::Concurrent, "concurrent"),
            ] {
                for &(inst, assignment, mname) in &[
                    (1usize, SimAssignment::Dedicated, "single"),
                    (instances, SimAssignment::Dedicated, "dedicated"),
                    (instances, SimAssignment::RoundRobin, "round-robin"),
                ] {
                    let points = thread_counts
                        .iter()
                        .map(|&threads| {
                            let (mean, stddev) = over_reps(reps(), |seed| {
                                RmamtSim {
                                    machine: machine.clone(),
                                    threads,
                                    msg_size,
                                    ops_per_thread: ops,
                                    instances: inst,
                                    assignment,
                                    progress,
                                    seed,
                                }
                                .run()
                                .msg_rate_per_s
                            });
                            Point {
                                x: threads as f64,
                                mean,
                                stddev,
                            }
                        })
                        .collect();
                    series.push(Series {
                        label: format!("{mname} / {pname}"),
                        points,
                    });
                }
            }
            let peak = RmamtSim {
                machine: machine.clone(),
                threads: 1,
                msg_size,
                ops_per_thread: 1,
                instances: 1,
                assignment: SimAssignment::Dedicated,
                progress: SimProgress::Serial,
                seed: 0,
            }
            .theoretical_peak();
            RmaPanel {
                msg_size,
                series,
                peak,
            }
        })
        .collect()
}

/// Paper Fig. 6: RMA-MT put+flush on the Trinitite Haswell partition.
pub fn fig6() -> Vec<RmaPanel> {
    let machine = Machine::preset(MachinePreset::TrinititeHaswell);
    let inst = machine.default_rma_instances;
    rma_figure(&machine, &[1, 2, 4, 8, 16, 32], inst)
}

/// Paper Fig. 7: RMA-MT put+flush on the Trinitite KNL partition.
pub fn fig7() -> Vec<RmaPanel> {
    let machine = Machine::preset(MachinePreset::TrinititeKnl);
    let inst = machine.default_rma_instances;
    rma_figure(&machine, &[1, 2, 4, 8, 16, 32, 64], inst)
}

/// Print, persist, and sanity-check one RMA figure (shared by the fig6 and
/// fig7 binaries).
pub fn report_rma_figure(name: &str, panels: &[RmaPanel]) {
    use crate::{check, print_series, write_csv};

    for panel in panels {
        let title = format!(
            "{name} @ {} bytes (theoretical peak {:.2e} msg/s)",
            panel.msg_size, panel.peak
        );
        print_series(&title, &panel.series);
        let csv = format!("{name}_{}B", panel.msg_size);
        let path = write_csv(&csv, &panel.series).expect("write csv");
        println!("wrote {}", path.display());
    }

    let groups: Vec<(String, Vec<Series>)> = panels
        .iter()
        .map(|p| (format!("{}B: ", p.msg_size), p.series.clone()))
        .collect();
    let path = crate::report::rate_report(name, &groups)
        .write()
        .expect("write bench report");
    println!("wrote {}", path.display());

    // Qualitative checks on the smallest-size panel (contention-bound) and
    // the largest (bandwidth-bound).
    let small = &panels[0];
    let large = panels.last().unwrap();
    let find = |p: &RmaPanel, label: &str| {
        p.series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
            .clone()
    };
    let ded = find(small, "dedicated / serial");
    let rr = find(small, "round-robin / serial");
    let single = find(small, "single / serial");
    check(
        "dedicated scales with threads (last > 4x first)",
        ded.last() > 4.0 * ded.points[0].mean,
    );
    check("dedicated beats round-robin", ded.last() > rr.last());
    check(
        "single instance does not scale",
        single.last() < 2.0 * single.points[0].mean,
    );
    let ded_conc = find(small, "dedicated / concurrent");
    check(
        "concurrent progress changes little for one-sided (no matching to drain)",
        (ded_conc.last() - ded.last()).abs() < 0.5 * ded.last(),
    );
    let ded_large = find(large, "dedicated / serial");
    check(
        "16 KiB saturates near the bandwidth peak",
        ded_large.last() > 0.5 * large.peak && ded_large.last() <= large.peak * 1.01,
    );
}

/// The flagship design point of Table II for observability mode: the
/// 1-instance serial-progress cell (Table II's leftmost column), where
/// every packet funnels through one instance lock and one matching engine.
pub fn table2_flagship(iterations: usize) -> MultirateSim {
    MultirateSim {
        machine: Machine::preset(MachinePreset::Alembert),
        pairs: 20,
        window: 128,
        iterations,
        design: presets::cell(
            1,
            SimAssignment::Dedicated,
            SimProgress::Serial,
            SimMatchLayout::SingleComm,
            false,
        ),
        seed: 0xBEEF,
        cost: None,
    }
}

/// One cell of Table II.
#[derive(Debug, Clone)]
pub struct Table2Cell {
    /// Column group ("Serial Progress", ...).
    pub group: &'static str,
    /// Instance count (1, 10, 20).
    pub instances: usize,
    /// Out-of-sequence messages.
    pub oos: u64,
    /// Out-of-sequence fraction of received messages.
    pub oos_fraction: f64,
    /// Total match time in milliseconds (virtual).
    pub match_time_ms: f64,
    /// Total messages received.
    pub total: u64,
}

/// Paper Table II: SPC counters at 20 thread pairs, dedicated assignment.
///
/// `iterations` of 1010 reproduces the paper's 2,585,600-message total.
pub fn table2(iterations: usize) -> Vec<Table2Cell> {
    let machine = Machine::preset(MachinePreset::Alembert);
    let groups: [(&'static str, SimProgress, SimMatchLayout); 3] = [
        (
            "Serial Progress",
            SimProgress::Serial,
            SimMatchLayout::SingleComm,
        ),
        (
            "Concurrent Progress",
            SimProgress::Concurrent,
            SimMatchLayout::SingleComm,
        ),
        (
            "Concurrent Progress + Matching",
            SimProgress::Concurrent,
            SimMatchLayout::CommPerPair,
        ),
    ];
    let mut cells = Vec::new();
    for (group, progress, matching) in groups {
        for instances in [1usize, 10, 20] {
            let result = MultirateSim {
                machine: machine.clone(),
                pairs: 20,
                window: 128,
                iterations,
                design: presets::cell(
                    instances,
                    SimAssignment::Dedicated,
                    progress,
                    matching,
                    false,
                ),
                seed: 0xBEEF,
                cost: None,
            }
            .run();
            cells.push(Table2Cell {
                group,
                instances,
                oos: result.spc[fairmpi_spc::Counter::OutOfSequenceMessages],
                oos_fraction: result.spc.out_of_sequence_fraction(),
                match_time_ms: result.spc.match_time_ms(),
                total: result.total_messages,
            });
        }
    }
    cells
}
