//! Figure/table regeneration harnesses.
//!
//! One module per experiment; the binaries in `src/bin/` are thin wrappers
//! so that `cargo run -p fairmpi-bench --bin fig3` regenerates paper
//! Fig. 3, etc. Results are written as CSV under `results/` and a textual
//! summary (including the qualitative checks listed in DESIGN.md §5) is
//! printed to stdout.
//!
//! Environment knobs (all optional):
//!
//! * `FAIRMPI_REPS` — repetitions per point (default 3); the paper reports
//!   mean and standard deviation.
//! * `FAIRMPI_ITERS` — windows per pair (default 40 for the sweep figures;
//!   `table2` defaults to the paper's full 1010).
//! * `FAIRMPI_MAX_PAIRS` — x-axis maximum for Figs. 3-5 (default 20).
//! * `FAIRMPI_RMA_OPS` — puts per thread for Figs. 6-7 (default 1000).
//! * `FAIRMPI_SPC_INTERVAL_US` — SPC time-series sampling interval in
//!   virtual microseconds for `--spc-series` (default 50).
//!
//! The fig3, fig5, table2 and diag binaries also accept
//! `--trace <out.json>` (Perfetto trace + lock-contention report),
//! `--spc-series <out.csv>` (message-rate time-series) and
//! `--pvars <out.json>` (MPI_T-style performance-variable snapshot +
//! Prometheus page); see [`observe`] for how observability mode changes
//! what runs. Every binary additionally writes a versioned
//! machine-readable result file `results/BENCH_<name>.json`; diff two of
//! them with the `fairmpi-report` binary (see [`report`]).

pub mod figures;
pub mod observe;
pub mod report;
pub mod stats;

use std::fs;
use std::path::Path;

/// One measured point of a series.
#[derive(Debug, Clone)]
pub struct Point {
    /// X coordinate (thread pairs, threads, ...).
    pub x: f64,
    /// Mean of the metric over repetitions.
    pub mean: f64,
    /// Standard deviation over repetitions.
    pub stddev: f64,
}

/// One figure series (a labeled line).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in x order.
    pub points: Vec<Point>,
}

impl Series {
    /// The mean at a given x, if present.
    pub fn at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .map(|p| p.mean)
    }

    /// The mean of the last point.
    pub fn last(&self) -> f64 {
        self.points.last().map(|p| p.mean).unwrap_or(0.0)
    }
}

/// Read an env knob with a default (thin wrapper over the runtime's typed
/// env layer so harness typos surface through the same one-shot report).
pub fn env_usize(name: &str, default: usize) -> usize {
    fairmpi::env::parse_or(name, default)
}

/// Write series as CSV: `figure,series,x,mean,stddev`.
pub fn write_csv(figure: &str, series: &[Series]) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{figure}.csv"));
    let mut out = String::from("figure,series,x,mean,stddev\n");
    for s in series {
        for p in &s.points {
            out.push_str(&format!(
                "{figure},{},{},{:.3},{:.3}\n",
                s.label, p.x, p.mean, p.stddev
            ));
        }
    }
    fs::write(&path, out)?;
    Ok(path)
}

/// Print a series table to stdout in a readable grid.
pub fn print_series(title: &str, series: &[Series]) {
    println!("\n== {title} ==");
    for s in series {
        print!("{:<28}", s.label);
        for p in &s.points {
            print!(" {:>10.0}", p.mean);
        }
        println!();
    }
}

/// Print a `[check]` line with a PASS/FAIL verdict for a qualitative
/// claim; returns whether it held.
pub fn check(claim: &str, held: bool) -> bool {
    println!(
        "[check] {} ... {}",
        claim,
        if held { "PASS" } else { "FAIL" }
    );
    held
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accessors() {
        let s = Series {
            label: "x".into(),
            points: vec![
                Point {
                    x: 1.0,
                    mean: 10.0,
                    stddev: 0.0,
                },
                Point {
                    x: 2.0,
                    mean: 20.0,
                    stddev: 1.0,
                },
            ],
        };
        assert_eq!(s.at(1.0), Some(10.0));
        assert_eq!(s.at(3.0), None);
        assert_eq!(s.last(), 20.0);
    }

    #[test]
    fn env_default_applies() {
        assert_eq!(env_usize("FAIRMPI_DOES_NOT_EXIST", 7), 7);
    }
}
