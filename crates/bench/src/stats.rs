//! Small statistics helpers (mean / standard deviation over repetitions).

/// Mean and (population) standard deviation of samples.
pub fn mean_std(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Run `f` for `reps` seeds and fold into (mean, stddev).
pub fn over_reps(reps: usize, mut f: impl FnMut(u64) -> f64) -> (f64, f64) {
    let samples: Vec<f64> = (0..reps.max(1))
        .map(|r| f(0xFA1B + r as u64 * 7919))
        .collect();
    mean_std(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-9);
        assert!((s - 2.0).abs() < 1e-9);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn over_reps_feeds_distinct_seeds() {
        let mut seen = Vec::new();
        over_reps(3, |seed| {
            seen.push(seed);
            1.0
        });
        seen.dedup();
        assert_eq!(seen.len(), 3);
    }
}
