//! Micro-benchmarks of the CRI layer: assignment strategies (Algorithm 1)
//! and lock/try-lock costs — the per-operation overheads the design pays
//! for its parallelism.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fairmpi_cri::{Assignment, CriPool};
use fairmpi_fabric::{Envelope, Fabric, FabricConfig, Packet};
use fairmpi_spc::SpcSet;

fn pool(instances: usize) -> (Arc<Fabric>, CriPool) {
    let fabric = Arc::new(Fabric::new(2, instances, FabricConfig::test_default()));
    let pool = CriPool::new(&fabric, 0, instances, Arc::new(SpcSet::new()));
    (fabric, pool)
}

fn bench_assignment(c: &mut Criterion) {
    let (_f, p) = pool(16);
    c.bench_function("cri/round_robin_assignment", |b| {
        b.iter(|| black_box(p.instance_id(Assignment::RoundRobin)))
    });
    c.bench_function("cri/dedicated_assignment", |b| {
        b.iter(|| black_box(p.instance_id(Assignment::Dedicated)))
    });
}

fn bench_lock_paths(c: &mut Criterion) {
    let (_f, p) = pool(4);
    let spc = SpcSet::new();
    c.bench_function("cri/uncontended_lock_unlock", |b| {
        b.iter(|| {
            let g = p.instance(0).lock(&spc);
            black_box(&g);
        })
    });
    c.bench_function("cri/try_lock_hit", |b| {
        b.iter(|| {
            let g = p.instance(1).try_lock(&spc);
            black_box(g.is_some())
        })
    });
    let held = p.instance(2).lock(&spc);
    c.bench_function("cri/try_lock_miss", |b| {
        b.iter(|| black_box(p.instance(2).try_lock(&spc).is_none()))
    });
    drop(held);
}

fn bench_send_path(c: &mut Criterion) {
    let (fabric, p) = pool(4);
    let spc = SpcSet::new();
    c.bench_function("cri/inject_zero_byte", |b| {
        b.iter(|| {
            {
                let g = p.instance(0).lock(&spc);
                g.send(
                    &fabric,
                    Packet::eager(
                        Envelope {
                            src: 0,
                            dst: 1,
                            comm: 0,
                            tag: 0,
                            seq: 0,
                        },
                        Vec::new(),
                    ),
                    1,
                    &spc,
                );
            }
            // Drain what we produced so queues stay bounded across the
            // millions of criterion iterations.
            let mut rx = fabric.context(1, 0).begin_drain();
            black_box(rx.pop_rx());
            drop(rx);
            let mut cq = p.instance(0).context().begin_drain();
            if cq.pop_completion().is_some() {
                cq.context().op_finished();
            }
        })
    });
}

criterion_group!(benches, bench_assignment, bench_lock_paths, bench_send_path);
criterion_main!(benches);
