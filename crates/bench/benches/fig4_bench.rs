//! Criterion wrapper for paper Fig. 4 (scaled down): the overtaking +
//! ANY_TAG variant of the Multirate sweep. Full resolution:
//! `cargo run --release -p fairmpi-bench --bin fig4`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fairmpi_bench::figures::presets;
use fairmpi_vsim::workload::multirate::SimMatchLayout;
use fairmpi_vsim::{Machine, MachinePreset, MultirateSim, SimAssignment, SimProgress};

fn run(pairs: usize, progress: SimProgress, matching: SimMatchLayout) -> f64 {
    MultirateSim {
        machine: Machine::preset(MachinePreset::Alembert),
        pairs,
        window: 32,
        iterations: 4,
        design: presets::cell(20, SimAssignment::Dedicated, progress, matching, true),
        seed: 1,
        cost: None,
    }
    .run()
    .msg_rate_per_s
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    for (panel, progress, matching) in [
        ('a', SimProgress::Serial, SimMatchLayout::SingleComm),
        ('b', SimProgress::Concurrent, SimMatchLayout::SingleComm),
        ('c', SimProgress::Concurrent, SimMatchLayout::CommPerPair),
    ] {
        for pairs in [4usize, 16] {
            let rate = run(pairs, progress, matching);
            println!("fig4{panel} pairs={pairs} overtaking: {rate:.0} msg/s (virtual)");
            group.bench_with_input(
                BenchmarkId::new(format!("panel_{panel}"), pairs),
                &pairs,
                |b, &pairs| b.iter(|| black_box(run(pairs, progress, matching))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
