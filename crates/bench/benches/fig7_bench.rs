//! Criterion wrapper for paper Fig. 7 (scaled down): RMA-MT put+flush on
//! the KNL preset (slower cores, 72 instances, up to 64 threads). Full
//! resolution: `cargo run --release -p fairmpi-bench --bin fig7`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fairmpi_vsim::{Machine, MachinePreset, RmamtSim, SimAssignment, SimProgress};

fn run(threads: usize, instances: usize, assignment: SimAssignment) -> f64 {
    RmamtSim {
        machine: Machine::preset(MachinePreset::TrinititeKnl),
        threads,
        msg_size: 128,
        ops_per_thread: 200,
        instances,
        assignment,
        progress: SimProgress::Serial,
        seed: 2,
    }
    .run()
    .msg_rate_per_s
}

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for (mode, instances, assignment) in [
        ("single", 1usize, SimAssignment::Dedicated),
        ("dedicated", 72, SimAssignment::Dedicated),
        ("round_robin", 72, SimAssignment::RoundRobin),
    ] {
        for threads in [8usize, 64] {
            let rate = run(threads, instances, assignment);
            println!("fig7 {mode} threads={threads}: {rate:.0} msg/s (virtual)");
            group.bench_with_input(BenchmarkId::new(mode, threads), &threads, |b, &threads| {
                b.iter(|| black_box(run(threads, instances, assignment)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
