//! Micro-benchmarks of the matching engine — the serial bottleneck the
//! whole study revolves around. These quantify the cost drivers behind
//! Table II: sequence validation, out-of-sequence buffering, queue search
//! length, and the overtaking/ANY_TAG shortcuts of §IV-D.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fairmpi_fabric::{Envelope, Packet, ANY_TAG};
use fairmpi_matching::{Matcher, PostedRecv};
use fairmpi_spc::SpcSet;

fn pkt(src: u32, tag: i32, seq: u64) -> Packet {
    Packet::eager(
        Envelope {
            src,
            dst: 0,
            comm: 0,
            tag,
            seq,
        },
        Vec::new(),
    )
}

fn recv(token: u64, tag: i32) -> PostedRecv {
    PostedRecv {
        token,
        comm: 0,
        src: 0,
        tag,
    }
}

/// In-order delivery against a pre-posted receive: the happy path.
fn bench_in_order(c: &mut Criterion) {
    c.bench_function("match/in_order_deliver", |b| {
        b.iter_batched(
            || {
                let mut m = Matcher::new(Arc::new(SpcSet::new()), false);
                for i in 0..1024u64 {
                    m.post_recv(recv(i, 0));
                }
                m
            },
            |mut m| {
                let mut out = Vec::new();
                for seq in 0..1024u64 {
                    m.deliver(pkt(0, 0, seq), &mut out);
                }
                black_box(out.len())
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

/// Fully reversed arrival: every message but one is buffered out of
/// sequence and replayed — the worst case the paper's Table II approaches
/// (up to ~94 % OOS).
fn bench_out_of_sequence(c: &mut Criterion) {
    c.bench_function("match/reversed_deliver_oos", |b| {
        b.iter_batched(
            || {
                let mut m = Matcher::new(Arc::new(SpcSet::new()), false);
                for i in 0..1024u64 {
                    m.post_recv(recv(i, 0));
                }
                m
            },
            |mut m| {
                let mut out = Vec::new();
                for seq in (0..1024u64).rev() {
                    m.deliver(pkt(0, 0, seq), &mut out);
                }
                black_box(out.len())
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

/// Queue-search cost as the PRQ grows (distinct tags force full scans).
fn bench_queue_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("match/queue_search");
    for len in [16usize, 128, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            b.iter_batched(
                || {
                    let mut m = Matcher::new(Arc::new(SpcSet::new()), false);
                    for i in 0..len as u64 {
                        m.post_recv(recv(i, i as i32));
                    }
                    m
                },
                |mut m| {
                    let mut out = Vec::new();
                    // Matches the last entry: full traversal.
                    m.deliver(pkt(0, len as i32 - 1, 0), &mut out);
                    black_box(out.len())
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// The §IV-D fast path: overtaking skips sequence validation, ANY_TAG
/// receives make the queue search O(1).
fn bench_overtaking_any_tag(c: &mut Criterion) {
    c.bench_function("match/overtaking_any_tag", |b| {
        b.iter_batched(
            || {
                let mut m = Matcher::new(Arc::new(SpcSet::new()), true);
                for i in 0..1024u64 {
                    m.post_recv(recv(i, ANY_TAG));
                }
                m
            },
            |mut m| {
                let mut out = Vec::new();
                // Scrambled arrival does not matter with overtaking.
                for seq in (0..1024u64).rev() {
                    m.deliver(pkt(0, 5, seq), &mut out);
                }
                black_box(out.len())
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

/// Posting receives against a deep unexpected queue.
fn bench_unexpected_queue(c: &mut Criterion) {
    c.bench_function("match/post_against_deep_umq", |b| {
        b.iter_batched(
            || {
                let mut m = Matcher::new(Arc::new(SpcSet::new()), false);
                let mut out = Vec::new();
                for seq in 0..1024u64 {
                    m.deliver(pkt(0, (seq % 64) as i32, seq), &mut out);
                }
                m
            },
            |mut m| {
                // Each post scans the UMQ for its tag.
                for tag in 0..64i32 {
                    black_box(m.post_recv(recv(tag as u64, tag)).0);
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_in_order,
    bench_out_of_sequence,
    bench_queue_search,
    bench_overtaking_any_tag,
    bench_unexpected_queue
);
criterion_main!(benches);
