//! Ablation benches for the design choices DESIGN.md calls out:
//! instance-count sweep beyond the paper's 20, the lock bounce-penalty
//! sensitivity, the window-size sweep, and the eager/rendezvous crossover
//! on the native runtime.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fairmpi::{DesignConfig, World};
use fairmpi_vsim::{Machine, MachinePreset, MultirateSim, SimAssignment, SimDesign, SimProgress};

fn multirate(pairs: usize, instances: usize, window: usize, machine: Machine) -> f64 {
    MultirateSim {
        machine,
        pairs,
        window,
        iterations: 4,
        design: SimDesign {
            instances,
            assignment: SimAssignment::Dedicated,
            progress: SimProgress::Serial,
            ..SimDesign::baseline()
        },
        seed: 1,
        cost: None,
    }
    .run()
    .msg_rate_per_s
}

/// Instance-count sweep at fixed 16 pairs: where does adding CRIs stop
/// paying? (The paper stops at 20; this probes past it.)
fn bench_instance_sweep(c: &mut Criterion) {
    let machine = Machine::preset(MachinePreset::Alembert);
    let mut group = c.benchmark_group("ablation/instances");
    group.sample_size(10);
    for instances in [1usize, 4, 16, 32, 64] {
        let rate = multirate(16, instances, 32, machine.clone());
        println!("ablation instances={instances}: {rate:.0} msg/s (virtual)");
        group.bench_with_input(
            BenchmarkId::from_parameter(instances),
            &instances,
            |b, &i| {
                let m = machine.clone();
                b.iter(|| black_box(multirate(16, i, 32, m.clone())))
            },
        );
    }
    group.finish();
}

/// Window-size sweep: how much outstanding traffic the receiver needs to
/// keep the pipeline busy.
fn bench_window_sweep(c: &mut Criterion) {
    let machine = Machine::preset(MachinePreset::Alembert);
    let mut group = c.benchmark_group("ablation/window");
    group.sample_size(10);
    for window in [8usize, 32, 128] {
        let rate = multirate(8, 20, window, machine.clone());
        println!("ablation window={window}: {rate:.0} msg/s (virtual)");
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            let m = machine.clone();
            b.iter(|| black_box(multirate(8, 20, w, m.clone())))
        });
    }
    group.finish();
}

/// Lock bounce-penalty sensitivity: the contention model's key constant.
fn bench_bounce_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/bounce");
    group.sample_size(10);
    for bounce in [0u64, 70, 300] {
        let mut machine = Machine::preset(MachinePreset::Alembert);
        machine.sched.lock_bounce_ns = bounce;
        let rate = multirate(16, 1, 32, machine.clone());
        println!("ablation bounce={bounce}ns (1 inst, 16 pairs): {rate:.0} msg/s (virtual)");
        group.bench_with_input(BenchmarkId::from_parameter(bounce), &bounce, |b, _| {
            let m = machine.clone();
            b.iter(|| black_box(multirate(16, 1, 32, m.clone())))
        });
    }
    group.finish();
}

/// Eager/rendezvous crossover on the real (native) runtime: round-trip a
/// payload just below and above the threshold.
fn bench_protocol_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/protocol");
    group.sample_size(10);
    for size in [1024usize, 4096, 8192] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let world = World::builder()
                .ranks(2)
                .design(DesignConfig::default())
                .build();
            let comm = world.comm_world();
            let p0 = world.proc(0);
            let p1 = world.proc(1);
            let payload = vec![7u8; size];
            b.iter(|| {
                let sreq = p0.isend(&payload, 1, 0, comm).unwrap();
                let rreq = p1.irecv(size, 0, 0, comm).unwrap();
                loop {
                    p0.progress();
                    if let Some(m) = p1.test(&rreq).unwrap() {
                        black_box(m.data.len());
                        break;
                    }
                }
                p0.wait(&sreq).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_instance_sweep,
    bench_window_sweep,
    bench_bounce_sensitivity,
    bench_protocol_crossover
);
criterion_main!(benches);
