//! Criterion wrapper for paper Table II (scaled down): runs the 20-pair
//! dedicated configuration for each progress/matching group and prints the
//! out-of-sequence percentage and match time alongside the timing. The
//! paper-scale table comes from `cargo run --release -p fairmpi-bench
//! --bin table2`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fairmpi_bench::figures::presets;
use fairmpi_spc::Counter;
use fairmpi_vsim::workload::multirate::SimMatchLayout;
use fairmpi_vsim::{
    Machine, MachinePreset, MultirateResult, MultirateSim, SimAssignment, SimProgress,
};

fn run(progress: SimProgress, matching: SimMatchLayout, instances: usize) -> MultirateResult {
    MultirateSim {
        machine: Machine::preset(MachinePreset::Alembert),
        pairs: 20,
        window: 32,
        iterations: 4,
        design: presets::cell(
            instances,
            SimAssignment::Dedicated,
            progress,
            matching,
            false,
        ),
        seed: 0xBEEF,
        cost: None,
    }
    .run()
}

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for (name, progress, matching) in [
        ("serial", SimProgress::Serial, SimMatchLayout::SingleComm),
        (
            "concurrent",
            SimProgress::Concurrent,
            SimMatchLayout::SingleComm,
        ),
        (
            "concurrent_matching",
            SimProgress::Concurrent,
            SimMatchLayout::CommPerPair,
        ),
    ] {
        for instances in [1usize, 20] {
            let r = run(progress, matching, instances);
            println!(
                "table2 {name}/{instances}-inst: OOS {} ({:.1}%), match {:.2} ms (virtual)",
                r.spc[Counter::OutOfSequenceMessages],
                r.spc.out_of_sequence_fraction() * 100.0,
                r.spc.match_time_ms()
            );
            group.bench_function(format!("{name}_{instances}inst"), |b| {
                b.iter(|| black_box(run(progress, matching, instances).makespan_ns))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
