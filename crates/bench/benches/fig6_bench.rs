//! Criterion wrapper for paper Fig. 6 (scaled down): RMA-MT put+flush on
//! the Haswell preset at two sizes and two thread counts per mode. Full
//! resolution: `cargo run --release -p fairmpi-bench --bin fig6`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fairmpi_vsim::{Machine, MachinePreset, RmamtSim, SimAssignment, SimProgress};

fn run(threads: usize, msg_size: usize, instances: usize, assignment: SimAssignment) -> f64 {
    RmamtSim {
        machine: Machine::preset(MachinePreset::TrinititeHaswell),
        threads,
        msg_size,
        ops_per_thread: 200,
        instances,
        assignment,
        progress: SimProgress::Serial,
        seed: 2,
    }
    .run()
    .msg_rate_per_s
}

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    for msg_size in [1usize, 16 * 1024] {
        for (mode, instances, assignment) in [
            ("single", 1usize, SimAssignment::Dedicated),
            ("dedicated", 32, SimAssignment::Dedicated),
            ("round_robin", 32, SimAssignment::RoundRobin),
        ] {
            for threads in [4usize, 32] {
                let rate = run(threads, msg_size, instances, assignment);
                println!(
                    "fig6 {mode} size={msg_size} threads={threads}: {rate:.0} msg/s (virtual)"
                );
                group.bench_with_input(
                    BenchmarkId::new(format!("{mode}_{msg_size}B"), threads),
                    &threads,
                    |b, &threads| {
                        b.iter(|| black_box(run(threads, msg_size, instances, assignment)))
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
