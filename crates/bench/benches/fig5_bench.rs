//! Criterion wrapper for paper Fig. 5 (scaled down): one point per design
//! preset at 8 pairs, printing the virtual rates so the ordering of the
//! legend (process ≫ CRIs* > CRIs > big-lock baselines) is visible from
//! `cargo bench`. Full resolution: `--bin fig5`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fairmpi_vsim::workload::multirate::SimMatchLayout;
use fairmpi_vsim::{Machine, MachinePreset, MultirateSim, SimAssignment, SimDesign, SimProgress};

fn run(design: SimDesign) -> f64 {
    MultirateSim {
        machine: Machine::preset(MachinePreset::Alembert),
        pairs: 8,
        window: 32,
        iterations: 4,
        design,
        seed: 1,
        cost: None,
    }
    .run()
    .msg_rate_per_s
}

fn bench_fig5(c: &mut Criterion) {
    let base = SimDesign::baseline();
    let presets: Vec<(&str, SimDesign)> = vec![
        ("ompi_process", SimDesign::process_mode()),
        ("ompi_thread", base),
        (
            "ompi_thread_cris",
            SimDesign {
                instances: 20,
                assignment: SimAssignment::Dedicated,
                ..base
            },
        ),
        (
            "ompi_thread_cris_star",
            SimDesign {
                instances: 20,
                assignment: SimAssignment::Dedicated,
                progress: SimProgress::Concurrent,
                matching: SimMatchLayout::CommPerPair,
                ..base
            },
        ),
        (
            "big_lock_thread",
            SimDesign {
                big_lock: true,
                ..base
            },
        ),
    ];
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for (name, design) in presets {
        println!("fig5 {name}: {:.0} msg/s (virtual, 8 pairs)", run(design));
        group.bench_function(name, |b| b.iter(|| black_box(run(design))));
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
