//! Criterion wrapper for paper Fig. 3 (scaled down): the virtual-time
//! Multirate run for each panel at 4 and 16 thread pairs. The measured
//! time is the *simulation* cost; the interesting output is the virtual
//! message rate, printed once per configuration. The full-resolution
//! figure comes from `cargo run --release -p fairmpi-bench --bin fig3`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fairmpi_bench::figures::presets;
use fairmpi_vsim::workload::multirate::SimMatchLayout;
use fairmpi_vsim::{Machine, MachinePreset, MultirateSim, SimAssignment, SimProgress};

fn run(pairs: usize, progress: SimProgress, matching: SimMatchLayout, instances: usize) -> f64 {
    MultirateSim {
        machine: Machine::preset(MachinePreset::Alembert),
        pairs,
        window: 32,
        iterations: 4,
        design: presets::cell(
            instances,
            SimAssignment::Dedicated,
            progress,
            matching,
            false,
        ),
        seed: 1,
        cost: None,
    }
    .run()
    .msg_rate_per_s
}

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    for (panel, progress, matching) in [
        ('a', SimProgress::Serial, SimMatchLayout::SingleComm),
        ('b', SimProgress::Concurrent, SimMatchLayout::SingleComm),
        ('c', SimProgress::Concurrent, SimMatchLayout::CommPerPair),
    ] {
        for pairs in [4usize, 16] {
            let rate = run(pairs, progress, matching, 20);
            println!("fig3{panel} pairs={pairs} 20-inst dedicated: {rate:.0} msg/s (virtual)");
            group.bench_with_input(
                BenchmarkId::new(format!("panel_{panel}"), pairs),
                &pairs,
                |b, &pairs| b.iter(|| black_box(run(pairs, progress, matching, 20))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
