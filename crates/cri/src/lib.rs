//! Communication Resource Instances (CRIs).
//!
//! Paper §III-B: *"We use the concept of a Communication Resources Instance
//! (CRI) to encompass resources such as network contexts, network endpoints,
//! and CQs with per-instance level of protection to perform communication
//! operations."*
//!
//! A [`Cri`] bundles one fabric network context (which carries its rx ring
//! and completion queue) with the lock protecting it. A [`CriPool`] owns all
//! instances of one rank and implements the two assignment strategies of
//! paper Algorithm 1:
//!
//! * **round-robin** — a relaxed atomic counter hands out instances
//!   first-come first-served, trading possible sharing for a cheap atomic
//!   and natural load balancing;
//! * **dedicated** — thread-local storage pins each thread to the instance
//!   it first drew (via round-robin), eliminating lock contention whenever
//!   threads ≤ instances.
//!
//! Locks expose both blocking (`lock`) and **try-lock** acquisition; the
//! latter is the enabling primitive for the concurrent progress engine
//! (paper §III-C, §III-E).

mod instance;
mod pool;

pub use instance::{Cri, CriGuard};
pub use pool::{Assignment, CriPool};

#[cfg(test)]
mod tests;
