//! A single communication resources instance and its lock guard.

use std::sync::Arc;

use fairmpi_fabric::{
    busy_wait_ns, Completion, CompletionKind, DrainGuard, Fabric, NetworkContext, Packet,
};
use fairmpi_spc::{Counter, SpcSet, Watermark};
use fairmpi_sync::{Mutex, MutexGuard};

/// One communication resources instance: a network context (with its rx
/// ring and completion queue) plus the lock that protects it.
///
/// Contention observability comes from the sync facade: the lock is a
/// [`fairmpi_sync::Mutex::named`] instance, so under the `traced` backend
/// every acquire latency, hold time, and try-lock failure lands in
/// fairmpi-trace without any hand-rolled hooks here.
#[derive(Debug)]
pub struct Cri {
    index: usize,
    context: Arc<NetworkContext>,
    lock: Mutex<()>,
}

impl Cri {
    pub(crate) fn new(index: usize, context: Arc<NetworkContext>) -> Self {
        Self {
            index,
            context,
            lock: Mutex::named((), move || format!("cri.instance[{index}]")),
        }
    }

    /// Position of this instance in its pool (== its context index).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The bundled network context.
    pub fn context(&self) -> &Arc<NetworkContext> {
        &self.context
    }

    /// Operations injected on this instance that have not yet completed.
    pub fn pending_ops(&self) -> u64 {
        self.context.pending_ops()
    }

    /// Cheap peek: does this instance have packets or completions waiting?
    pub fn has_work(&self) -> bool {
        self.context.has_work()
    }

    /// Whether the bundled context still works (the fault plan may have
    /// permanently killed it).
    pub fn is_alive(&self) -> bool {
        self.context.is_alive()
    }

    /// Acquire the instance, blocking on contention (paper Algorithm 1's
    /// `LOCK(instance[k] → lock)`).
    pub fn lock<'a>(&'a self, spc: &SpcSet) -> CriGuard<'a> {
        let guard = self.lock.lock();
        spc.inc(Counter::InstanceLockAcquisitions);
        CriGuard {
            cri: self,
            _lock: guard,
        }
    }

    /// Try to acquire the instance without blocking.
    ///
    /// Failure means another thread is working this instance — paper §III-C:
    /// *"we can be certain that a thread is progressing that particular code
    /// path, and therefore, the current thread can move on"*.
    pub fn try_lock<'a>(&'a self, spc: &SpcSet) -> Option<CriGuard<'a>> {
        match self.lock.try_lock() {
            Some(guard) => {
                spc.inc(Counter::InstanceLockAcquisitions);
                Some(CriGuard {
                    cri: self,
                    _lock: guard,
                })
            }
            None => {
                spc.inc(Counter::InstanceTryLockFailures);
                None
            }
        }
    }
}

/// Exclusive access to one instance: the only way to inject or drain.
///
/// Holding the guard is what the fabric's drain discipline requires; all
/// per-message hardware costs (injection overhead) are charged while the
/// guard is held, so lock contention in the runtime behaves like contention
/// on the real NIC resource.
pub struct CriGuard<'a> {
    cri: &'a Cri,
    _lock: MutexGuard<'a, ()>,
}

impl<'a> CriGuard<'a> {
    /// The instance this guard holds.
    pub fn cri(&self) -> &'a Cri {
        self.cri
    }

    /// Inject a two-sided packet toward its destination and report the send
    /// completion on this instance's completion queue.
    pub fn send(&self, fabric: &Fabric, packet: Packet, token: u64, spc: &SpcSet) {
        let cfg = fabric.config();
        let wire_len = packet.wire_len(cfg.envelope_bytes);
        // The context behaves like a synchronous DMA engine: it is occupied
        // for the larger of the injection overhead and the serialization
        // time, which is what makes large messages bandwidth-bound.
        busy_wait_ns(
            cfg.injection_overhead_ns
                .max(cfg.serialization_time_ns(packet.payload.len())),
        );
        self.cri.context.op_started();
        spc.record_level(
            Watermark::InstancePendingOps,
            self.cri.context.pending_ops(),
        );
        fabric.deliver(packet, self.cri.index);
        spc.inc(Counter::MessagesSent);
        spc.add(Counter::BytesSent, wire_len as u64);
        // Eager-style local completion: the payload left the user buffer.
        self.cri.context.post_completion(Completion {
            token,
            kind: CompletionKind::SendDone,
        });
    }

    /// Inject one reliability-layer frame through the armed fault plan.
    ///
    /// Charges injection occupancy like [`CriGuard::send`] but reports no
    /// local `SendDone` and tracks no pending op — under a fault plan the
    /// sender's request is completed by the receiver's ack, not by local
    /// injection. Message-volume counters are charged on the first attempt
    /// only, so retransmits never inflate the workload's message count.
    pub fn send_frame(&self, fabric: &Fabric, packet: Packet, first_attempt: bool, spc: &SpcSet) {
        let cfg = fabric.config();
        let wire_len = packet.wire_len(cfg.envelope_bytes);
        busy_wait_ns(
            cfg.injection_overhead_ns
                .max(cfg.serialization_time_ns(packet.payload.len())),
        );
        if first_attempt {
            spc.inc(Counter::MessagesSent);
            spc.add(Counter::BytesSent, wire_len as u64);
        }
        fabric.deliver_observed(packet, self.cri.index, spc);
    }

    /// Report a locally generated completion (e.g. an RMA op that finished
    /// against in-process memory) on this instance's CQ.
    pub fn post_completion(&self, completion: Completion) {
        self.cri.context.op_started();
        self.cri.context.post_completion(completion);
    }

    /// Begin draining the bundled context's queues. Charging extraction
    /// overhead per popped item is the caller's job (the progress engine
    /// does it), since batch size varies.
    pub fn begin_drain(&self) -> DrainGuard<'a> {
        self.cri.context.begin_drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairmpi_fabric::{Envelope, FabricConfig};

    fn fabric() -> Fabric {
        Fabric::new(2, 2, FabricConfig::test_default())
    }

    fn cri_for(fabric: &Fabric, rank: u32, idx: usize) -> Cri {
        Cri::new(idx, Arc::clone(fabric.context(rank, idx)))
    }

    fn packet(dst: u32) -> Packet {
        Packet::eager(
            Envelope {
                src: 0,
                dst,
                comm: 0,
                tag: 1,
                seq: 0,
            },
            vec![1, 2, 3],
        )
    }

    #[test]
    fn send_delivers_and_completes_locally() {
        let fabric = fabric();
        let spc = SpcSet::new();
        let cri = cri_for(&fabric, 0, 1);
        {
            let guard = cri.lock(&spc);
            guard.send(&fabric, packet(1), 42, &spc);
        }
        // Routed to dst context 1 (src ctx 1 % 2 contexts).
        let dst = fabric.context(1, 1);
        let mut drain = dst.begin_drain();
        assert_eq!(drain.pop_rx().unwrap().payload, vec![1, 2, 3]);
        drop(drain);
        // Local completion waits on the sender's own CQ.
        let mut drain = cri.context().begin_drain();
        let c = drain.pop_completion().unwrap();
        assert_eq!(c.token, 42);
        assert_eq!(spc.get(Counter::MessagesSent), 1);
        assert_eq!(spc.get(Counter::BytesSent), 28 + 3);
        assert_eq!(cri.pending_ops(), 1, "completion not yet consumed");
    }

    #[test]
    fn try_lock_fails_while_held_and_counts() {
        let fabric = fabric();
        let spc = SpcSet::new();
        let cri = cri_for(&fabric, 0, 0);
        let guard = cri.lock(&spc);
        assert!(cri.try_lock(&spc).is_none());
        assert_eq!(spc.get(Counter::InstanceTryLockFailures), 1);
        drop(guard);
        assert!(cri.try_lock(&spc).is_some());
        assert_eq!(spc.get(Counter::InstanceLockAcquisitions), 2);
    }

    #[test]
    fn has_work_tracks_rx_and_cq() {
        let fabric = fabric();
        let spc = SpcSet::new();
        let sender = cri_for(&fabric, 0, 0);
        let receiver_ctx = fabric.context(1, 0);
        assert!(!sender.has_work());
        sender.lock(&spc).send(&fabric, packet(1), 1, &spc);
        assert!(sender.has_work(), "send completion pending");
        assert!(receiver_ctx.has_work(), "packet waiting at destination");
    }
}
