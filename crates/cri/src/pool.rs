//! The instance pool and the two assignment strategies of Algorithm 1.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use fairmpi_sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use fairmpi_fabric::{Fabric, Rank};
use fairmpi_spc::{Counter, SpcSet};

use crate::Cri;

/// Strategy for assigning a CRI to a calling thread (paper §III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Assignment {
    /// `GET-INSTANCE-ID–ROUND-ROBIN`: a fresh instance per call from a
    /// circular counter. No permanent binding; cheap atomic; spreads load.
    RoundRobin,
    /// `GET-INSTANCE-ID–DEDICATED`: the first call stores a round-robin
    /// assignment in thread-local storage and every later call reuses it.
    /// Zero contention while threads ≤ instances.
    Dedicated,
}

/// Unique pool ids so thread-local dedicated assignments never leak between
/// pools (each simulated rank owns its own pool, and tests build many).
static POOL_IDS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This thread's dedicated instance per pool — the moral equivalent of
    /// the paper's `static thread_local my_id`, keyed because one OS thread
    /// may drive several simulated ranks in one process.
    static DEDICATED: RefCell<HashMap<u64, usize>> = RefCell::new(HashMap::new());
}

/// All communication resources instances of one rank.
#[derive(Debug)]
pub struct CriPool {
    pool_id: u64,
    rank: Rank,
    instances: Vec<Arc<Cri>>,
    round_robin: AtomicUsize,
    /// One flag per instance so a permanent death is counted as exactly one
    /// `cri_failovers` event no matter how many threads hit the corpse.
    failed_over: Vec<AtomicBool>,
    spc: Arc<SpcSet>,
}

impl CriPool {
    /// Build a pool of `num_instances` CRIs over `rank`'s fabric contexts.
    ///
    /// The count is clamped to the number of contexts the fabric actually
    /// granted (the Aries hardware limit may have reduced it — paper
    /// §III-B's "the design must also accommodate for cases where the number
    /// of CRIs is less than the number of threads").
    pub fn new(fabric: &Fabric, rank: Rank, num_instances: usize, spc: Arc<SpcSet>) -> Self {
        let available = fabric.num_contexts(rank);
        let n = num_instances.clamp(1, available);
        let instances: Vec<_> = (0..n)
            .map(|i| Arc::new(Cri::new(i, Arc::clone(fabric.context(rank, i)))))
            .collect();
        let failed_over = (0..instances.len())
            .map(|_| AtomicBool::new(false))
            .collect();
        Self {
            pool_id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            rank,
            instances,
            round_robin: AtomicUsize::new(0),
            failed_over,
            spc,
        }
    }

    /// Owning rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of instances allocated.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True if the pool holds a single instance (the original Open MPI
    /// design the paper calls the "base performance").
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Instance by id.
    pub fn instance(&self, id: usize) -> &Arc<Cri> {
        &self.instances[id]
    }

    /// All instances.
    pub fn instances(&self) -> &[Arc<Cri>] {
        &self.instances
    }

    /// The counter sink.
    pub fn spc(&self) -> &Arc<SpcSet> {
        &self.spc
    }

    /// Algorithm 1 `GET-INSTANCE-ID–ROUND-ROBIN`.
    pub fn round_robin_id(&self) -> usize {
        self.spc.inc(Counter::CriRoundRobinAssignments);
        self.round_robin.fetch_add(1, Ordering::Relaxed) % self.instances.len()
    }

    /// Algorithm 1 `GET-INSTANCE-ID–DEDICATED`.
    pub fn dedicated_id(&self) -> usize {
        DEDICATED.with(|map| {
            let mut map = map.borrow_mut();
            match map.get(&self.pool_id) {
                Some(&id) if id < self.instances.len() => {
                    self.spc.inc(Counter::CriDedicatedHits);
                    id
                }
                _ => {
                    let id = self.round_robin_id();
                    map.insert(self.pool_id, id);
                    id
                }
            }
        })
    }

    /// `GET-INSTANCE-ID` under the configured strategy.
    pub fn instance_id(&self, assignment: Assignment) -> usize {
        match assignment {
            Assignment::RoundRobin => self.round_robin_id(),
            Assignment::Dedicated => self.dedicated_id(),
        }
    }

    /// `GET-INSTANCE-ID` with failover — the robustness extension of
    /// Algorithm 1. When the selected instance has been permanently killed,
    /// the corpse is quarantined (counted once as `cri_failovers`), a
    /// dedicated thread's binding is moved to a survivor, and the call
    /// falls back to scanning for the next living instance. Returns `None`
    /// only when every instance of the rank is dead — the caller surfaces
    /// that as `InstanceFailed`.
    pub fn alive_instance_id(&self, assignment: Assignment) -> Option<usize> {
        let id = self.instance_id(assignment);
        if self.instances[id].is_alive() {
            return Some(id);
        }
        if !self.failed_over[id].swap(true, Ordering::Relaxed) {
            self.spc.inc(Counter::CriFailovers);
        }
        let n = self.instances.len();
        let survivor = (1..n)
            .map(|step| (id + step) % n)
            .find(|&k| self.instances[k].is_alive())?;
        if assignment == Assignment::Dedicated {
            // Rebind the thread-local assignment so later calls go straight
            // to the survivor instead of re-tripping over the corpse.
            DEDICATED.with(|map| {
                map.borrow_mut().insert(self.pool_id, survivor);
            });
        }
        Some(survivor)
    }

    /// True while at least one instance still works.
    pub fn any_alive(&self) -> bool {
        self.instances.iter().any(|c| c.is_alive())
    }

    /// Drop this thread's dedicated binding for this pool, as when the user
    /// destroys a thread (paper §III-E's orphaned-instance scenario).
    pub fn forget_dedicated(&self) {
        DEDICATED.with(|map| {
            map.borrow_mut().remove(&self.pool_id);
        });
    }

    /// Total pending (injected, uncompleted) operations across instances.
    pub fn total_pending_ops(&self) -> u64 {
        self.instances.iter().map(|c| c.pending_ops()).sum()
    }
}
