//! Pool-level tests: assignment strategies under one and many threads.

use std::sync::Arc;

use fairmpi_fabric::{Fabric, FabricConfig};
use fairmpi_spc::{Counter, SpcSet};

use crate::{Assignment, CriPool};

fn pool(instances: usize) -> CriPool {
    let fabric = Fabric::new(1, instances, FabricConfig::test_default());
    CriPool::new(&fabric, 0, instances, Arc::new(SpcSet::new()))
}

#[test]
fn round_robin_cycles_through_instances() {
    let p = pool(3);
    let ids: Vec<usize> = (0..7).map(|_| p.round_robin_id()).collect();
    assert_eq!(ids, vec![0, 1, 2, 0, 1, 2, 0]);
}

#[test]
fn dedicated_is_sticky_within_a_thread() {
    let p = pool(4);
    let first = p.dedicated_id();
    for _ in 0..10 {
        assert_eq!(p.dedicated_id(), first);
    }
    // Dedicated hits counted after the initial assignment.
    assert_eq!(p.spc().get(Counter::CriDedicatedHits), 10);
    assert_eq!(p.spc().get(Counter::CriRoundRobinAssignments), 1);
}

#[test]
fn dedicated_assignments_differ_across_threads() {
    let p = Arc::new(pool(8));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let p = Arc::clone(&p);
            std::thread::spawn(move || {
                let id = p.dedicated_id();
                // Stays sticky inside the thread.
                assert_eq!(p.dedicated_id(), id);
                id
            })
        })
        .collect();
    let mut ids: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len(),
        8,
        "8 threads over 8 instances must get distinct dedicated CRIs"
    );
}

#[test]
fn dedicated_shares_instances_when_threads_exceed_pool() {
    // 4 threads, 2 instances: assignments must stay in range and collide.
    let p = Arc::new(pool(2));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let p = Arc::clone(&p);
            std::thread::spawn(move || p.dedicated_id())
        })
        .collect();
    let ids: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(ids.iter().all(|&i| i < 2));
}

#[test]
fn dedicated_state_is_per_pool() {
    let p1 = pool(4);
    let p2 = pool(4);
    let a = p1.dedicated_id();
    let b = p2.dedicated_id();
    // Both start their round-robin at 0 independently.
    assert_eq!(a, 0);
    assert_eq!(b, 0);
    // Advancing p1's round-robin does not disturb p2's dedication.
    p1.round_robin_id();
    assert_eq!(p2.dedicated_id(), 0);
}

#[test]
fn forget_dedicated_reassigns() {
    let p = pool(3);
    let first = p.dedicated_id();
    assert_eq!(first, 0);
    p.forget_dedicated();
    let second = p.dedicated_id();
    assert_eq!(second, 1, "round-robin advanced to the next instance");
}

#[test]
fn pool_size_clamps_to_available_contexts() {
    let fabric = Fabric::new(1, 4, FabricConfig::test_default());
    let p = CriPool::new(&fabric, 0, 64, Arc::new(SpcSet::new()));
    assert_eq!(p.len(), 4);
    let p1 = CriPool::new(&fabric, 0, 0, Arc::new(SpcSet::new()));
    assert_eq!(p1.len(), 1, "at least one instance");
}

#[test]
fn instance_id_dispatches_on_strategy() {
    let p = pool(2);
    assert_eq!(p.instance_id(Assignment::RoundRobin), 0);
    assert_eq!(p.instance_id(Assignment::RoundRobin), 1);
    let d = p.instance_id(Assignment::Dedicated);
    assert_eq!(p.instance_id(Assignment::Dedicated), d);
}

#[test]
fn concurrent_round_robin_spreads_load() {
    let p = Arc::new(pool(4));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let p = Arc::clone(&p);
            std::thread::spawn(move || {
                let mut counts = vec![0usize; 4];
                for _ in 0..1000 {
                    counts[p.round_robin_id()] += 1;
                }
                counts
            })
        })
        .collect();
    let mut total = [0usize; 4];
    for h in handles {
        for (i, c) in h.join().unwrap().into_iter().enumerate() {
            total[i] += c;
        }
    }
    assert_eq!(total.iter().sum::<usize>(), 4000);
    for (i, &c) in total.iter().enumerate() {
        assert_eq!(c, 1000, "instance {i} got {c} assignments, expected 1000");
    }
}
