//! Engine implementation.

use fairmpi_sync::Mutex;
use std::sync::Arc;

use fairmpi_cri::{Assignment, Cri, CriPool};
use fairmpi_fabric::{busy_wait_ns, Completion, Packet};
use fairmpi_spc::{Counter, Histogram};
use fairmpi_trace as trace;

/// Which progress design is active (the Fig. 3a vs Fig. 3b axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgressMode {
    /// Original Open MPI: one global progress lock; one thread extracts.
    Serial,
    /// Paper Algorithm 2: all threads extract, per-instance try-locks.
    Concurrent,
}

/// Consumer of drained items. Implemented by the runtime above (packet ->
/// matching engine, completion -> request completion).
///
/// Each callback returns the number of *user-visible* completions it
/// produced (matched receives, finished sends); Algorithm 2 uses that count
/// to decide whether the fallback sweep is needed.
pub trait ProgressHandler {
    /// An incoming packet was extracted from a context's rx ring.
    fn on_packet(&self, packet: Packet) -> usize;
    /// A local completion event was extracted from a completion queue.
    fn on_completion(&self, completion: Completion) -> usize;
}

/// An item drained from an instance, pending handling.
enum Drained {
    Packet(Packet),
    Completion(Completion),
}

/// The progress engine for one rank.
#[derive(Debug)]
pub struct ProgressEngine {
    mode: ProgressMode,
    pool: Arc<CriPool>,
    /// Global lock serializing progress in [`ProgressMode::Serial`].
    serial_gate: Mutex<()>,
    /// Per-item extraction cost charged while the instance lock is held.
    extraction_overhead_ns: u64,
    /// Maximum items drained from one instance per visit, bounding the time
    /// an instance lock is held.
    drain_budget: usize,
}

impl ProgressEngine {
    /// Default per-visit drain budget.
    pub const DEFAULT_DRAIN_BUDGET: usize = 128;

    /// Build an engine over a rank's instance pool.
    pub fn new(pool: Arc<CriPool>, mode: ProgressMode, extraction_overhead_ns: u64) -> Self {
        Self {
            mode,
            pool,
            serial_gate: Mutex::named((), || "progress.serial_gate".to_string()),
            extraction_overhead_ns,
            drain_budget: Self::DEFAULT_DRAIN_BUDGET,
        }
    }

    /// Override the per-visit drain budget.
    pub fn with_drain_budget(mut self, budget: usize) -> Self {
        self.drain_budget = budget.max(1);
        self
    }

    /// Active mode.
    pub fn mode(&self) -> ProgressMode {
        self.mode
    }

    /// The instance pool this engine progresses.
    pub fn pool(&self) -> &Arc<CriPool> {
        &self.pool
    }

    /// Make one progress pass; returns the number of user-visible
    /// completions produced (the `count` of paper Algorithm 2).
    pub fn progress<H: ProgressHandler>(&self, assignment: Assignment, handler: &H) -> usize {
        let _span = trace::span("progress.pass");
        let spc = self.pool.spc();
        spc.inc(Counter::ProgressCalls);
        let count = match self.mode {
            ProgressMode::Serial => self.progress_serial(handler),
            ProgressMode::Concurrent => self.progress_concurrent(assignment, handler),
        };
        // Useful vs wasted share of the progress budget: a pass that drains
        // nothing is pure polling overhead (the cost the paper's dedicated
        // design avoids by keeping threads on their own instance).
        spc.inc(if count > 0 {
            Counter::ProgressUsefulPasses
        } else {
            Counter::ProgressWastedPasses
        });
        count
    }

    /// Serial design: only the thread holding the global gate extracts;
    /// everyone else returns immediately (as `opal_progress` does when the
    /// progress lock is taken).
    fn progress_serial<H: ProgressHandler>(&self, handler: &H) -> usize {
        let Some(_gate) = self.serial_gate.try_lock() else {
            return 0;
        };
        let mut count = 0;
        for cri in self.pool.instances() {
            count += self.drain_one(cri, handler);
        }
        count
    }

    /// Concurrent design — paper Algorithm 2.
    fn progress_concurrent<H: ProgressHandler>(
        &self,
        assignment: Assignment,
        handler: &H,
    ) -> usize {
        let k = self.pool.instance_id(assignment);
        let mut count = self.drain_one(self.pool.instance(k), handler);
        if count == 0 {
            // Fallback sweep: guarantee eventual progress of every instance
            // (dedicated threads may be gone; completions may be stranded).
            trace::instant("progress.fallback_sweep");
            self.pool.spc().inc(Counter::ProgressFallbackSweeps);
            for _ in 0..self.pool.len() {
                let k = self.pool.round_robin_id();
                count += self.drain_one(self.pool.instance(k), handler);
                if count > 0 {
                    break;
                }
            }
        }
        count
    }

    /// Try-lock one instance, extract up to the drain budget (charging
    /// extraction overhead under the lock), release, then handle the items.
    fn drain_one<H: ProgressHandler>(&self, cri: &Arc<Cri>, handler: &H) -> usize {
        if !cri.is_alive() {
            // Quarantined by the fault plan: its CQ reports nothing ever
            // again, so polling it would only burn the progress budget
            // (the Algorithm 2 extension for failed CQs).
            return 0;
        }
        let spc = self.pool.spc();
        let mut items: Vec<Drained> = Vec::new();
        {
            let Some(guard) = cri.try_lock(spc) else {
                // Another thread is working this instance; its progress is
                // in good hands (paper §III-C).
                return 0;
            };
            let mut drain = guard.begin_drain();
            while items.len() < self.drain_budget {
                if let Some(c) = drain.pop_completion() {
                    busy_wait_ns(self.extraction_overhead_ns);
                    drain.context().op_finished();
                    items.push(Drained::Completion(c));
                    continue;
                }
                if let Some(p) = drain.pop_rx() {
                    busy_wait_ns(self.extraction_overhead_ns);
                    items.push(Drained::Packet(p));
                    continue;
                }
                break;
            }
        } // instance lock released before matching, per Fig. 1's pipeline.

        spc.record_hist(Histogram::DrainBatchSize, items.len() as u64);
        if items.is_empty() {
            return 0;
        }
        trace::counter("progress.drained", items.len() as u64);
        spc.add(Counter::CompletionsDrained, items.len() as u64);
        let mut count = 0;
        for item in items {
            count += match item {
                Drained::Packet(p) => handler.on_packet(p),
                Drained::Completion(c) => handler.on_completion(c),
            };
        }
        count
    }
}
