//! Progress engine tests.

use fairmpi_sync::Mutex;
use std::sync::Arc;

use fairmpi_cri::{Assignment, CriPool};
use fairmpi_fabric::{Completion, CompletionKind, Envelope, Fabric, FabricConfig, Packet};
use fairmpi_spc::{Counter, SpcSet};

use crate::{ProgressEngine, ProgressHandler, ProgressMode};

/// Records everything it sees; each item counts as one completion.
#[derive(Default)]
struct Recorder {
    packets: Mutex<Vec<Packet>>,
    completions: Mutex<Vec<Completion>>,
}

impl ProgressHandler for Recorder {
    fn on_packet(&self, packet: Packet) -> usize {
        self.packets.lock().push(packet);
        1
    }
    fn on_completion(&self, completion: Completion) -> usize {
        self.completions.lock().push(completion);
        1
    }
}

fn setup(instances: usize, mode: ProgressMode) -> (Arc<Fabric>, Arc<CriPool>, ProgressEngine) {
    let fabric = Arc::new(Fabric::new(2, instances, FabricConfig::test_default()));
    let pool = Arc::new(CriPool::new(&fabric, 1, instances, Arc::new(SpcSet::new())));
    let engine = ProgressEngine::new(Arc::clone(&pool), mode, 0);
    (fabric, pool, engine)
}

fn packet(dst: u32, seq: u64) -> Packet {
    Packet::eager(
        Envelope {
            src: 0,
            dst,
            comm: 0,
            tag: 0,
            seq,
        },
        vec![],
    )
}

#[test]
fn serial_progress_drains_every_instance() {
    let (fabric, _pool, engine) = setup(4, ProgressMode::Serial);
    // One packet per destination context.
    for ctx in 0..4 {
        fabric.deliver(packet(1, ctx as u64), ctx);
    }
    let rec = Recorder::default();
    let count = engine.progress(Assignment::RoundRobin, &rec);
    assert_eq!(count, 4);
    assert_eq!(rec.packets.lock().len(), 4);
}

#[test]
fn concurrent_progress_prefers_assigned_instance() {
    let (fabric, pool, engine) = setup(4, ProgressMode::Concurrent);
    // Work only on the dedicated instance of this thread (id 0, first draw).
    let dedicated = pool.dedicated_id();
    fabric.deliver(packet(1, 0), dedicated);
    let rec = Recorder::default();
    let count = engine.progress(Assignment::Dedicated, &rec);
    assert_eq!(count, 1);
    // No fallback sweep was needed.
    assert_eq!(pool.spc().get(Counter::ProgressFallbackSweeps), 0);
}

#[test]
fn concurrent_progress_falls_back_to_other_instances() {
    let (fabric, pool, engine) = setup(4, ProgressMode::Concurrent);
    let dedicated = pool.dedicated_id();
    // Work lives on a *different* instance than the dedicated one.
    let other = (dedicated + 2) % 4;
    fabric.deliver(packet(1, 0), other);
    let rec = Recorder::default();
    let count = engine.progress(Assignment::Dedicated, &rec);
    assert_eq!(count, 1, "fallback sweep must find the stranded packet");
    assert_eq!(pool.spc().get(Counter::ProgressFallbackSweeps), 1);
}

#[test]
fn orphaned_instances_are_eventually_progressed() {
    // A thread that owned instance 2 died; its packets must still be
    // drained by other threads' fallback sweeps (paper §III-E).
    let (fabric, _pool, engine) = setup(3, ProgressMode::Concurrent);
    for seq in 0..5 {
        fabric.deliver(packet(1, seq), 2);
    }
    let rec = Recorder::default();
    let mut total = 0;
    for _ in 0..10 {
        total += engine.progress(Assignment::Dedicated, &rec);
        if total >= 5 {
            break;
        }
    }
    assert_eq!(total, 5);
}

#[test]
fn locked_instance_is_skipped_not_deadlocked() {
    let (fabric, pool, engine) = setup(2, ProgressMode::Concurrent);
    fabric.deliver(packet(1, 0), 0);
    fabric.deliver(packet(1, 0), 1);
    // Hold instance 0's lock as if a sender were injecting.
    let guard = pool.instance(0).lock(pool.spc());
    let rec = Recorder::default();
    let count = engine.progress(Assignment::RoundRobin, &rec);
    // Instance 1's packet is drained; instance 0 is skipped.
    assert_eq!(count, 1);
    assert!(pool.spc().get(Counter::InstanceTryLockFailures) >= 1);
    drop(guard);
    let count = engine.progress(Assignment::RoundRobin, &rec);
    assert_eq!(count, 1, "instance 0 drained after the lock is released");
}

#[test]
fn serial_mode_excludes_concurrent_callers() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    // A handler that parks inside the callback so a second thread's
    // progress call overlaps the first.
    struct Parking {
        entered: AtomicUsize,
    }
    impl ProgressHandler for Parking {
        fn on_packet(&self, _: Packet) -> usize {
            self.entered.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(50));
            1
        }
        fn on_completion(&self, _: Completion) -> usize {
            1
        }
    }
    let (fabric, _pool, engine) = setup(1, ProgressMode::Serial);
    fabric.deliver(packet(1, 0), 0);
    let engine = Arc::new(engine);
    let handler = Arc::new(Parking {
        entered: AtomicUsize::new(0),
    });
    let t = {
        let engine = Arc::clone(&engine);
        let handler = Arc::clone(&handler);
        std::thread::spawn(move || engine.progress(Assignment::RoundRobin, &*handler))
    };
    // NOTE: handling happens after the gate is released in this design only
    // for the items already extracted; the gate covers the extraction loop.
    // Here we simply verify both calls terminate and exactly one packet is
    // handled overall.
    let mine = engine.progress(Assignment::RoundRobin, &*handler);
    let theirs = t.join().unwrap();
    assert_eq!(mine + theirs, 1);
    assert_eq!(handler.entered.load(Ordering::SeqCst), 1);
}

#[test]
fn drain_budget_bounds_items_per_visit() {
    let (fabric, _pool, engine) = setup(1, ProgressMode::Serial);
    let engine = engine.with_drain_budget(3);
    for seq in 0..10 {
        fabric.deliver(packet(1, seq), 0);
    }
    let rec = Recorder::default();
    assert_eq!(engine.progress(Assignment::RoundRobin, &rec), 3);
    assert_eq!(engine.progress(Assignment::RoundRobin, &rec), 3);
    assert_eq!(engine.progress(Assignment::RoundRobin, &rec), 3);
    assert_eq!(engine.progress(Assignment::RoundRobin, &rec), 1);
}

#[test]
fn completions_release_pending_ops() {
    let (_fabric, pool, engine) = setup(1, ProgressMode::Serial);
    let cri = pool.instance(0);
    {
        let guard = cri.lock(pool.spc());
        guard.post_completion(Completion {
            token: 5,
            kind: CompletionKind::RmaDone,
        });
    }
    assert_eq!(cri.pending_ops(), 1);
    let rec = Recorder::default();
    engine.progress(Assignment::RoundRobin, &rec);
    assert_eq!(cri.pending_ops(), 0);
    assert_eq!(rec.completions.lock().len(), 1);
    assert_eq!(rec.completions.lock()[0].token, 5);
}

#[test]
fn progress_counts_in_spc() {
    let (_fabric, pool, engine) = setup(2, ProgressMode::Concurrent);
    let rec = Recorder::default();
    for _ in 0..7 {
        engine.progress(Assignment::RoundRobin, &rec);
    }
    assert_eq!(pool.spc().get(Counter::ProgressCalls), 7);
}
