//! The communication progress engine.
//!
//! Paper §II-B: the progress engine is "the central place where every
//! component in an MPI implementation registers its progressing routine".
//! This crate reproduces the two designs the paper contrasts:
//!
//! * [`ProgressMode::Serial`] — the original Open MPI behaviour: a global
//!   progress lock lets a single thread at a time drain *all* instances;
//!   other threads calling progress bail out immediately. "Such a
//!   coarse-grained protection under-utilizes the available thread
//!   parallelism, and limits the rate of message extraction to the power of
//!   a single thread" (§III-E).
//! * [`ProgressMode::Concurrent`] — paper Algorithm 2: every thread may
//!   progress. A thread try-locks its assigned instance first; if that
//!   yields no completions it sweeps the remaining instances round-robin,
//!   try-locking each, which guarantees every instance is eventually
//!   progressed even if its dedicated thread is gone (the orphaned-CRI
//!   rule), while try-lock failures mean "someone else is already draining
//!   that instance, move on".
//!
//! Extraction happens under the instance lock (charging the fabric's
//! per-item extraction overhead); handling the extracted items — matching,
//! request completion — happens *after* the instance lock is released,
//! mirroring the paper's Fig. 1 pipeline where matching is its own
//! (serialized) stage downstream of extraction.

mod engine;

pub use engine::{ProgressEngine, ProgressHandler, ProgressMode};

#[cfg(test)]
mod tests;
