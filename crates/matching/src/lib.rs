//! The message-matching engine.
//!
//! Matching is "possibly the only strictly serial operation in the MPI
//! two-sided communication" (paper §III-F) and the study's central
//! bottleneck. This crate implements the receive-side machinery of an
//! OB1-style point-to-point layer:
//!
//! * **Sequence validation** — every two-sided message carries a
//!   per-(communicator, destination) sequence number assigned at send
//!   initiation ([`SendSequencer`]). The receiver admits messages to
//!   matching strictly in sequence order; anything arriving early is parked
//!   in an **out-of-sequence buffer**, which costs memory traffic right in
//!   the critical path (paper §II-C). Communicators marked with
//!   `mpi_assert_allow_overtaking` skip validation entirely (paper §IV-D).
//! * **Queue matching** — an in-sequence message is searched against the
//!   posted-receive queue (PRQ); a miss appends it to the unexpected-message
//!   queue (UMQ). Posting a receive searches the UMQ first. Both searches
//!   honor `MPI_ANY_SOURCE` / `MPI_ANY_TAG` wildcards and preserve the MPI
//!   non-overtaking rule.
//!
//! The [`Matcher`] is deliberately lock-free *in its interface*: the caller
//! owns the exclusion (a per-communicator lock for OB1-style concurrent
//! matching, one global lock for MPICH/UCX-style single-queue designs, or a
//! virtual lock under the discrete-event executor). Every entry point
//! returns a [`MatchWork`] receipt describing the work actually performed —
//! queue entries traversed, out-of-sequence buffering — which the
//! virtual-time executor converts into virtual nanoseconds and which feeds
//! the SPC counters behind Table II.

mod matcher;
mod outcome;
mod recv;
mod sequencer;

pub use matcher::Matcher;
pub use outcome::{MatchEvent, MatchWork, PostOutcome};
pub use recv::PostedRecv;
pub use sequencer::SendSequencer;

#[cfg(test)]
mod tests;
