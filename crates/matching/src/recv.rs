//! Posted-receive descriptors.

use fairmpi_fabric::{CommId, Envelope, Tag, ANY_SOURCE, ANY_TAG};

/// A receive posted by the user, waiting in the posted-receive queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostedRecv {
    /// Request token; the runtime above resolves it to a request object.
    pub token: u64,
    /// Communicator the receive was posted on.
    pub comm: CommId,
    /// Expected source rank, or [`ANY_SOURCE`].
    pub src: i32,
    /// Expected tag, or [`ANY_TAG`].
    pub tag: Tag,
}

impl PostedRecv {
    /// Whether an incoming envelope satisfies this receive.
    ///
    /// Negative tags are reserved for internal use (as in MPI), so a
    /// wildcard receive never matches an internal-tag message.
    #[inline]
    pub fn matches(&self, env: &Envelope) -> bool {
        self.comm == env.comm
            && (self.src == ANY_SOURCE || self.src == env.src as i32)
            && (self.tag == env.tag || (self.tag == ANY_TAG && env.tag >= 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: u32, tag: Tag, comm: CommId) -> Envelope {
        Envelope {
            src,
            dst: 0,
            comm,
            tag,
            seq: 0,
        }
    }

    #[test]
    fn exact_match() {
        let r = PostedRecv {
            token: 1,
            comm: 2,
            src: 3,
            tag: 4,
        };
        assert!(r.matches(&env(3, 4, 2)));
        assert!(!r.matches(&env(3, 5, 2)), "tag mismatch");
        assert!(!r.matches(&env(4, 4, 2)), "source mismatch");
        assert!(!r.matches(&env(3, 4, 1)), "communicator mismatch");
    }

    #[test]
    fn wildcards() {
        let any_src = PostedRecv {
            token: 1,
            comm: 0,
            src: ANY_SOURCE,
            tag: 9,
        };
        assert!(any_src.matches(&env(0, 9, 0)));
        assert!(any_src.matches(&env(17, 9, 0)));

        let any_tag = PostedRecv {
            token: 1,
            comm: 0,
            src: 5,
            tag: ANY_TAG,
        };
        assert!(any_tag.matches(&env(5, 0, 0)));
        assert!(any_tag.matches(&env(5, 1234, 0)));
        assert!(!any_tag.matches(&env(6, 0, 0)));
    }

    #[test]
    fn wildcard_tag_never_matches_internal_tags() {
        let any_tag = PostedRecv {
            token: 1,
            comm: 0,
            src: 5,
            tag: ANY_TAG,
        };
        assert!(!any_tag.matches(&env(5, -7, 0)));
    }
}
