//! Unit and randomized (seeded, deterministic) tests for the matching engine.

use std::sync::Arc;

use fairmpi_fabric::{Envelope, Packet, ANY_SOURCE, ANY_TAG};
use fairmpi_spc::{Counter, SpcSet};

use crate::{MatchEvent, Matcher, PostOutcome, PostedRecv};

fn matcher(overtaking: bool) -> Matcher {
    Matcher::new(Arc::new(SpcSet::new()), overtaking)
}

fn pkt(src: u32, tag: i32, comm: u32, seq: u64) -> Packet {
    Packet::eager(
        Envelope {
            src,
            dst: 0,
            comm,
            tag,
            seq,
        },
        vec![],
    )
}

fn recv(token: u64, src: i32, tag: i32, comm: u32) -> PostedRecv {
    PostedRecv {
        token,
        comm,
        src,
        tag,
    }
}

#[test]
fn in_sequence_message_matches_posted_receive() {
    let mut m = matcher(false);
    let (outcome, _) = m.post_recv(recv(7, 1, 5, 0));
    assert_eq!(outcome, PostOutcome::Posted);
    let mut out = Vec::new();
    let work = m.deliver(pkt(1, 5, 0, 0), &mut out);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].token, 7);
    assert_eq!(work.matches, 1);
    assert_eq!(work.seq_checks, 1);
    assert_eq!(m.posted_len(), 0);
}

#[test]
fn unmatched_message_goes_to_unexpected_queue() {
    let mut m = matcher(false);
    let mut out = Vec::new();
    let work = m.deliver(pkt(1, 5, 0, 0), &mut out);
    assert!(out.is_empty());
    assert_eq!(work.unexpected, 1);
    assert_eq!(m.unexpected_len(), 1);
    // Posting the receive later finds it.
    let (outcome, work) = m.post_recv(recv(9, 1, 5, 0));
    match outcome {
        PostOutcome::Matched(p) => assert_eq!(p.envelope.tag, 5),
        PostOutcome::Posted => panic!("should have matched the UMQ entry"),
    }
    assert_eq!(work.matches, 1);
    assert_eq!(m.unexpected_len(), 0);
}

#[test]
fn out_of_sequence_message_is_buffered_until_its_turn() {
    let mut m = matcher(false);
    let mut out = Vec::new();
    // seq 2 arrives first: parked, not matched, not unexpected.
    let work = m.deliver(pkt(1, 0, 0, 2), &mut out);
    assert!(out.is_empty());
    assert_eq!(work.oos_buffered, 1);
    assert_eq!(m.out_of_sequence_len(), 1);
    assert_eq!(m.unexpected_len(), 0);
    // seq 1: also parked.
    m.deliver(pkt(1, 0, 0, 1), &mut out);
    assert_eq!(m.out_of_sequence_len(), 2);
    // seq 0 arrives: the whole chain replays in order.
    let work = m.deliver(pkt(1, 0, 0, 0), &mut out);
    assert_eq!(work.oos_drained, 2);
    assert_eq!(m.out_of_sequence_len(), 0);
    assert_eq!(m.unexpected_len(), 3);
    assert_eq!(m.expected_seq(0, 1), 3);
}

#[test]
fn oos_replay_preserves_fifo_matching_order() {
    let mut m = matcher(false);
    let mut out = Vec::new();
    // Three receives, all wildcard-tag: must match in send order.
    for token in [10, 11, 12] {
        m.post_recv(recv(token, 1, ANY_TAG, 0));
    }
    // Arrivals scrambled: 2, 0, 1 (tags record the send order).
    m.deliver(pkt(1, 2, 0, 2), &mut out);
    m.deliver(pkt(1, 0, 0, 0), &mut out);
    m.deliver(pkt(1, 1, 0, 1), &mut out);
    let tags: Vec<i32> = out.iter().map(|e| e.packet.envelope.tag).collect();
    assert_eq!(tags, vec![0, 1, 2], "matched in sequence order");
    let tokens: Vec<u64> = out.iter().map(|e| e.token).collect();
    assert_eq!(tokens, vec![10, 11, 12], "receives consumed in post order");
}

#[test]
fn sequence_validation_is_per_source_and_per_comm() {
    let mut m = matcher(false);
    let mut out = Vec::new();
    // Sources 1 and 2 each start at seq 0; comm 1 is independent of comm 0.
    m.deliver(pkt(1, 0, 0, 0), &mut out);
    m.deliver(pkt(2, 0, 0, 0), &mut out);
    m.deliver(pkt(1, 0, 1, 0), &mut out);
    assert_eq!(m.unexpected_len(), 3, "all three admitted independently");
    assert_eq!(m.expected_seq(0, 1), 1);
    assert_eq!(m.expected_seq(0, 2), 1);
    assert_eq!(m.expected_seq(1, 1), 1);
}

#[test]
fn overtaking_skips_sequence_validation() {
    let mut m = matcher(true);
    let mut out = Vec::new();
    // With overtaking, seq 5 is admitted immediately.
    let work = m.deliver(pkt(1, 0, 0, 5), &mut out);
    assert_eq!(work.seq_checks, 0);
    assert_eq!(work.oos_buffered, 0);
    assert_eq!(m.unexpected_len(), 1);
    assert_eq!(m.spc().get(Counter::OvertakenMessages), 1);
    assert_eq!(m.spc().get(Counter::OutOfSequenceMessages), 0);
}

#[test]
fn overtaking_with_any_tag_matches_first_posted_receive() {
    // Paper §IV-D: overtaking + ANY_TAG forces every message to match the
    // first posted receive, skipping the queue search.
    let mut m = matcher(true);
    let mut out = Vec::new();
    for token in [1, 2, 3] {
        m.post_recv(recv(token, ANY_SOURCE, ANY_TAG, 0));
    }
    m.deliver(pkt(9, 42, 0, 77), &mut out);
    assert_eq!(out[0].token, 1, "first posted receive wins");
    // The queue search stopped at the first entry.
    let work = m.deliver(pkt(9, 43, 0, 3), &mut out);
    assert_eq!(work.traversed, 1);
}

#[test]
fn wildcard_source_matches_earliest_arrival() {
    let mut m = matcher(false);
    let mut out = Vec::new();
    m.deliver(pkt(3, 0, 0, 0), &mut out);
    m.deliver(pkt(5, 0, 0, 0), &mut out);
    let (outcome, _) = m.post_recv(recv(1, ANY_SOURCE, 0, 0));
    match outcome {
        PostOutcome::Matched(p) => assert_eq!(p.envelope.src, 3, "earliest arrival"),
        PostOutcome::Posted => panic!("should match"),
    }
}

#[test]
fn tag_mismatch_skips_queue_entries_but_counts_traversal() {
    let mut m = matcher(false);
    let mut out = Vec::new();
    for tag in 0..10 {
        m.post_recv(recv(tag as u64, 1, tag, 0));
    }
    // Message with tag 9 must traverse all 10 entries.
    let work = m.deliver(pkt(1, 9, 0, 0), &mut out);
    assert_eq!(work.traversed, 10);
    assert_eq!(out[0].token, 9);
}

#[test]
fn cancel_removes_posted_receive() {
    let mut m = matcher(false);
    m.post_recv(recv(5, 1, 1, 0));
    assert!(m.cancel(5));
    assert!(!m.cancel(5), "second cancel finds nothing");
    let mut out = Vec::new();
    m.deliver(pkt(1, 1, 0, 0), &mut out);
    assert!(out.is_empty(), "cancelled receive must not match");
    assert_eq!(m.unexpected_len(), 1);
}

#[test]
fn iprobe_sees_unexpected_without_consuming() {
    let mut m = matcher(false);
    let mut out = Vec::new();
    assert!(m.iprobe(0, 1, 4).is_none());
    m.deliver(pkt(1, 4, 0, 0), &mut out);
    assert_eq!(m.iprobe(0, 1, 4).unwrap().tag, 4);
    assert_eq!(m.iprobe(0, ANY_SOURCE, ANY_TAG).unwrap().src, 1);
    assert!(m.iprobe(0, 2, 4).is_none());
    assert_eq!(m.unexpected_len(), 1, "probe does not consume");
}

#[test]
fn spc_counters_reflect_table_ii_quantities() {
    let spc = Arc::new(SpcSet::new());
    let mut m = Matcher::new(Arc::clone(&spc), false);
    let mut out = Vec::new();
    for token in 0..4 {
        m.post_recv(recv(token, 1, 0, 0));
    }
    // Deliver 0,2,3,1: two arrive out of sequence.
    for seq in [0u64, 2, 3, 1] {
        m.deliver(pkt(1, 0, 0, seq), &mut out);
    }
    assert_eq!(spc.get(Counter::OutOfSequenceMessages), 2);
    assert_eq!(spc.get(Counter::MessagesReceived), 4);
    assert_eq!(spc.get(Counter::ExpectedMessages), 4);
    let snap = spc.snapshot();
    assert!((snap.out_of_sequence_fraction() - 0.5).abs() < 1e-9);
}

mod properties {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Deterministic Fisher–Yates permutation of `0..n`.
    fn permutation(rng: &mut SmallRng, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            v.swap(i, rng.gen_range(0usize..=i));
        }
        v
    }

    /// Deliver a random permutation of seq 0..n and assert every message is
    /// admitted exactly once, in sequence order.
    fn scrambled_delivery(perm: Vec<usize>) {
        let n = perm.len();
        let mut m = matcher(false);
        let mut out = Vec::new();
        for token in 0..n as u64 {
            m.post_recv(recv(token, 0, ANY_TAG, 0));
        }
        for &seq in &perm {
            // tag encodes the seq so we can check admission order.
            m.deliver(pkt(0, seq as i32, 0, seq as u64), &mut out);
        }
        assert_eq!(out.len(), n);
        for (i, ev) in out.iter().enumerate() {
            assert_eq!(ev.packet.envelope.seq, i as u64);
            assert_eq!(ev.token, i as u64);
        }
        assert_eq!(m.out_of_sequence_len(), 0);
        assert_eq!(m.unexpected_len(), 0);
    }

    #[test]
    fn any_permutation_is_reordered_into_fifo() {
        for seed in 0..64u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            scrambled_delivery(permutation(&mut rng, 32));
        }
    }

    /// Interleave posting receives and delivering a scrambled stream;
    /// regardless of interleaving, the k-th matched message must be the
    /// k-th sent (FIFO per source with identical tags).
    #[test]
    fn posts_and_delivers_interleaved_keep_fifo() {
        for seed in 0..64u64 {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xF1F0);
            let order: Vec<bool> = (0..64).map(|_| rng.gen_range(0u64..2) == 1).collect();
            let shuffle = rng.gen_range(0usize..24);
            let n = 24usize;
            // A deterministic scramble parameterized by `shuffle`.
            let mut seqs: Vec<u64> = (0..n as u64).collect();
            seqs.rotate_left(shuffle % n);
            let mut m = matcher(false);
            // Matched sequence numbers in match order, from both paths:
            // PRQ hits during delivery and UMQ hits at post time.
            let mut matched: Vec<u64> = Vec::new();
            let mut out = Vec::new();
            let post = |m: &mut Matcher, matched: &mut Vec<u64>, token: u64| {
                if let PostOutcome::Matched(p) = m.post_recv(recv(token, 0, 7, 0)).0 {
                    matched.push(p.envelope.seq);
                }
            };
            let mut next_post = 0u64;
            let mut next_deliver = 0usize;
            for &post_first in &order {
                if post_first && next_post < n as u64 {
                    post(&mut m, &mut matched, next_post);
                    next_post += 1;
                } else if next_deliver < n {
                    m.deliver(pkt(0, 7, 0, seqs[next_deliver]), &mut out);
                    matched.extend(out.drain(..).map(|e| e.packet.envelope.seq));
                    next_deliver += 1;
                }
            }
            while next_post < n as u64 {
                post(&mut m, &mut matched, next_post);
                next_post += 1;
            }
            while next_deliver < n {
                m.deliver(pkt(0, 7, 0, seqs[next_deliver]), &mut out);
                matched.extend(out.drain(..).map(|e| e.packet.envelope.seq));
                next_deliver += 1;
            }
            assert_eq!(matched.len(), n);
            for (i, &seq) in matched.iter().enumerate() {
                assert_eq!(seq, i as u64);
            }
        }
    }

    /// Overtaking mode: messages match in *arrival* order instead.
    #[test]
    fn overtaking_matches_in_arrival_order() {
        for seed in 0..32u64 {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x07E8);
            let perm = permutation(&mut rng, 16);
            let n = perm.len();
            let mut m = matcher(true);
            let mut out = Vec::new();
            for token in 0..n as u64 {
                m.post_recv(recv(token, 0, ANY_TAG, 0));
            }
            for &seq in &perm {
                m.deliver(pkt(0, seq as i32, 0, seq as u64), &mut out);
            }
            assert_eq!(out.len(), n);
            for (i, ev) in out.iter().enumerate() {
                // i-th arrival matched i-th posted receive, whatever its seq.
                assert_eq!(ev.token, i as u64);
                assert_eq!(ev.packet.envelope.seq, perm[i] as u64);
            }
        }
    }

    #[test]
    fn interleaved_posts_cover_umq_path() {
        // Directed version of the random interleaving: all delivers first,
        // then posts.
        let n = 8;
        let mut m = matcher(false);
        let mut out = Vec::new();
        for seq in (0..n as u64).rev() {
            m.deliver(pkt(0, 7, 0, seq), &mut out);
        }
        assert_eq!(m.unexpected_len(), n);
        let mut matched = Vec::new();
        for token in 0..n as u64 {
            match m.post_recv(recv(token, 0, 7, 0)).0 {
                PostOutcome::Matched(p) => matched.push(p.envelope.seq),
                PostOutcome::Posted => panic!("UMQ should satisfy the post"),
            }
        }
        assert_eq!(matched, (0..n as u64).collect::<Vec<_>>());
    }

    /// Multi-source scramble: each source's stream is independently
    /// permuted and interleaved; every stream must be re-serialized in
    /// its own sequence order.
    #[test]
    fn multi_source_streams_reorder_independently() {
        for seed in 0..32u64 {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x50_0C);
            let perm_a = permutation(&mut rng, 12);
            let perm_b = permutation(&mut rng, 12);
            let interleave: Vec<bool> = (0..24).map(|_| rng.gen_range(0u64..2) == 1).collect();
            let mut m = matcher(false);
            let mut out = Vec::new();
            let (mut ia, mut ib) = (0usize, 0usize);
            for &pick_a in &interleave {
                if pick_a && ia < perm_a.len() {
                    m.deliver(pkt(1, 0, 0, perm_a[ia] as u64), &mut out);
                    ia += 1;
                } else if ib < perm_b.len() {
                    m.deliver(pkt(2, 0, 0, perm_b[ib] as u64), &mut out);
                    ib += 1;
                }
            }
            while ia < perm_a.len() {
                m.deliver(pkt(1, 0, 0, perm_a[ia] as u64), &mut out);
                ia += 1;
            }
            while ib < perm_b.len() {
                m.deliver(pkt(2, 0, 0, perm_b[ib] as u64), &mut out);
                ib += 1;
            }
            // All 24 admitted to the UMQ (no receives posted), and each
            // source's admission order is exactly 0..12.
            assert_eq!(m.unexpected_len(), 24);
            assert_eq!(m.out_of_sequence_len(), 0);
            assert_eq!(m.expected_seq(0, 1), 12);
            assert_eq!(m.expected_seq(0, 2), 12);
        }
    }

    /// Work receipts always balance: every delivered message is
    /// eventually matched or queued, never both, never lost.
    #[test]
    fn work_receipts_balance() {
        for seed in 0..32u64 {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xBA1A);
            let perm = permutation(&mut rng, 20);
            let posted = rng.gen_range(0usize..20);
            let mut m = matcher(false);
            let mut out = Vec::new();
            let mut work = crate::MatchWork::default();
            for token in 0..posted as u64 {
                let (_, w) = m.post_recv(recv(token, 0, 7, 0));
                work.absorb(w);
            }
            for &seq in &perm {
                work.absorb(m.deliver(pkt(0, 7, 0, seq as u64), &mut out));
            }
            assert_eq!(work.matches + work.unexpected, perm.len());
            assert_eq!(work.oos_buffered, work.oos_drained);
            assert_eq!(out.len() + m.unexpected_len(), perm.len());
        }
    }

    #[test]
    fn match_event_fields_are_consistent() {
        let mut m = matcher(false);
        let mut out: Vec<MatchEvent> = Vec::new();
        m.post_recv(recv(3, 1, 2, 0));
        m.deliver(pkt(1, 2, 0, 0), &mut out);
        let ev = &out[0];
        assert_eq!(ev.token, 3);
        assert_eq!(ev.packet.envelope.src, 1);
    }
}
