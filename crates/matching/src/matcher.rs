//! The matcher: sequence validation plus PRQ/UMQ queue matching.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use fairmpi_fabric::{CommId, Envelope, Packet, Rank, SeqNo, Tag};
use fairmpi_spc::{Counter, Histogram, SpcSet, Watermark};
use fairmpi_trace as trace;

use crate::{MatchEvent, MatchWork, PostOutcome, PostedRecv};

/// Per-source in-order reassembly state.
#[derive(Debug, Default)]
struct SourceState {
    /// Next sequence number this source is allowed to match.
    expected: SeqNo,
    /// Early arrivals parked until their turn (paper §II-C: "the
    /// implementation has to allocate the necessary memory to store the
    /// out-of-sequence messages, making this operation more costly").
    out_of_sequence: BTreeMap<SeqNo, Packet>,
}

/// One matching domain: the state behind one matching lock.
///
/// Instantiated per communicator for OB1-style concurrent matching, or once
/// per process for MPICH/UCX-style single-queue designs; entries always
/// compare communicator ids, so both configurations are correct.
///
/// The matcher performs no locking itself — exclusion is the caller's
/// responsibility (which is exactly the design axis the paper studies).
#[derive(Debug)]
pub struct Matcher {
    /// Skip sequence validation (`mpi_assert_allow_overtaking`).
    allow_overtaking: bool,
    /// Reassembly state per (communicator, source).
    sources: HashMap<(CommId, Rank), SourceState>,
    /// Posted-receive queue, in post order.
    prq: VecDeque<PostedRecv>,
    /// Unexpected-message queue, in arrival (match-admission) order.
    umq: VecDeque<Packet>,
    /// Counter sink.
    spc: Arc<SpcSet>,
}

impl Matcher {
    /// Create a matcher. `allow_overtaking` disables sequence validation for
    /// every message handled by this matcher.
    pub fn new(spc: Arc<SpcSet>, allow_overtaking: bool) -> Self {
        Self {
            allow_overtaking,
            sources: HashMap::new(),
            prq: VecDeque::new(),
            umq: VecDeque::new(),
            spc,
        }
    }

    /// Whether sequence validation is disabled.
    pub fn allows_overtaking(&self) -> bool {
        self.allow_overtaking
    }

    /// Deliver one incoming two-sided packet (eager or rendezvous-RTS).
    ///
    /// Matches produced by this call — including replays of previously
    /// buffered out-of-sequence packets that became admissible — are pushed
    /// onto `out`. Returns the work receipt for time accounting.
    pub fn deliver(&mut self, packet: Packet, out: &mut Vec<MatchEvent>) -> MatchWork {
        let _span = trace::span("match.deliver");
        let mut work = MatchWork::default();
        if self.allow_overtaking {
            self.spc.inc(Counter::OvertakenMessages);
            self.admit(packet, out, &mut work);
            return work;
        }

        let key = (packet.envelope.comm, packet.envelope.src);
        work.seq_checks += 1;
        let state = self.sources.entry(key).or_default();
        let seq = packet.envelope.seq;
        if seq == state.expected {
            state.expected += 1;
            self.admit(packet, out, &mut work);
            // Replaying the out-of-sequence chain that just became ready.
            loop {
                let state = self.sources.get_mut(&key).expect("state exists");
                match state.out_of_sequence.remove(&state.expected) {
                    Some(parked) => {
                        state.expected += 1;
                        work.oos_drained += 1;
                        self.admit(parked, out, &mut work);
                    }
                    None => break,
                }
            }
            self.spc
                .record_hist(Histogram::OosReplayChain, work.oos_drained as u64);
            if work.oos_drained > 0 {
                trace::counter("match.oos_flush", work.oos_drained as u64);
            }
        } else if seq > state.expected {
            state.out_of_sequence.insert(seq, packet);
            work.oos_buffered += 1;
            trace::instant("match.oos_insert");
            self.spc.inc(Counter::OutOfSequenceMessages);
            let buffered: usize = self.sources.values().map(|s| s.out_of_sequence.len()).sum();
            self.spc
                .record_max(Counter::MaxOutOfSequenceBuffered, buffered as u64);
            self.spc
                .record_level(Watermark::OutOfSequenceBuffered, buffered as u64);
        } else {
            // A sequence number below `expected` means the fabric delivered
            // a duplicate — the wire never does that, so this is a bug.
            debug_assert!(false, "duplicate sequence number {seq} < expected");
        }
        work
    }

    /// Admit one in-sequence (or overtaking) packet to queue matching.
    fn admit(&mut self, packet: Packet, out: &mut Vec<MatchEvent>, work: &mut MatchWork) {
        let mut inspected = 0usize;
        let hit = self.prq.iter().position(|r| {
            inspected += 1;
            r.matches(&packet.envelope)
        });
        work.traversed += inspected;
        trace::counter("match.search_len", inspected as u64);
        self.spc
            .add(Counter::MatchQueueTraversals, inspected as u64);
        self.spc
            .record_hist(Histogram::MatchDeliverAttempts, inspected as u64);
        match hit {
            Some(pos) => {
                let recv = self.prq.remove(pos).expect("position valid");
                work.matches += 1;
                self.spc.inc(Counter::ExpectedMessages);
                self.spc.inc(Counter::MessagesReceived);
                self.spc
                    .record_level(Watermark::PostedRecvQueueDepth, self.prq.len() as u64);
                out.push(MatchEvent {
                    token: recv.token,
                    packet,
                });
            }
            None => {
                self.umq.push_back(packet);
                work.unexpected += 1;
                self.spc.inc(Counter::UnexpectedMessages);
                self.spc
                    .record_max(Counter::MaxUnexpectedQueueLen, self.umq.len() as u64);
                self.spc
                    .record_level(Watermark::UnexpectedQueueDepth, self.umq.len() as u64);
            }
        }
    }

    /// Post a receive: search the unexpected queue first, then append to the
    /// posted-receive queue.
    pub fn post_recv(&mut self, recv: PostedRecv) -> (PostOutcome, MatchWork) {
        let _span = trace::span("match.post");
        let mut work = MatchWork::default();
        let mut inspected = 0usize;
        let hit = self.umq.iter().position(|p| {
            inspected += 1;
            recv.matches(&p.envelope)
        });
        work.traversed += inspected;
        trace::counter("match.search_len", inspected as u64);
        self.spc
            .add(Counter::MatchQueueTraversals, inspected as u64);
        self.spc
            .record_hist(Histogram::MatchPostAttempts, inspected as u64);
        match hit {
            Some(pos) => {
                let packet = self.umq.remove(pos).expect("position valid");
                work.matches += 1;
                self.spc.inc(Counter::MessagesReceived);
                self.spc
                    .record_level(Watermark::UnexpectedQueueDepth, self.umq.len() as u64);
                (PostOutcome::Matched(packet), work)
            }
            None => {
                self.prq.push_back(recv);
                self.spc
                    .record_max(Counter::MaxPostedRecvQueueLen, self.prq.len() as u64);
                self.spc
                    .record_level(Watermark::PostedRecvQueueDepth, self.prq.len() as u64);
                (PostOutcome::Posted, work)
            }
        }
    }

    /// Non-destructively check for an unexpected message matching
    /// `(comm, src, tag)` — the engine behind `MPI_Iprobe`.
    pub fn iprobe(&self, comm: CommId, src: i32, tag: Tag) -> Option<&Envelope> {
        let probe = PostedRecv {
            token: 0,
            comm,
            src,
            tag,
        };
        self.umq
            .iter()
            .find(|p| probe.matches(&p.envelope))
            .map(|p| &p.envelope)
    }

    /// Remove a posted receive by token (the engine behind `MPI_Cancel`).
    /// Returns true if the receive was still queued.
    pub fn cancel(&mut self, token: u64) -> bool {
        match self.prq.iter().position(|r| r.token == token) {
            Some(pos) => {
                self.prq.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Posted receives currently queued.
    pub fn posted_len(&self) -> usize {
        self.prq.len()
    }

    /// Unexpected messages currently queued.
    pub fn unexpected_len(&self) -> usize {
        self.umq.len()
    }

    /// Messages currently parked out of sequence, across all sources.
    pub fn out_of_sequence_len(&self) -> usize {
        self.sources.values().map(|s| s.out_of_sequence.len()).sum()
    }

    /// The next sequence number expected from `(comm, src)`.
    pub fn expected_seq(&self, comm: CommId, src: Rank) -> SeqNo {
        self.sources
            .get(&(comm, src))
            .map(|s| s.expected)
            .unwrap_or(0)
    }

    /// The counter sink this matcher reports into.
    pub fn spc(&self) -> &Arc<SpcSet> {
        &self.spc
    }
}
