//! Results and work receipts returned by the matcher.

use fairmpi_fabric::Packet;

/// A user-visible match produced while delivering incoming packets.
#[derive(Debug, PartialEq, Eq)]
pub struct MatchEvent {
    /// Token of the posted receive that matched.
    pub token: u64,
    /// The matched packet (eager payload or rendezvous RTS).
    pub packet: Packet,
}

/// Outcome of posting a receive.
#[derive(Debug, PartialEq, Eq)]
pub enum PostOutcome {
    /// The receive matched a packet already waiting in the unexpected queue.
    Matched(Packet),
    /// No unexpected packet matched; the receive was appended to the PRQ.
    Posted,
}

/// Receipt of the work one matcher call actually performed.
///
/// The virtual-time executor converts this into virtual nanoseconds; the
/// totals also land in the SPC counters. Separating "work done" from "time
/// charged" lets the same engine run under real threads and under the
/// discrete-event clock.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MatchWork {
    /// Queue entries inspected across PRQ/UMQ searches.
    pub traversed: usize,
    /// Messages parked in the out-of-sequence buffer by this call.
    pub oos_buffered: usize,
    /// Messages replayed out of the out-of-sequence buffer by this call.
    pub oos_drained: usize,
    /// Sequence validations performed (0 when overtaking is allowed).
    pub seq_checks: usize,
    /// Matches produced (PRQ hits plus UMQ hits).
    pub matches: usize,
    /// Packets appended to the unexpected queue.
    pub unexpected: usize,
}

impl MatchWork {
    /// Merge another receipt into this one.
    pub fn absorb(&mut self, other: MatchWork) {
        self.traversed += other.traversed;
        self.oos_buffered += other.oos_buffered;
        self.oos_drained += other.oos_drained;
        self.seq_checks += other.seq_checks;
        self.matches += other.matches;
        self.unexpected += other.unexpected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = MatchWork {
            traversed: 1,
            oos_buffered: 2,
            oos_drained: 3,
            seq_checks: 4,
            matches: 5,
            unexpected: 6,
        };
        a.absorb(MatchWork {
            traversed: 10,
            oos_buffered: 20,
            oos_drained: 30,
            seq_checks: 40,
            matches: 50,
            unexpected: 60,
        });
        assert_eq!(
            a,
            MatchWork {
                traversed: 11,
                oos_buffered: 22,
                oos_drained: 33,
                seq_checks: 44,
                matches: 55,
                unexpected: 66,
            }
        );
    }
}
