//! Send-side sequence number assignment.

use std::sync::atomic::{AtomicU64, Ordering};

use fairmpi_fabric::{Rank, SeqNo};

/// Per-(communicator, destination) send sequence counters.
///
/// One `SendSequencer` lives in each communicator on each rank. Assignment
/// is a single relaxed `fetch_add` and is deliberately *not* performed under
/// the instance lock: two threads can draw sequence numbers *n* and *n+1*
/// and then inject them on different CRIs in the opposite order. That race
/// is precisely how concurrent senders manufacture the out-of-sequence
/// arrivals the paper measures (Table II shows up to ~94 % of messages
/// arriving out of sequence at 20 thread pairs).
#[derive(Debug)]
pub struct SendSequencer {
    counters: Box<[AtomicU64]>,
}

impl SendSequencer {
    /// Create counters for a communicator spanning `num_ranks` peers.
    pub fn new(num_ranks: usize) -> Self {
        let counters = (0..num_ranks)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self { counters }
    }

    /// Draw the next sequence number for a message to `dst`.
    #[inline]
    pub fn next(&self, dst: Rank) -> SeqNo {
        self.counters[dst as usize].fetch_add(1, Ordering::Relaxed)
    }

    /// Number of messages initiated toward `dst` so far.
    pub fn issued(&self, dst: Rank) -> u64 {
        self.counters[dst as usize].load(Ordering::Relaxed)
    }

    /// Number of peers this sequencer covers.
    pub fn num_ranks(&self) -> usize {
        self.counters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sequences_are_dense_per_destination() {
        let seq = SendSequencer::new(3);
        assert_eq!(seq.next(1), 0);
        assert_eq!(seq.next(1), 1);
        assert_eq!(seq.next(2), 0, "destinations are independent");
        assert_eq!(seq.next(1), 2);
        assert_eq!(seq.issued(1), 3);
        assert_eq!(seq.issued(0), 0);
    }

    #[test]
    fn concurrent_draws_are_unique_and_dense() {
        let seq = Arc::new(SendSequencer::new(1));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let seq = Arc::clone(&seq);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| seq.next(0)).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u64> = (0..4000).collect();
        assert_eq!(all, expect, "every number drawn exactly once");
    }
}
