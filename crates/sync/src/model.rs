//! Deterministic interleaving exploration for the facade primitives.
//!
//! A *model execution* runs a test closure on real OS threads that are
//! **serialized** by a cooperative scheduler: at every facade operation
//! (lock, try-lock, unlock-wakeup, condvar, atomic access, spawn, join,
//! [`yield_now`]) the running thread hands control to the scheduler,
//! which decides who runs next. A whole execution is therefore described
//! by the sequence of thread ids chosen at each decision point — the
//! *schedule* — and re-running the closure under the same schedule
//! reproduces the same interleaving exactly (closures must be
//! deterministic apart from scheduling: no wall-clock, no OS entropy).
//!
//! [`Checker::check`] explores schedules depth-first under a *preemption
//! bound* à la CHESS: a context switch taken while the previously running
//! thread was still runnable counts as a preemption, and only schedules
//! with at most `preemption_bound` of them are enumerated. Empirically a
//! tiny bound (the default is 2) exposes almost all interleaving bugs
//! while keeping the schedule count polynomial instead of exponential.
//!
//! The model is **sequentially consistent**: serialized threads perform
//! the real operations in schedule order, so `Ordering` arguments are
//! ignored. Algorithmic races (lost wakeups, check-then-act, ticket
//! races) are in scope; weak-memory reorderings are not.
//!
//! On an assertion failure or deadlock the checker reports a
//! [`Counterexample`] carrying the exact schedule, which
//! [`Checker::replay`] re-executes for debugging.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once};

/// Panic payload used to unwind threads out of an aborted execution.
/// Never observed outside this module.
struct ModelAbort;

fn abort_panic() -> ! {
    std::panic::panic_any(ModelAbort)
}

// ---------------------------------------------------------------------------
// Thread-local execution context
// ---------------------------------------------------------------------------

thread_local! {
    static CONTEXT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
    /// Marks threads owned by a model execution so the panic hook can
    /// silence their (expected, captured) unwinds.
    static IN_MODEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn context() -> Option<(Arc<Execution>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

fn set_context(exec: Arc<Execution>, id: usize) {
    CONTEXT.with(|c| *c.borrow_mut() = Some((exec, id)));
    IN_MODEL.with(|f| f.set(true));
}

/// Install (once per process) a panic hook that suppresses the default
/// stderr spew for panics on model threads: those panics are expected —
/// they are either [`ModelAbort`] teardown or assertion failures whose
/// message is captured into the [`Counterexample`].
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_MODEL.with(|f| f.get()) {
                return;
            }
            previous(info);
        }));
    });
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Block {
    /// Waiting for exclusive acquisition of the lock at this address.
    Excl(usize),
    /// Waiting for shared acquisition of the lock at this address.
    Shared(usize),
    /// Waiting on the condition variable at this address.
    Cond(usize),
    /// Waiting for the thread with this id to finish.
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    Runnable,
    Blocked(Block),
    Finished,
}

#[derive(Default)]
struct LockState {
    writer: bool,
    readers: usize,
}

/// One scheduling decision: which thread the `maker` handed control to,
/// out of which runnable set. The runnable set is recorded (sorted
/// ascending by construction) so the DFS can enumerate the untaken
/// branches later.
#[derive(Clone, Debug)]
struct Step {
    maker: usize,
    runnable: Vec<usize>,
    chosen: usize,
}

fn is_preemption(step: &Step, chosen: usize) -> bool {
    chosen != step.maker && step.runnable.contains(&step.maker)
}

/// Branch enumeration order at a decision point: continuing the current
/// thread first (zero preemptions), then the others by ascending id.
fn canonical_order(step: &Step) -> Vec<usize> {
    let mut order = Vec::with_capacity(step.runnable.len());
    if step.runnable.contains(&step.maker) {
        order.push(step.maker);
    }
    order.extend(step.runnable.iter().copied().filter(|&t| t != step.maker));
    order
}

struct ExecInner {
    threads: Vec<ThreadState>,
    /// The single thread currently granted the right to run.
    current: Option<usize>,
    abort: bool,
    failure: Option<String>,
    steps: Vec<Step>,
    /// Forced choices replayed from a previous execution (DFS prefix or
    /// an explicit schedule).
    prefix: Vec<usize>,
    /// Seeded xorshift state for random-walk mode; `None` = DFS default.
    rng: Option<u64>,
    preemption_bound: usize,
    preemptions: usize,
    max_depth: usize,
    locks: HashMap<usize, LockState>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ExecInner {
    /// Record a scheduling decision made by `maker` and grant the chosen
    /// thread. Returns `None` when no thread is runnable.
    fn decide(&mut self, maker: usize) -> Option<usize> {
        let runnable: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, ThreadState::Runnable))
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            self.current = None;
            return None;
        }
        let step_idx = self.steps.len();
        let chosen = if step_idx < self.prefix.len() && runnable.contains(&self.prefix[step_idx]) {
            self.prefix[step_idx]
        } else if let Some(state) = self.rng.as_mut() {
            // Random walk, still respecting the preemption budget.
            let pool: &[usize] =
                if self.preemptions >= self.preemption_bound && runnable.contains(&maker) {
                    &[maker]
                } else {
                    &runnable
                };
            *state ^= *state << 13;
            *state ^= *state >> 7;
            *state ^= *state << 17;
            pool[(*state % pool.len() as u64) as usize]
        } else if runnable.contains(&maker) {
            maker
        } else {
            runnable[0]
        };
        let step = Step {
            maker,
            runnable,
            chosen,
        };
        if is_preemption(&step, chosen) {
            self.preemptions += 1;
        }
        self.steps.push(step);
        self.current = Some(chosen);
        Some(chosen)
    }

    fn describe_blocked(&self) -> String {
        self.threads
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                ThreadState::Blocked(b) => Some(match b {
                    Block::Excl(a) => format!("thread {i} awaits lock {a:#x}"),
                    Block::Shared(a) => format!("thread {i} awaits shared lock {a:#x}"),
                    Block::Cond(a) => format!("thread {i} awaits condvar {a:#x}"),
                    Block::Join(t) => format!("thread {i} awaits join of thread {t}"),
                }),
                _ => None,
            })
            .collect::<Vec<_>>()
            .join("; ")
    }
}

pub(crate) struct Execution {
    m: StdMutex<ExecInner>,
    cv: StdCondvar,
}

type Guard<'a> = StdMutexGuard<'a, ExecInner>;

impl Execution {
    fn new(
        prefix: Vec<usize>,
        rng: Option<u64>,
        preemption_bound: usize,
        max_depth: usize,
    ) -> Self {
        Self {
            m: StdMutex::new(ExecInner {
                threads: vec![ThreadState::Runnable],
                current: Some(0),
                abort: false,
                failure: None,
                steps: Vec::new(),
                prefix,
                rng,
                preemption_bound,
                preemptions: 0,
                max_depth,
                locks: HashMap::new(),
                handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock_inner(&self) -> Guard<'_> {
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fail_and_abort(&self, mut g: Guard<'_>, message: String) -> ! {
        if g.failure.is_none() {
            g.failure = Some(message);
        }
        g.abort = true;
        self.cv.notify_all();
        drop(g);
        abort_panic()
    }

    /// A plain decision point: the running thread offers the scheduler a
    /// chance to switch.
    fn yield_at(&self, me: usize) {
        let g = self.lock_inner();
        if g.abort {
            drop(g);
            abort_panic();
        }
        let g = self.decide_and_wait(g, me);
        drop(g);
    }

    /// Make a decision while `me` is still runnable, then wait until the
    /// grant comes back to `me`. Returns with the state lock held.
    fn decide_and_wait<'a>(&'a self, mut g: Guard<'a>, me: usize) -> Guard<'a> {
        let chosen = g.decide(me).expect("the deciding thread is runnable");
        if g.steps.len() > g.max_depth {
            let depth = g.max_depth;
            self.fail_and_abort(
                g,
                format!("model: exceeded max schedule depth {depth} (possible livelock)"),
            );
        }
        if chosen != me {
            self.cv.notify_all();
            while g.current != Some(me) && !g.abort {
                g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
            if g.abort {
                drop(g);
                abort_panic();
            }
        }
        g
    }

    /// Block `me` on `block`, hand control away, and wait to be woken
    /// *and* granted. Detects whole-execution deadlock. Returns with the
    /// state lock held.
    fn block_current<'a>(&'a self, mut g: Guard<'a>, me: usize, block: Block) -> Guard<'a> {
        g.threads[me] = ThreadState::Blocked(block);
        g.current = None;
        if g.decide(me).is_none() {
            let blocked = g.describe_blocked();
            self.fail_and_abort(g, format!("model: deadlock — {blocked}"));
        }
        self.cv.notify_all();
        while g.current != Some(me) && !g.abort {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        if g.abort {
            drop(g);
            abort_panic();
        }
        g
    }

    /// Blocking exclusive/shared acquisition of the lock object at `addr`.
    fn lock_acquire(&self, me: usize, addr: usize, shared: bool, initial_yield: bool) {
        if initial_yield {
            self.yield_at(me);
        }
        let mut g = self.lock_inner();
        if g.abort {
            drop(g);
            abort_panic();
        }
        loop {
            let state = g.locks.entry(addr).or_default();
            let available = if shared {
                !state.writer
            } else {
                !state.writer && state.readers == 0
            };
            if available {
                if shared {
                    state.readers += 1;
                } else {
                    state.writer = true;
                }
                return;
            }
            let block = if shared {
                Block::Shared(addr)
            } else {
                Block::Excl(addr)
            };
            // Being granted again after the wake *is* the scheduling
            // decision, so the retry re-checks availability immediately.
            g = self.block_current(g, me, block);
        }
    }

    /// Non-blocking acquisition attempt.
    fn try_acquire(&self, me: usize, addr: usize, shared: bool) -> bool {
        self.yield_at(me);
        let mut g = self.lock_inner();
        if g.abort {
            drop(g);
            abort_panic();
        }
        let state = g.locks.entry(addr).or_default();
        let available = if shared {
            !state.writer
        } else {
            !state.writer && state.readers == 0
        };
        if available {
            if shared {
                state.readers += 1;
            } else {
                state.writer = true;
            }
        }
        available
    }

    /// Release and wake every waiter that could now acquire. Runs without
    /// a decision point (the releaser keeps running until its next one)
    /// and must stay panic-free: it executes inside guard drops, possibly
    /// during an abort unwind.
    fn release_lock(&self, addr: usize, shared: bool) {
        let mut g = self.lock_inner();
        if g.abort {
            return;
        }
        let inner = &mut *g;
        let state = inner.locks.entry(addr).or_default();
        if shared {
            state.readers = state.readers.saturating_sub(1);
        } else {
            state.writer = false;
        }
        let free_excl = !state.writer && state.readers == 0;
        let free_shared = !state.writer;
        for t in inner.threads.iter_mut() {
            match *t {
                ThreadState::Blocked(Block::Excl(a)) if a == addr && free_excl => {
                    *t = ThreadState::Runnable
                }
                ThreadState::Blocked(Block::Shared(a)) if a == addr && free_shared => {
                    *t = ThreadState::Runnable
                }
                _ => {}
            }
        }
        self.cv.notify_all();
    }

    /// Atomic release-and-wait: give up the mutex at `mutex_addr`, sleep
    /// on the condvar at `cv_addr` with no decision point in between,
    /// then re-acquire the mutex once notified and scheduled.
    fn cond_wait(&self, me: usize, cv_addr: usize, mutex_addr: usize) {
        let mut g = self.lock_inner();
        if g.abort {
            drop(g);
            abort_panic();
        }
        {
            let inner = &mut *g;
            let state = inner.locks.entry(mutex_addr).or_default();
            state.writer = false;
            let free = !state.writer && state.readers == 0;
            for t in inner.threads.iter_mut() {
                match *t {
                    ThreadState::Blocked(Block::Excl(a)) if a == mutex_addr && free => {
                        *t = ThreadState::Runnable
                    }
                    _ => {}
                }
            }
        }
        let g = self.block_current(g, me, Block::Cond(cv_addr));
        drop(g);
        self.lock_acquire(me, mutex_addr, false, false);
    }

    /// Wake one (lowest id) or all waiters of the condvar at `cv_addr`.
    /// A notify with no waiters is lost, exactly like the real primitive.
    fn cond_notify(&self, me: usize, cv_addr: usize, all: bool) {
        self.yield_at(me);
        let mut g = self.lock_inner();
        if g.abort {
            drop(g);
            abort_panic();
        }
        for t in g.threads.iter_mut() {
            if matches!(*t, ThreadState::Blocked(Block::Cond(a)) if a == cv_addr) {
                *t = ThreadState::Runnable;
                if !all {
                    break;
                }
            }
        }
        self.cv.notify_all();
    }

    fn register_thread(&self) -> usize {
        let mut g = self.lock_inner();
        g.threads.push(ThreadState::Runnable);
        g.threads.len() - 1
    }

    fn push_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.lock_inner().handles.push(handle);
    }

    fn take_handles(&self) -> Vec<std::thread::JoinHandle<()>> {
        std::mem::take(&mut self.lock_inner().handles)
    }

    /// Wait until this thread is granted its first run. Returns false if
    /// the execution aborted before that (the closure must be skipped).
    fn thread_begin(&self, id: usize) -> bool {
        let mut g = self.lock_inner();
        while g.current != Some(id) && !g.abort {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        !g.abort
    }

    /// Mark `id` finished, wake its joiners, and hand control onward.
    fn thread_end(&self, id: usize) {
        let mut g = self.lock_inner();
        g.threads[id] = ThreadState::Finished;
        for t in g.threads.iter_mut() {
            if matches!(*t, ThreadState::Blocked(Block::Join(j)) if j == id) {
                *t = ThreadState::Runnable;
            }
        }
        if !g.abort && g.current == Some(id) {
            g.current = None;
            if g.decide(id).is_none()
                && g.threads
                    .iter()
                    .any(|t| matches!(t, ThreadState::Blocked(_)))
            {
                let blocked = g.describe_blocked();
                if g.failure.is_none() {
                    g.failure = Some(format!("model: deadlock — {blocked}"));
                }
                g.abort = true;
            }
        }
        self.cv.notify_all();
    }

    /// Block until thread `target` finishes.
    fn join_thread(&self, me: usize, target: usize) {
        self.yield_at(me);
        let mut g = self.lock_inner();
        if g.abort {
            drop(g);
            abort_panic();
        }
        loop {
            if matches!(g.threads[target], ThreadState::Finished) {
                return;
            }
            g = self.block_current(g, me, Block::Join(target));
        }
    }

    /// Capture a panic from a model thread. [`ModelAbort`] unwinds are
    /// teardown, not failures.
    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        if payload.is::<ModelAbort>() {
            return;
        }
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_string());
        let mut g = self.lock_inner();
        if g.failure.is_none() {
            g.failure = Some(message);
        }
        g.abort = true;
        self.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Hooks called by the facade primitives
// ---------------------------------------------------------------------------

/// Model-acquire the mutex at `addr`. False when the current thread is
/// not part of a model execution (caller takes the native path).
pub(crate) fn mutex_lock(addr: usize) -> bool {
    match context() {
        Some((exec, me)) => {
            exec.lock_acquire(me, addr, false, true);
            true
        }
        None => false,
    }
}

/// Model try-lock: `None` when not modeled, otherwise whether the lock
/// was granted.
pub(crate) fn mutex_try_lock(addr: usize) -> Option<bool> {
    context().map(|(exec, me)| exec.try_acquire(me, addr, false))
}

pub(crate) fn mutex_release(addr: usize) {
    if let Some((exec, _)) = context() {
        exec.release_lock(addr, false);
    }
}

pub(crate) fn rw_read(addr: usize) -> bool {
    match context() {
        Some((exec, me)) => {
            exec.lock_acquire(me, addr, true, true);
            true
        }
        None => false,
    }
}

pub(crate) fn rw_write(addr: usize) -> bool {
    match context() {
        Some((exec, me)) => {
            exec.lock_acquire(me, addr, false, true);
            true
        }
        None => false,
    }
}

pub(crate) fn rw_try_read(addr: usize) -> Option<bool> {
    context().map(|(exec, me)| exec.try_acquire(me, addr, true))
}

pub(crate) fn rw_try_write(addr: usize) -> Option<bool> {
    context().map(|(exec, me)| exec.try_acquire(me, addr, false))
}

pub(crate) fn rw_release_read(addr: usize) {
    if let Some((exec, _)) = context() {
        exec.release_lock(addr, true);
    }
}

pub(crate) fn rw_release_write(addr: usize) {
    if let Some((exec, _)) = context() {
        exec.release_lock(addr, false);
    }
}

pub(crate) fn cond_wait(cv_addr: usize, mutex_addr: usize) {
    let (exec, me) = context().expect("modeled guard used outside its model execution");
    exec.cond_wait(me, cv_addr, mutex_addr);
}

/// True when the notify was handled by the model.
pub(crate) fn cond_notify(cv_addr: usize, all: bool) -> bool {
    match context() {
        Some((exec, me)) => {
            exec.cond_notify(me, cv_addr, all);
            true
        }
        None => false,
    }
}

/// Decision point before an atomic operation (no-op outside a model
/// execution).
pub(crate) fn yield_if_modeled() {
    if let Some((exec, me)) = context() {
        exec.yield_at(me);
    }
}

// ---------------------------------------------------------------------------
// Public model-thread API (used by fairmpi-check tests)
// ---------------------------------------------------------------------------

/// Explicit scheduling decision point.
pub fn yield_now() {
    yield_if_modeled();
}

/// Id of the current model thread, if any (the closure root is 0).
pub fn thread_id() -> Option<usize> {
    context().map(|(_, id)| id)
}

/// Spawn a thread. Inside a model execution this registers a new model
/// thread under the scheduler; outside, it falls back to
/// `std::thread::spawn`, so model tests can also run natively.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match context() {
        Some((exec, me)) => {
            let id = exec.register_thread();
            let result = Arc::new(StdMutex::new(None));
            let thread_result = Arc::clone(&result);
            let thread_exec = Arc::clone(&exec);
            let os = std::thread::Builder::new()
                .name(format!("model-{id}"))
                .spawn(move || {
                    set_context(Arc::clone(&thread_exec), id);
                    if thread_exec.thread_begin(id) {
                        match catch_unwind(AssertUnwindSafe(f)) {
                            Ok(value) => {
                                *thread_result.lock().unwrap_or_else(|e| e.into_inner()) =
                                    Some(value)
                            }
                            Err(payload) => thread_exec.record_panic(payload),
                        }
                    }
                    thread_exec.thread_end(id);
                })
                .expect("spawn model thread");
            exec.push_handle(os);
            // The spawn itself is a decision point: the child may run first.
            exec.yield_at(me);
            JoinHandle {
                inner: JoinInner::Model { exec, id, result },
            }
        }
        None => JoinHandle {
            inner: JoinInner::Native(std::thread::spawn(f)),
        },
    }
}

/// Handle returned by [`spawn`].
pub struct JoinHandle<T> {
    inner: JoinInner<T>,
}

enum JoinInner<T> {
    /// A thread under the model scheduler.
    Model {
        exec: Arc<Execution>,
        id: usize,
        result: Arc<StdMutex<Option<T>>>,
    },
    /// A plain OS thread (spawned outside a model execution).
    Native(std::thread::JoinHandle<T>),
}

impl<T> JoinHandle<T> {
    /// Wait for the thread and return its value. A panicking child makes
    /// the whole model execution fail, so this only returns on success.
    pub fn join(self) -> T {
        match self.inner {
            JoinInner::Model { exec, id, result } => {
                let (_, me) = context().expect("join of a model thread outside its execution");
                exec.join_thread(me, id);
                result
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("joined model thread left no result")
            }
            JoinInner::Native(handle) => handle.join().expect("native thread panicked"),
        }
    }
}

// ---------------------------------------------------------------------------
// Checker
// ---------------------------------------------------------------------------

/// Result of one execution, fed to the DFS.
struct ExecResult {
    steps: Vec<Step>,
    failure: Option<String>,
}

/// Bounded-preemption schedule explorer.
#[derive(Clone, Debug)]
pub struct Checker {
    preemption_bound: usize,
    max_schedules: usize,
    max_depth: usize,
}

impl Default for Checker {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_schedules: 100_000,
            max_depth: 5_000,
        }
    }
}

impl Checker {
    /// Default checker (preemption bound 2).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the preemption bound (number of involuntary context switches
    /// allowed per schedule).
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Cap the number of schedules explored; hitting the cap yields
    /// `Outcome::Pass { complete: false }`.
    pub fn max_schedules(mut self, max: usize) -> Self {
        self.max_schedules = max;
        self
    }

    /// Cap the decision-point depth of one execution (livelock guard).
    pub fn max_depth(mut self, max: usize) -> Self {
        self.max_depth = max;
        self
    }

    fn run_once(
        &self,
        prefix: Vec<usize>,
        rng: Option<u64>,
        f: &Arc<dyn Fn() + Send + Sync>,
    ) -> ExecResult {
        install_quiet_hook();
        let exec = Arc::new(Execution::new(
            prefix,
            rng,
            self.preemption_bound,
            self.max_depth,
        ));
        let closure = Arc::clone(f);
        let thread_exec = Arc::clone(&exec);
        let main = std::thread::Builder::new()
            .name("model-0".to_string())
            .spawn(move || {
                set_context(Arc::clone(&thread_exec), 0);
                if thread_exec.thread_begin(0) {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| closure())) {
                        thread_exec.record_panic(payload);
                    }
                }
                thread_exec.thread_end(0);
            })
            .expect("spawn model main thread");
        let _ = main.join();
        loop {
            let handles = exec.take_handles();
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
        let mut g = exec.lock_inner();
        ExecResult {
            steps: std::mem::take(&mut g.steps),
            failure: g.failure.take(),
        }
    }

    /// The deepest not-yet-explored sibling branch within the preemption
    /// bound, as a forced-choice prefix for the next execution.
    fn next_prefix(steps: &[Step], bound: usize) -> Option<Vec<usize>> {
        let mut preempts_before = Vec::with_capacity(steps.len() + 1);
        preempts_before.push(0usize);
        for step in steps {
            let last = *preempts_before.last().unwrap();
            preempts_before.push(last + usize::from(is_preemption(step, step.chosen)));
        }
        for i in (0..steps.len()).rev() {
            let step = &steps[i];
            let order = canonical_order(step);
            let pos = order
                .iter()
                .position(|&c| c == step.chosen)
                .expect("chosen thread came from the runnable set");
            for &alt in &order[pos + 1..] {
                if preempts_before[i] + usize::from(is_preemption(step, alt)) <= bound {
                    let mut prefix: Vec<usize> = steps[..i].iter().map(|s| s.chosen).collect();
                    prefix.push(alt);
                    return Some(prefix);
                }
            }
        }
        None
    }

    /// Exhaustively explore `f` under the preemption bound (depth-first,
    /// deterministic). Returns the first counterexample found.
    pub fn check(&self, f: impl Fn() + Send + Sync + 'static) -> Outcome {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut prefix = Vec::new();
        let mut explored = 0usize;
        loop {
            let result = self.run_once(prefix, None, &f);
            explored += 1;
            if let Some(message) = result.failure {
                return Outcome::Fail(Counterexample {
                    schedule: result.steps.iter().map(|s| s.chosen).collect(),
                    message,
                    schedules_explored: explored,
                });
            }
            match Self::next_prefix(&result.steps, self.preemption_bound) {
                None => {
                    return Outcome::Pass {
                        schedules: explored,
                        complete: true,
                    }
                }
                Some(next) => {
                    if explored >= self.max_schedules {
                        return Outcome::Pass {
                            schedules: explored,
                            complete: false,
                        };
                    }
                    prefix = next;
                }
            }
        }
    }

    /// Seeded random-walk exploration: `iterations` independent random
    /// schedules (still under the preemption bound). Reproducible for a
    /// given seed; useful for state spaces too large to exhaust.
    pub fn check_random(
        &self,
        seed: u64,
        iterations: usize,
        f: impl Fn() + Send + Sync + 'static,
    ) -> Outcome {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        for i in 0..iterations {
            let stream = (seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
            let result = self.run_once(Vec::new(), Some(stream), &f);
            if let Some(message) = result.failure {
                return Outcome::Fail(Counterexample {
                    schedule: result.steps.iter().map(|s| s.chosen).collect(),
                    message,
                    schedules_explored: i + 1,
                });
            }
        }
        Outcome::Pass {
            schedules: iterations,
            complete: false,
        }
    }

    /// Re-execute `f` under an explicit schedule (e.g. a counterexample's)
    /// to reproduce its interleaving.
    pub fn replay(&self, schedule: &[usize], f: impl Fn() + Send + Sync + 'static) -> Outcome {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let result = self.run_once(schedule.to_vec(), None, &f);
        match result.failure {
            Some(message) => Outcome::Fail(Counterexample {
                schedule: result.steps.iter().map(|s| s.chosen).collect(),
                message,
                schedules_explored: 1,
            }),
            None => Outcome::Pass {
                schedules: 1,
                complete: false,
            },
        }
    }
}

/// Verdict of a [`Checker`] run.
#[derive(Debug)]
pub enum Outcome {
    /// Every explored schedule upheld the assertions. `complete` is true
    /// when the bounded space was exhausted (not cut off by
    /// `max_schedules`).
    Pass { schedules: usize, complete: bool },
    /// A schedule violated an assertion, deadlocked, or overran the depth
    /// cap.
    Fail(Counterexample),
}

impl Outcome {
    /// True on [`Outcome::Pass`].
    pub fn is_pass(&self) -> bool {
        matches!(self, Outcome::Pass { .. })
    }

    /// True on [`Outcome::Fail`].
    pub fn is_fail(&self) -> bool {
        matches!(self, Outcome::Fail(_))
    }

    /// The counterexample, when failing.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Outcome::Fail(ce) => Some(ce),
            Outcome::Pass { .. } => None,
        }
    }

    /// Panic with the printed counterexample unless this is a pass.
    pub fn assert_pass(&self, what: &str) {
        if let Outcome::Fail(ce) = self {
            panic!("model check '{what}' failed\n{ce}");
        }
    }
}

/// A failing schedule: the exact sequence of thread ids granted at each
/// decision point, replayable via [`Checker::replay`].
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Thread id chosen at each decision point.
    pub schedule: Vec<usize>,
    /// The assertion/deadlock message.
    pub message: String,
    /// Number of schedules explored up to (and including) this one.
    pub schedules_explored: usize,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "counterexample after {} schedule(s): {}",
            self.schedules_explored, self.message
        )?;
        let ids: Vec<String> = self.schedule.iter().map(|t| t.to_string()).collect();
        writeln!(f, "schedule: [{}]", ids.join(" "))?;
        write!(f, "replay with Checker::replay(&schedule, ...)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::{AtomicU64, Ordering};
    use crate::Mutex;

    #[test]
    fn single_thread_executes_once_and_passes() {
        let outcome = Checker::new().check(|| {
            let m = Mutex::new(0u32);
            *m.lock() += 1;
            assert_eq!(*m.lock(), 1);
        });
        assert!(outcome.is_pass());
    }

    #[test]
    fn finds_lost_update_between_two_threads() {
        // Classic non-atomic read-modify-write: load then store. The
        // checker must find the interleaving where both threads read 0.
        let outcome = Checker::new().check(|| {
            let counter = Arc::new(AtomicU64::new(0));
            let c1 = Arc::clone(&counter);
            let t = spawn(move || {
                let v = c1.load(Ordering::SeqCst);
                c1.store(v + 1, Ordering::SeqCst);
            });
            let v = counter.load(Ordering::SeqCst);
            counter.store(v + 1, Ordering::SeqCst);
            t.join();
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        });
        let ce = outcome.counterexample().expect("lost update must be found");
        assert!(ce.message.contains("lost update"));
        // The counterexample must replay to the same failure.
        let replayed = Checker::new().replay(&ce.schedule, || {
            let counter = Arc::new(AtomicU64::new(0));
            let c1 = Arc::clone(&counter);
            let t = spawn(move || {
                let v = c1.load(Ordering::SeqCst);
                c1.store(v + 1, Ordering::SeqCst);
            });
            let v = counter.load(Ordering::SeqCst);
            counter.store(v + 1, Ordering::SeqCst);
            t.join();
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        });
        assert!(replayed.is_fail(), "counterexample schedule must reproduce");
    }

    #[test]
    fn mutex_protected_increment_passes_exhaustively() {
        let outcome = Checker::new().check(|| {
            let counter = Arc::new(Mutex::new(0u64));
            let c1 = Arc::clone(&counter);
            let t = spawn(move || {
                *c1.lock() += 1;
            });
            *counter.lock() += 1;
            t.join();
            assert_eq!(*counter.lock(), 2);
        });
        match outcome {
            Outcome::Pass { complete, .. } => assert!(complete, "space should be exhausted"),
            Outcome::Fail(ce) => panic!("unexpected counterexample: {ce}"),
        }
    }

    #[test]
    fn deadlock_is_detected() {
        let outcome = Checker::new().check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
            let t = spawn(move || {
                let ga = a1.lock();
                let gb = b1.lock();
                drop((ga, gb));
            });
            let gb = b.lock();
            let ga = a.lock();
            drop((ga, gb));
            t.join();
        });
        let ce = outcome
            .counterexample()
            .expect("AB-BA deadlock must be found");
        assert!(ce.message.contains("deadlock"), "message: {}", ce.message);
    }

    #[test]
    fn condvar_handoff_passes() {
        let outcome = Checker::new().check(|| {
            let slot = Arc::new((Mutex::new(None::<u32>), crate::Condvar::new()));
            let s1 = Arc::clone(&slot);
            let t = spawn(move || {
                let (m, cv) = &*s1;
                let mut g = m.lock();
                *g = Some(7);
                cv.notify_one();
                drop(g);
            });
            let (m, cv) = &*slot;
            let mut g = m.lock();
            while g.is_none() {
                g = cv.wait(g);
            }
            assert_eq!(*g, Some(7));
            drop(g);
            t.join();
        });
        outcome.assert_pass("condvar handoff");
    }
}
