//! Atomics with model-checking hooks.
//!
//! Each type is a `repr(transparent)` wrapper over its `std` counterpart.
//! Without the `model` feature every method is a direct inlined call to
//! the `std` atomic — zero overhead. With `model` enabled, a thread that
//! belongs to a model execution yields to the scheduler immediately
//! *before* performing the operation, which makes every atomic access a
//! decision point of the interleaving exploration. The operation itself
//! is then performed on the real atomic: because model threads are
//! serialized, the sequence of operations *is* the schedule, giving the
//! checker sequentially-consistent semantics regardless of the `Ordering`
//! argument (weak-memory effects are out of scope — see DESIGN.md §10).

pub use std::sync::atomic::Ordering;

#[inline]
fn sync_op() {
    #[cfg(feature = "model")]
    crate::model::yield_if_modeled();
}

macro_rules! atomic_int {
    ($name:ident, $std:ty, $int:ty) => {
        /// Model-aware drop-in for the `std` atomic of the same name.
        #[derive(Default)]
        #[repr(transparent)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// New atomic holding `value`.
            pub const fn new(value: $int) -> Self {
                Self {
                    inner: <$std>::new(value),
                }
            }

            /// Consume and return the value.
            pub fn into_inner(self) -> $int {
                self.inner.into_inner()
            }

            /// Direct access through an exclusive borrow (no concurrency,
            /// so no model decision point).
            pub fn get_mut(&mut self) -> &mut $int {
                self.inner.get_mut()
            }

            /// Atomic load.
            #[inline]
            pub fn load(&self, order: Ordering) -> $int {
                sync_op();
                self.inner.load(order)
            }

            /// Atomic store.
            #[inline]
            pub fn store(&self, value: $int, order: Ordering) {
                sync_op();
                self.inner.store(value, order)
            }

            /// Atomic swap.
            #[inline]
            pub fn swap(&self, value: $int, order: Ordering) -> $int {
                sync_op();
                self.inner.swap(value, order)
            }

            /// Atomic add, returning the previous value.
            #[inline]
            pub fn fetch_add(&self, value: $int, order: Ordering) -> $int {
                sync_op();
                self.inner.fetch_add(value, order)
            }

            /// Atomic subtract, returning the previous value.
            #[inline]
            pub fn fetch_sub(&self, value: $int, order: Ordering) -> $int {
                sync_op();
                self.inner.fetch_sub(value, order)
            }

            /// Atomic bitwise or, returning the previous value.
            #[inline]
            pub fn fetch_or(&self, value: $int, order: Ordering) -> $int {
                sync_op();
                self.inner.fetch_or(value, order)
            }

            /// Atomic bitwise and, returning the previous value.
            #[inline]
            pub fn fetch_and(&self, value: $int, order: Ordering) -> $int {
                sync_op();
                self.inner.fetch_and(value, order)
            }

            /// Atomic maximum, returning the previous value.
            #[inline]
            pub fn fetch_max(&self, value: $int, order: Ordering) -> $int {
                sync_op();
                self.inner.fetch_max(value, order)
            }

            /// Atomic compare-exchange.
            #[inline]
            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                sync_op();
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Atomic compare-exchange allowed to fail spuriously.
            ///
            /// Under the model backend the operation is performed on the
            /// real atomic by a serialized thread, so it never *actually*
            /// fails spuriously — the checker explores CAS races through
            /// scheduling, not through spurious failure injection.
            #[inline]
            pub fn compare_exchange_weak(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                sync_op();
                self.inner
                    .compare_exchange_weak(current, new, success, failure)
            }

            /// Atomic read-modify-write via a closure.
            #[inline]
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                f: F,
            ) -> Result<$int, $int>
            where
                F: FnMut($int) -> Option<$int>,
            {
                sync_op();
                self.inner.fetch_update(set_order, fetch_order, f)
            }
        }

        impl From<$int> for $name {
            fn from(value: $int) -> Self {
                Self::new(value)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }
    };
}

atomic_int!(AtomicU8, std::sync::atomic::AtomicU8, u8);
atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Model-aware drop-in for `std::sync::atomic::AtomicBool`.
#[derive(Default)]
#[repr(transparent)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// New atomic flag holding `value`.
    pub const fn new(value: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    /// Consume and return the value.
    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self, order: Ordering) -> bool {
        sync_op();
        self.inner.load(order)
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, value: bool, order: Ordering) {
        sync_op();
        self.inner.store(value, order)
    }

    /// Atomic swap.
    #[inline]
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        sync_op();
        self.inner.swap(value, order)
    }

    /// Atomic compare-exchange.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        sync_op();
        self.inner.compare_exchange(current, new, success, failure)
    }
}

impl From<bool> for AtomicBool {
    fn from(value: bool) -> Self {
        Self::new(value)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}
