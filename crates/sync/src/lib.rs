//! # fairmpi-sync — the workspace's synchronization facade
//!
//! Every lock, atomic, and cache-line pad in the runtime goes through this
//! crate instead of reaching for `std`/`parking_lot` directly. The paper's
//! entire contribution lives in synchronization design — per-instance
//! try-locks (Algorithm 2), per-communicator matching locks, the offload
//! command ring, the reliability dedup window — so the primitives they are
//! built on need to be swappable as a unit:
//!
//! * **native** (default): thin wrappers over `std::sync` with
//!   parking-lot-style ergonomics (no poisoning, `try_lock → Option`).
//!   With no features enabled every method compiles down to the exact
//!   `std` call — zero overhead.
//! * **traced** (`--features traced`): locks constructed with
//!   [`Mutex::named`]/[`RwLock::named`] report acquire latency, hold time,
//!   and try-lock failures to `fairmpi-trace` whenever a trace session is
//!   armed. This replaces the hand-rolled contention hooks that used to
//!   live in `cri`.
//! * **model** (`--features model`): when the current thread belongs to a
//!   [`model`] execution, every operation becomes a scheduling decision
//!   point of a loom-style bounded-preemption DFS executor, so
//!   `fairmpi-check` can exhaustively explore interleavings and print a
//!   reproducible counterexample schedule when an assertion fails.
//!   Threads *outside* an execution (all production code) take the native
//!   path unchanged, which keeps the feature additive and safe under
//!   cargo feature unification.
//!
//! The three backends expose one API, so porting a crate is an import swap.

mod cache_padded;
mod primitives;

pub mod atomic;
#[cfg(feature = "model")]
pub mod model;

pub use cache_padded::CachePadded;
pub use primitives::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, TryLock,
};
