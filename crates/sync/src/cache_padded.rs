//! Cache-line padding, previously pulled from `crossbeam::utils`.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to (a conservative multiple of) the cache line
/// size so neighbouring hot counters never false-share. 128 bytes covers
/// the spatial prefetcher pairing on x86_64 and the 128-byte lines on
/// recent aarch64 parts.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value`.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}
