//! Locks and condition variables with native, traced, and model backends.
//!
//! The native path is `std::sync` with parking-lot ergonomics: poisoning
//! is swallowed (a panicking holder does not wedge the runtime) and
//! `try_lock` returns an `Option`. The traced path adds latency/hold
//! bookkeeping for locks that were given a name. The model path routes
//! acquire/release through the deterministic scheduler in [`crate::model`]
//! whenever the current thread belongs to a model execution.

use std::sync::PoisonError;

#[cfg(feature = "traced")]
use fairmpi_trace as trace;

fn unpoison<G>(result: Result<G, PoisonError<G>>) -> G {
    result.unwrap_or_else(|e| e.into_inner())
}

/// Per-lock name storage: a user-supplied label plus the per-session
/// interned trace id. Compiled to a ZST when tracing is off.
#[cfg(feature = "traced")]
#[derive(Debug, Default)]
struct TraceName {
    name: Option<String>,
    cache: trace::NameCache,
}

#[cfg(not(feature = "traced"))]
#[derive(Debug, Default)]
struct TraceName;

impl TraceName {
    fn anon() -> Self {
        Self::default()
    }

    #[cfg(feature = "traced")]
    fn named(make: impl FnOnce() -> String) -> Self {
        Self {
            name: Some(make()),
            cache: trace::NameCache::new(),
        }
    }

    #[cfg(not(feature = "traced"))]
    fn named(_make: impl FnOnce() -> String) -> Self {
        Self
    }

    #[cfg(feature = "traced")]
    fn id(&self) -> Option<trace::NameId> {
        let name = self.name.as_ref()?;
        self.cache.get(|| name.clone())
    }
}

/// `(name, acquired_at)` carried by a guard so its drop can report hold
/// time. `()` when tracing is compiled out.
#[cfg(feature = "traced")]
type TraceAcquired = Option<(trace::NameId, u64)>;
#[cfg(not(feature = "traced"))]
type TraceAcquired = ();

#[cfg(feature = "traced")]
fn no_acquired() -> TraceAcquired {
    None
}
#[cfg(not(feature = "traced"))]
fn no_acquired() -> TraceAcquired {}

#[cfg(feature = "traced")]
fn release_trace(acquired: &mut TraceAcquired) {
    if let Some((name, at)) = acquired.take() {
        trace::lock_released(name, trace::now_ns().saturating_sub(at));
    }
}
#[cfg(not(feature = "traced"))]
fn release_trace(_acquired: &mut TraceAcquired) {}

/// Non-blocking acquisition, implemented by [`Mutex`] (its guard) and
/// [`RwLock`] (its write guard). Algorithm 2's "if a try-lock fails, some
/// other thread is already progressing that path" idiom is written once
/// against this trait.
pub trait TryLock {
    /// Guard proving the acquisition.
    type Guard<'a>
    where
        Self: 'a;

    /// Attempt the acquisition without blocking.
    fn try_lock(&self) -> Option<Self::Guard<'_>>;
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Mutual exclusion with facade semantics (no poisoning, optional trace
/// name, model-checkable).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg_attr(not(feature = "traced"), allow(dead_code))]
    name: TraceName,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// New unnamed mutex. Unnamed locks never appear in traces.
    pub fn new(value: T) -> Self {
        Self {
            name: TraceName::anon(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// New named mutex. Under the `traced` backend the name labels this
    /// lock's acquire/contention events; the closure is only evaluated
    /// when tracing is compiled in.
    pub fn named(value: T, name: impl FnOnce() -> String) -> Self {
        Self {
            name: TraceName::named(name),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    #[cfg_attr(not(feature = "model"), allow(dead_code))]
    fn addr(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Acquire, blocking on contention.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "model")]
        if crate::model::mutex_lock(self.addr()) {
            return MutexGuard {
                lock: self,
                inner: Some(unpoison(self.inner.lock())),
                acquired: no_acquired(),
                modeled: true,
            };
        }
        #[cfg(feature = "traced")]
        if let Some(name) = self.name.id() {
            let from = trace::now_ns();
            let inner = unpoison(self.inner.lock());
            let at = trace::now_ns();
            trace::lock_acquired(name, at.saturating_sub(from));
            return MutexGuard {
                lock: self,
                inner: Some(inner),
                acquired: Some((name, at)),
                modeled: false,
            };
        }
        MutexGuard {
            lock: self,
            inner: Some(unpoison(self.inner.lock())),
            acquired: no_acquired(),
            modeled: false,
        }
    }

    /// Attempt to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        #[cfg(feature = "model")]
        if let Some(granted) = crate::model::mutex_try_lock(self.addr()) {
            if !granted {
                return None;
            }
            return Some(MutexGuard {
                lock: self,
                inner: Some(unpoison(self.inner.lock())),
                acquired: no_acquired(),
                modeled: true,
            });
        }
        match self.inner.try_lock() {
            Ok(inner) => {
                #[cfg(feature = "traced")]
                if let Some(name) = self.name.id() {
                    trace::lock_acquired(name, 0);
                    return Some(MutexGuard {
                        lock: self,
                        inner: Some(inner),
                        acquired: Some((name, trace::now_ns())),
                        modeled: false,
                    });
                }
                Some(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    acquired: no_acquired(),
                    modeled: false,
                })
            }
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                lock: self,
                inner: Some(poisoned.into_inner()),
                acquired: no_acquired(),
                modeled: false,
            }),
            Err(std::sync::TryLockError::WouldBlock) => {
                #[cfg(feature = "traced")]
                if let Some(name) = self.name.id() {
                    trace::try_lock_fail(name);
                }
                None
            }
        }
    }

    /// Direct access through an exclusive borrow.
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized> TryLock for Mutex<T> {
    type Guard<'a>
        = MutexGuard<'a, T>
    where
        T: 'a;

    fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        Mutex::try_lock(self)
    }
}

/// Guard for [`Mutex`]; releases (and reports, and notifies the model
/// scheduler) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    acquired: TraceAcquired,
    #[cfg_attr(not(feature = "model"), allow(dead_code))]
    modeled: bool,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard still holds the lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        release_trace(&mut self.acquired);
        let _ = self.inner.take();
        #[cfg(feature = "model")]
        if self.modeled {
            crate::model::mutex_release(self.lock.addr());
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Reader-writer lock with facade semantics.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg_attr(not(feature = "traced"), allow(dead_code))]
    name: TraceName,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// New unnamed rwlock.
    pub fn new(value: T) -> Self {
        Self {
            name: TraceName::anon(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// New named rwlock (see [`Mutex::named`]).
    pub fn named(value: T, name: impl FnOnce() -> String) -> Self {
        Self {
            name: TraceName::named(name),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    #[cfg_attr(not(feature = "model"), allow(dead_code))]
    fn addr(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Acquire shared access, blocking on a writer.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "model")]
        if crate::model::rw_read(self.addr()) {
            return RwLockReadGuard {
                lock: self,
                inner: Some(unpoison(self.inner.read())),
                acquired: no_acquired(),
                modeled: true,
            };
        }
        #[cfg(feature = "traced")]
        if let Some(name) = self.name.id() {
            let from = trace::now_ns();
            let inner = unpoison(self.inner.read());
            let at = trace::now_ns();
            trace::lock_acquired(name, at.saturating_sub(from));
            return RwLockReadGuard {
                lock: self,
                inner: Some(inner),
                acquired: Some((name, at)),
                modeled: false,
            };
        }
        RwLockReadGuard {
            lock: self,
            inner: Some(unpoison(self.inner.read())),
            acquired: no_acquired(),
            modeled: false,
        }
    }

    /// Acquire exclusive access, blocking on any holder.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "model")]
        if crate::model::rw_write(self.addr()) {
            return RwLockWriteGuard {
                lock: self,
                inner: Some(unpoison(self.inner.write())),
                acquired: no_acquired(),
                modeled: true,
            };
        }
        #[cfg(feature = "traced")]
        if let Some(name) = self.name.id() {
            let from = trace::now_ns();
            let inner = unpoison(self.inner.write());
            let at = trace::now_ns();
            trace::lock_acquired(name, at.saturating_sub(from));
            return RwLockWriteGuard {
                lock: self,
                inner: Some(inner),
                acquired: Some((name, at)),
                modeled: false,
            };
        }
        RwLockWriteGuard {
            lock: self,
            inner: Some(unpoison(self.inner.write())),
            acquired: no_acquired(),
            modeled: false,
        }
    }

    /// Attempt shared access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        #[cfg(feature = "model")]
        if let Some(granted) = crate::model::rw_try_read(self.addr()) {
            if !granted {
                return None;
            }
            return Some(RwLockReadGuard {
                lock: self,
                inner: Some(unpoison(self.inner.read())),
                acquired: no_acquired(),
                modeled: true,
            });
        }
        match self.inner.try_read() {
            Ok(inner) => Some(RwLockReadGuard {
                lock: self,
                inner: Some(inner),
                acquired: no_acquired(),
                modeled: false,
            }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(RwLockReadGuard {
                lock: self,
                inner: Some(poisoned.into_inner()),
                acquired: no_acquired(),
                modeled: false,
            }),
            Err(std::sync::TryLockError::WouldBlock) => {
                #[cfg(feature = "traced")]
                if let Some(name) = self.name.id() {
                    trace::try_lock_fail(name);
                }
                None
            }
        }
    }

    /// Attempt exclusive access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        #[cfg(feature = "model")]
        if let Some(granted) = crate::model::rw_try_write(self.addr()) {
            if !granted {
                return None;
            }
            return Some(RwLockWriteGuard {
                lock: self,
                inner: Some(unpoison(self.inner.write())),
                acquired: no_acquired(),
                modeled: true,
            });
        }
        match self.inner.try_write() {
            Ok(inner) => Some(RwLockWriteGuard {
                lock: self,
                inner: Some(inner),
                acquired: no_acquired(),
                modeled: false,
            }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(RwLockWriteGuard {
                lock: self,
                inner: Some(poisoned.into_inner()),
                acquired: no_acquired(),
                modeled: false,
            }),
            Err(std::sync::TryLockError::WouldBlock) => {
                #[cfg(feature = "traced")]
                if let Some(name) = self.name.id() {
                    trace::try_lock_fail(name);
                }
                None
            }
        }
    }

    /// Direct access through an exclusive borrow.
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

impl<T: ?Sized> TryLock for RwLock<T> {
    type Guard<'a>
        = RwLockWriteGuard<'a, T>
    where
        T: 'a;

    fn try_lock(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.try_write()
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg_attr(not(feature = "model"), allow(dead_code))]
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    acquired: TraceAcquired,
    #[cfg_attr(not(feature = "model"), allow(dead_code))]
    modeled: bool,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still holds the lock")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        release_trace(&mut self.acquired);
        let _ = self.inner.take();
        #[cfg(feature = "model")]
        if self.modeled {
            crate::model::rw_release_read(self.lock.addr());
        }
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg_attr(not(feature = "model"), allow(dead_code))]
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    acquired: TraceAcquired,
    #[cfg_attr(not(feature = "model"), allow(dead_code))]
    modeled: bool,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard still holds the lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard still holds the lock")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        release_trace(&mut self.acquired);
        let _ = self.inner.take();
        #[cfg(feature = "model")]
        if self.modeled {
            crate::model::rw_release_write(self.lock.addr());
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Condition variable paired with [`Mutex`].
///
/// The model backend implements atomic release-and-wait with no spurious
/// wakeups, so a lost-notify bug manifests as a deterministic deadlock
/// rather than a flaky hang.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    #[cfg(feature = "model")]
    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    /// Atomically release the guard and wait for a notification, then
    /// re-acquire before returning.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let lock = guard.lock;
        #[cfg(feature = "model")]
        if guard.modeled {
            let _ = guard.inner.take();
            guard.modeled = false; // the model release is folded into cond_wait
            drop(guard);
            crate::model::cond_wait(self.addr(), lock.addr());
            return MutexGuard {
                lock,
                inner: Some(unpoison(lock.inner.lock())),
                acquired: no_acquired(),
                modeled: true,
            };
        }
        let std_guard = guard.inner.take().expect("guard still holds the lock");
        release_trace(&mut guard.acquired);
        drop(guard);
        let reacquired = unpoison(self.inner.wait(std_guard));
        #[cfg(feature = "traced")]
        if let Some(name) = lock.name.id() {
            trace::lock_acquired(name, 0);
            return MutexGuard {
                lock,
                inner: Some(reacquired),
                acquired: Some((name, trace::now_ns())),
                modeled: false,
            };
        }
        MutexGuard {
            lock,
            inner: Some(reacquired),
            acquired: no_acquired(),
            modeled: false,
        }
    }

    /// Wait until `condition` returns false (mirrors
    /// `std::sync::Condvar::wait_while`).
    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> MutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut guard) {
            guard = self.wait(guard);
        }
        guard
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        #[cfg(feature = "model")]
        if crate::model::cond_notify(self.addr(), false) {
            return;
        }
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        #[cfg(feature = "model")]
        if crate::model::cond_notify(self.addr(), true) {
            return;
        }
        self.inner.notify_all();
    }
}
