//! `fairmpi-offload` — the software-offload design point.
//!
//! The paper's CRIs* design still trails process mode in Fig. 5 because
//! every application thread pays for shared runtime state on each call.
//! The established alternative (Yan/Snir/Guo's async-communication study;
//! Zhou et al.'s MPIxThreads) is to *offload*: application threads enqueue
//! communication descriptors to dedicated progress threads and never touch
//! the NIC or the matching locks at all. This crate is that fourth design
//! axis:
//!
//! * [`TicketRing`] — a bounded lock-free MPSC **command queue**
//!   (cache-padded slots, seqlock-style ticket ring on `core::sync::atomic`
//!   only) with a configurable [`Backpressure`] policy (spin, yield,
//!   fail-fast `TryAgain`);
//! * [`Command`] — send/recv/put/flush descriptors carrying everything a
//!   worker needs, plus the per-thread [`CompletionQueue`] that
//!   `wait`/`test` poll without locks;
//! * [`OffloadEngine`] — worker threads that batch-drain commands, execute
//!   them through an [`OffloadBackend`] (the real CRI/matching/fabric
//!   engine in `fairmpi`; each worker ends up owning a dedicated CRI via
//!   the pool's thread-local assignment, so workers never contend), and
//!   notify completions.
//!
//! The four SPC probes — `offload_commands`, `offload_batches`,
//! `offload_queue_depth` (watermark), `offload_backpressure_stalls` — feed
//! the `fairmpi-mpit` pvar registry like every other counter.
//!
//! The virtual-time twin of this machinery (offload-worker actors and the
//! command-queue cost model) lives in `fairmpi-vsim`; the `fig_offload`
//! bench sweeps both against the paper's Fig. 5 design points.

mod command;
mod engine;
mod queue;

pub use command::{Command, CompletionQueue};
pub use engine::{OffloadBackend, OffloadConfig, OffloadEngine, SubmitError};
pub use queue::{Backpressure, QueueFull, TicketRing};
