//! Offload worker threads: batch-drain the command queue, execute against
//! the real engine, notify completions.

use std::sync::Arc;
use std::thread::JoinHandle;

use fairmpi_sync::atomic::{AtomicBool, Ordering};
use fairmpi_sync::Mutex;
use std::time::Duration;

use fairmpi_spc::{Counter, SpcSet, Watermark};

use crate::command::{Command, CompletionQueue};
use crate::queue::{Backpressure, QueueFull, TicketRing};

/// How the offload crate reaches the real CRI/matching/fabric machinery.
///
/// The core runtime implements this for its per-rank state; the crate's own
/// tests use a mock. Workers are plain threads, so implementations must be
/// `Send + Sync`; per-worker isolation (each worker owning a dedicated CRI)
/// comes from the backend's thread-local instance assignment, exactly as it
/// does for application threads in the direct path.
pub trait OffloadBackend: Send + Sync + 'static {
    /// Execute one drained command (inject the packet, post the receive,
    /// apply the put, or register the flush). Completion is usually
    /// asynchronous: the harness polls [`OffloadBackend::is_complete`]
    /// after progress passes.
    fn execute(&self, cmd: Command);

    /// One progress pass on this worker's resources; returns the number of
    /// completions it produced (0 = idle).
    fn progress(&self) -> usize;

    /// Whether the request behind `token` has completed. A token the
    /// backend no longer knows (already reaped by `wait`) counts as
    /// complete.
    fn is_complete(&self, token: u64) -> bool;
}

/// Tuning knobs of one offload engine (surfaced as `FAIRMPI_OFFLOAD_*`
/// control variables by the core crate).
#[derive(Debug, Clone, Copy)]
pub struct OffloadConfig {
    /// Number of dedicated communication (worker) threads.
    pub workers: usize,
    /// Command-queue capacity (rounded up to a power of two).
    pub queue_capacity: usize,
    /// Maximum commands a worker drains per batch.
    pub batch_limit: usize,
    /// Producer behavior when the command queue is full.
    pub backpressure: Backpressure,
}

impl Default for OffloadConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            queue_capacity: 1024,
            batch_limit: 32,
            backpressure: Backpressure::Yield,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug)]
pub enum SubmitError {
    /// The queue was full under [`Backpressure::TryAgain`]; the command is
    /// handed back for the caller to retry or reroute.
    WouldBlock(Command),
    /// The engine has begun shutting down; the caller should take the
    /// direct path.
    Shutdown(Command),
}

/// A command travelling with its producer's completion queue.
struct Sealed {
    cmd: Command,
    reply: Option<Arc<CompletionQueue>>,
}

/// The engine: one command queue, N worker threads.
///
/// Shutdown is a drain, not an abort: workers first empty the command
/// queue (every accepted command is executed), then run a bounded number
/// of grace progress passes so in-flight completions land, then exit.
pub struct OffloadEngine {
    queue: Arc<TicketRing<Sealed>>,
    shutdown: Arc<AtomicBool>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    config: OffloadConfig,
    spc: Arc<SpcSet>,
}

/// Idle spins before a worker starts yielding.
const IDLE_SPINS: u32 = 64;
/// Idle spins before a worker starts sleeping between polls.
const IDLE_SLEEPS: u32 = 4096;
/// Sleep length once a worker has gone quiet (the wake-up latency a
/// sleeping worker adds to the next command).
const IDLE_NAP: Duration = Duration::from_micros(20);
/// Empty progress passes a worker grants in-flight operations during
/// shutdown before abandoning them (bounds drain on never-matching recvs).
const DRAIN_GRACE: u32 = 10_000;

impl OffloadEngine {
    /// Spawn `config.workers` worker threads over `backend`.
    pub fn start<B: OffloadBackend>(
        config: OffloadConfig,
        backend: Arc<B>,
        spc: Arc<SpcSet>,
    ) -> Arc<Self> {
        let queue = Arc::new(TicketRing::with_capacity(config.queue_capacity.max(2)));
        let shutdown = Arc::new(AtomicBool::new(false));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let shutdown = Arc::clone(&shutdown);
                let backend = Arc::clone(&backend);
                let spc = Arc::clone(&spc);
                let batch_limit = config.batch_limit.max(1);
                std::thread::Builder::new()
                    .name(format!("fairmpi-offload-{i}"))
                    .spawn(move || worker_loop(&queue, &*backend, &spc, &shutdown, batch_limit))
                    .expect("spawn offload worker")
            })
            .collect();
        Arc::new(Self {
            queue,
            shutdown,
            workers: Mutex::new(workers),
            config,
            spc,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &OffloadConfig {
        &self.config
    }

    /// Whether shutdown has begun (submissions are refused).
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Enqueue one command. `reply` (the producer's completion queue)
    /// receives the token once the command completes.
    pub fn submit(
        &self,
        cmd: Command,
        reply: Option<&Arc<CompletionQueue>>,
    ) -> Result<(), SubmitError> {
        if self.is_shutdown() {
            return Err(SubmitError::Shutdown(cmd));
        }
        let sealed = Sealed {
            cmd,
            reply: reply.map(Arc::clone),
        };
        match self.queue.push(sealed, self.config.backpressure) {
            Ok(stalled) => {
                if stalled {
                    self.spc.inc(Counter::OffloadBackpressureStalls);
                }
            }
            Err(QueueFull(sealed)) => {
                self.spc.inc(Counter::OffloadBackpressureStalls);
                return Err(SubmitError::WouldBlock(sealed.cmd));
            }
        }
        self.spc.inc(Counter::OffloadCommands);
        self.spc
            .record_level(Watermark::OffloadQueueDepth, self.queue.len() as u64);
        Ok(())
    }

    /// Signal shutdown without waiting (submissions start failing; workers
    /// begin their drain).
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Wait for every worker to finish its drain and exit.
    pub fn join(&self) {
        let handles: Vec<_> = self.workers.lock().drain(..).collect();
        for h in handles {
            h.join().expect("offload worker panicked");
        }
    }

    /// Signal shutdown and wait for the drain to finish.
    pub fn shutdown(&self) {
        self.begin_shutdown();
        self.join();
    }
}

impl Drop for OffloadEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    queue: &TicketRing<Sealed>,
    backend: &dyn OffloadBackend,
    spc: &SpcSet,
    shutdown: &AtomicBool,
    batch_limit: usize,
) {
    let mut batch: Vec<Sealed> = Vec::with_capacity(batch_limit);
    let mut inflight: Vec<(u64, Option<Arc<CompletionQueue>>)> = Vec::new();
    let mut idle = 0u32;
    loop {
        batch.clear();
        let drained = queue.pop_batch(&mut batch, batch_limit);
        if drained > 0 {
            spc.inc(Counter::OffloadBatches);
            idle = 0;
        }
        for sealed in batch.drain(..) {
            let token = sealed.cmd.token();
            backend.execute(sealed.cmd);
            inflight.push((token, sealed.reply));
        }
        let progressed = backend.progress();
        if progressed > 0 {
            idle = 0;
        }
        reap(backend, &mut inflight);
        if drained == 0 && progressed == 0 {
            if shutdown.load(Ordering::Acquire) && queue.is_empty() {
                drain_inflight(backend, &mut inflight);
                return;
            }
            idle = idle.saturating_add(1);
            if idle > IDLE_SLEEPS {
                std::thread::sleep(IDLE_NAP);
            } else if idle > IDLE_SPINS {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

/// Notify and drop every in-flight entry whose request completed.
fn reap(backend: &dyn OffloadBackend, inflight: &mut Vec<(u64, Option<Arc<CompletionQueue>>)>) {
    inflight.retain(|(token, reply)| {
        if backend.is_complete(*token) {
            if let Some(q) = reply {
                q.notify(*token);
            }
            false
        } else {
            true
        }
    });
}

/// Shutdown tail: every accepted command has been executed; give their
/// completions a bounded window to land before exiting.
fn drain_inflight(
    backend: &dyn OffloadBackend,
    inflight: &mut Vec<(u64, Option<Arc<CompletionQueue>>)>,
) {
    let mut quiet = 0u32;
    while !inflight.is_empty() && quiet < DRAIN_GRACE {
        if backend.progress() == 0 {
            quiet += 1;
            std::thread::yield_now();
        } else {
            quiet = 0;
        }
        reap(backend, inflight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairmpi_fabric::{Envelope, Packet};
    use fairmpi_sync::atomic::AtomicU64;
    use std::collections::HashSet;

    /// Backend that records executed tokens and completes each one after
    /// `latency` progress passes.
    struct MockBackend {
        executed: Mutex<Vec<u64>>,
        pending: Mutex<Vec<(u64, u32)>>,
        latency: u32,
        progress_calls: AtomicU64,
    }

    impl MockBackend {
        fn new(latency: u32) -> Self {
            Self {
                executed: Mutex::new(Vec::new()),
                pending: Mutex::new(Vec::new()),
                latency,
                progress_calls: AtomicU64::new(0),
            }
        }
    }

    impl OffloadBackend for MockBackend {
        fn execute(&self, cmd: Command) {
            let token = cmd.token();
            self.executed.lock().push(token);
            self.pending.lock().push((token, self.latency));
        }

        fn progress(&self) -> usize {
            self.progress_calls.fetch_add(1, Ordering::Relaxed);
            let mut done = 0;
            let mut pending = self.pending.lock();
            for entry in pending.iter_mut() {
                if entry.1 > 0 {
                    entry.1 -= 1;
                    if entry.1 == 0 {
                        done += 1;
                    }
                }
            }
            done
        }

        fn is_complete(&self, token: u64) -> bool {
            self.pending
                .lock()
                .iter()
                .all(|(t, left)| *t != token || *left == 0)
        }
    }

    fn send_cmd(token: u64) -> Command {
        Command::Send {
            packet: Packet::eager(
                Envelope {
                    src: 0,
                    dst: 1,
                    comm: 0,
                    tag: 1,
                    seq: 0,
                },
                vec![0],
            ),
            token,
            cq_token: token,
        }
    }

    #[test]
    fn commands_execute_and_notify_the_producer_queue() {
        let backend = Arc::new(MockBackend::new(2));
        let spc = Arc::new(SpcSet::new());
        let engine = OffloadEngine::start(
            OffloadConfig {
                workers: 2,
                ..OffloadConfig::default()
            },
            Arc::clone(&backend),
            Arc::clone(&spc),
        );
        let cq = Arc::new(CompletionQueue::new(64));
        for t in 1..=20u64 {
            engine.submit(send_cmd(t), Some(&cq)).unwrap();
        }
        let mut seen = HashSet::new();
        while seen.len() < 20 {
            if let Some(t) = cq.poll() {
                seen.insert(t);
            } else {
                std::thread::yield_now();
            }
        }
        assert_eq!(seen.len(), 20);
        assert_eq!(spc.get(Counter::OffloadCommands), 20);
        assert!(spc.get(Counter::OffloadBatches) >= 1);
        assert!(spc.watermark(Watermark::OffloadQueueDepth).high() >= 1);
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_every_accepted_command() {
        let backend = Arc::new(MockBackend::new(1));
        let spc = Arc::new(SpcSet::new());
        let engine = OffloadEngine::start(
            OffloadConfig::default(),
            Arc::clone(&backend),
            Arc::clone(&spc),
        );
        for t in 1..=500u64 {
            engine.submit(send_cmd(t), None).unwrap();
        }
        engine.shutdown();
        let executed = backend.executed.lock();
        assert_eq!(executed.len(), 500, "no accepted command is lost");
        // Submissions after shutdown are refused, command handed back.
        match engine.submit(send_cmd(501), None) {
            Err(SubmitError::Shutdown(cmd)) => assert_eq!(cmd.token(), 501),
            other => panic!("expected Shutdown, got {other:?}"),
        }
    }

    #[test]
    fn try_again_backpressure_fails_fast_and_counts() {
        // A tiny queue and a backend whose completions never land until
        // many progress passes, so the queue genuinely fills.
        let backend = Arc::new(MockBackend::new(u32::MAX));
        let spc = Arc::new(SpcSet::new());
        let engine = OffloadEngine::start(
            OffloadConfig {
                workers: 1,
                queue_capacity: 2,
                batch_limit: 1,
                backpressure: Backpressure::TryAgain,
            },
            Arc::clone(&backend),
            Arc::clone(&spc),
        );
        // Race the single worker: keep pushing until a WouldBlock surfaces.
        let mut rejected = None;
        for t in 1..=10_000u64 {
            match engine.submit(send_cmd(t), None) {
                Ok(()) => {}
                Err(SubmitError::WouldBlock(cmd)) => {
                    rejected = Some(cmd);
                    break;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
        let rejected = rejected.expect("a 2-slot queue must eventually reject");
        assert!(rejected.token() > 0);
        assert!(spc.get(Counter::OffloadBackpressureStalls) >= 1);
        engine.begin_shutdown();
        engine.join();
    }
}
