//! Command descriptors and the completion notification queue.

use fairmpi_fabric::{Packet, Rank};
use fairmpi_matching::PostedRecv;

use crate::queue::TicketRing;

/// One communication descriptor enqueued by an application thread and
/// executed by an offload worker against the real CRI/matching/fabric
/// engine. Descriptors are plain data: everything the worker needs travels
/// in the command, so application threads never touch the instance or
/// matching locks.
#[derive(Debug)]
pub enum Command {
    /// Inject a prebuilt two-sided packet (eager payload or rendezvous
    /// RTS). The sequence number inside the packet was drawn by the
    /// *application* thread at enqueue time, so per-thread program order —
    /// the MPI non-overtaking rule — survives any worker interleaving.
    Send {
        /// The wire packet, envelope and payload included.
        packet: Packet,
        /// Request-table token the producer waits on.
        token: u64,
        /// Token handed to the fabric completion queue (the request token
        /// for eager sends, 0 for control-only RTS packets).
        cq_token: u64,
    },
    /// Post a receive to the matching engine (`posted.token` is the
    /// request-table token).
    Recv {
        /// The matching-engine post descriptor.
        posted: PostedRecv,
        /// Dense program-order ticket drawn at enqueue time. The matcher
        /// serves posted receives FIFO, so the backend must post in ticket
        /// order even when different workers drain the descriptors.
        order: u64,
    },
    /// One-sided put into a window.
    Put {
        /// Window identifier (the core crate's `WindowId` payload).
        window: u64,
        /// Target rank.
        target: Rank,
        /// Byte offset inside the target's window region.
        offset: usize,
        /// Payload bytes.
        data: Vec<u8>,
        /// Request-table token completed once the put is injected.
        token: u64,
    },
    /// Complete once every RMA op this rank issued toward `target` (or
    /// all targets) has drained — the passive-target flush.
    Flush {
        /// Window identifier.
        window: u64,
        /// Target to flush toward; `None` flushes all targets.
        target: Option<Rank>,
        /// Request-table token completed when the window is drained.
        token: u64,
    },
}

impl Command {
    /// The request-table token the producer is waiting on.
    pub fn token(&self) -> u64 {
        match self {
            Command::Send { token, .. } => *token,
            Command::Recv { posted, .. } => posted.token,
            Command::Put { token, .. } => *token,
            Command::Flush { token, .. } => *token,
        }
    }
}

/// A per-thread completion notification queue.
///
/// Workers push the tokens of finished commands; the owning application
/// thread polls it from `wait`/`test` without taking any lock. The queue is
/// a *notification* channel, not the ground truth: the request's atomic
/// status is authoritative, so a notification that finds the ring full is
/// dropped rather than stalling the worker (the producer still observes
/// completion through the status word).
#[derive(Debug)]
pub struct CompletionQueue {
    ring: TicketRing<u64>,
}

impl CompletionQueue {
    /// A queue holding at least `capacity` pending notifications.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: TicketRing::with_capacity(capacity),
        }
    }

    /// Post a completed token; `false` means the ring was full and the
    /// notification was dropped (never blocks the worker).
    pub fn notify(&self, token: u64) -> bool {
        self.ring.try_push(token).is_ok()
    }

    /// Take one pending notification.
    pub fn poll(&self) -> Option<u64> {
        self.ring.try_pop()
    }

    /// Notifications currently pending.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no notification is pending.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairmpi_fabric::Envelope;

    #[test]
    fn command_token_extraction() {
        let send = Command::Send {
            packet: Packet::eager(
                Envelope {
                    src: 0,
                    dst: 1,
                    comm: 0,
                    tag: 5,
                    seq: 0,
                },
                vec![1],
            ),
            token: 42,
            cq_token: 42,
        };
        assert_eq!(send.token(), 42);
        let recv = Command::Recv {
            posted: PostedRecv {
                token: 7,
                comm: 0,
                src: 0,
                tag: 5,
            },
            order: 0,
        };
        assert_eq!(recv.token(), 7);
        let put = Command::Put {
            window: 1,
            target: 0,
            offset: 0,
            data: vec![],
            token: 9,
        };
        assert_eq!(put.token(), 9);
        let flush = Command::Flush {
            window: 1,
            target: None,
            token: 11,
        };
        assert_eq!(flush.token(), 11);
    }

    #[test]
    fn completion_queue_is_lossy_when_full() {
        let cq = CompletionQueue::new(2);
        assert!(cq.notify(1));
        assert!(cq.notify(2));
        assert!(!cq.notify(3), "full ring drops, never blocks");
        assert_eq!(cq.poll(), Some(1));
        assert!(cq.notify(3), "freed slot accepts again");
        assert_eq!(cq.poll(), Some(2));
        assert_eq!(cq.poll(), Some(3));
        assert_eq!(cq.poll(), None);
    }
}
