//! The bounded lock-free ticket ring behind the command and completion
//! queues.
//!
//! This is a Vyukov-style bounded MPMC ring: every slot carries a seqlock
//! sequence word gating access, producers and consumers claim tickets with
//! a single CAS on the tail/head counter, and all coordination is plain
//! `core::sync::atomic` — no mutexes, no external queue crates. Slots and
//! the two counters are cache-line padded so producers hammering the tail
//! never invalidate the consumer's head line (the same discipline as the
//! SPC slots).

use std::cell::UnsafeCell;

use fairmpi_sync::atomic::{AtomicU64, Ordering};
use fairmpi_sync::CachePadded;

/// What a producer does when the command queue is full (the ring cannot
/// grow: boundedness is what gives the offload design its backpressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Spin on the tail until a slot frees (lowest latency, burns a core).
    Spin,
    /// Spin, yielding the OS thread between attempts (the default: polite
    /// under oversubscription, still prompt).
    Yield,
    /// Fail fast: hand the rejected value back to the caller
    /// (`MPI_ERR_..._TryAgain`-style; the caller decides how to retry).
    TryAgain,
}

/// A rejected push, carrying the value back to the producer.
#[derive(Debug, PartialEq, Eq)]
pub struct QueueFull<T>(pub T);

/// One ring slot: the sequence word is `ticket` while writable by the
/// producer holding that ticket, `ticket + 1` while readable by the
/// consumer holding it, then `ticket + capacity` for the next lap.
#[derive(Debug)]
struct Slot<T> {
    seq: AtomicU64,
    value: UnsafeCell<Option<T>>,
}

/// A bounded lock-free MPMC FIFO ring (used MPSC for commands, MPSC for
/// completion notifications).
#[derive(Debug)]
pub struct TicketRing<T> {
    slots: Box<[CachePadded<Slot<T>>]>,
    mask: u64,
    /// Next producer ticket.
    tail: CachePadded<AtomicU64>,
    /// Next consumer ticket.
    head: CachePadded<AtomicU64>,
}

// SAFETY: the ticket protocol hands each slot to exactly one thread at a
// time (see `try_push`/`try_pop`), so the ring is a channel: it only needs
// `T: Send`, never `T: Sync`.
unsafe impl<T: Send> Send for TicketRing<T> {}
unsafe impl<T: Send> Sync for TicketRing<T> {}

impl<T> TicketRing<T> {
    /// A ring holding at least `capacity` items (rounded up to a power of
    /// two, minimum 2, so slot selection is a mask).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap as u64)
            .map(|i| {
                CachePadded::new(Slot {
                    seq: AtomicU64::new(i),
                    value: UnsafeCell::new(None),
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            mask: cap as u64 - 1,
            tail: CachePadded::new(AtomicU64::new(0)),
            head: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Approximate occupancy (exact when quiescent; racing operations can
    /// skew it by the number of in-flight claims).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        tail.saturating_sub(head) as usize
    }

    /// Whether the ring currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lock-free push attempt; `Err` hands the value back when full.
    pub fn try_push(&self, value: T) -> Result<(), QueueFull<T>> {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(tail & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == tail {
                match self.tail.compare_exchange_weak(
                    tail,
                    tail + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed ticket `tail`, making this
                        // thread the slot's unique owner until the sequence
                        // store below publishes it to the consumer side.
                        unsafe { *slot.value.get() = Some(value) };
                        slot.seq.store(tail + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => tail = current,
                }
            } else if seq < tail {
                // The slot still holds an unconsumed value from one lap
                // ago. Re-read the tail: if it moved we lost a race, not
                // capacity.
                let current = self.tail.load(Ordering::Relaxed);
                if current == tail {
                    return Err(QueueFull(value));
                }
                tail = current;
            } else {
                // Another producer claimed this ticket; chase the tail.
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Push honoring a backpressure policy. `Ok(stalled)` tells the caller
    /// whether the queue was ever observed full (for the
    /// `offload_backpressure_stalls` probe); `Err` only under
    /// [`Backpressure::TryAgain`].
    pub fn push(&self, value: T, policy: Backpressure) -> Result<bool, QueueFull<T>> {
        let mut value = match self.try_push(value) {
            Ok(()) => return Ok(false),
            Err(QueueFull(v)) => v,
        };
        if policy == Backpressure::TryAgain {
            return Err(QueueFull(value));
        }
        loop {
            match policy {
                Backpressure::Spin => std::hint::spin_loop(),
                Backpressure::Yield => std::thread::yield_now(),
                Backpressure::TryAgain => unreachable!("returned above"),
            }
            match self.try_push(value) {
                Ok(()) => return Ok(true),
                Err(QueueFull(v)) => value = v,
            }
        }
    }

    /// Lock-free pop attempt.
    pub fn try_pop(&self) -> Option<T> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(head & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == head + 1 {
                match self.head.compare_exchange_weak(
                    head,
                    head + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed ticket `head`; the
                        // producer published this slot with `seq == head+1`
                        // and will not touch it again until the store below
                        // recycles it for the next lap.
                        let value = unsafe { (*slot.value.get()).take() };
                        slot.seq
                            .store(head + self.capacity() as u64, Ordering::Release);
                        debug_assert!(value.is_some(), "published slot holds a value");
                        return value;
                    }
                    Err(current) => head = current,
                }
            } else if seq < head + 1 {
                // Slot not yet published: empty unless the head moved.
                let current = self.head.load(Ordering::Relaxed);
                if current == head {
                    return None;
                }
                head = current;
            } else {
                // Another consumer claimed this ticket; chase the head.
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop up to `max` items into `out`; returns how many were taken.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.try_pop() {
                Some(v) => {
                    out.push(v);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

impl<T> Drop for TicketRing<T> {
    fn drop(&mut self) {
        // Drain so queued values run their destructors.
        while self.try_pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q = TicketRing::with_capacity(8);
        for i in 0..5u64 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5u64 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn full_ring_rejects_and_returns_value() {
        let q = TicketRing::with_capacity(4);
        for i in 0..4u64 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.try_push(99), Err(QueueFull(99)));
        assert_eq!(q.push(99, Backpressure::TryAgain), Err(QueueFull(99)));
        assert_eq!(q.try_pop(), Some(0));
        // A freed slot is immediately reusable (wrap-around lap).
        q.try_push(4).unwrap();
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(TicketRing::<u8>::with_capacity(1).capacity(), 2);
        assert_eq!(TicketRing::<u8>::with_capacity(5).capacity(), 8);
        assert_eq!(TicketRing::<u8>::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn spin_push_reports_the_stall() {
        let q = Arc::new(TicketRing::with_capacity(2));
        for i in 0..2u64 {
            q.try_push(i).unwrap();
        }
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(7, Backpressure::Yield).unwrap())
        };
        // Free one slot; the stalled producer must complete and report it.
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(q.try_pop(), Some(0));
        assert!(producer.join().unwrap(), "push observed the full queue");
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(7));
    }

    #[test]
    fn mpsc_stress_delivers_every_value_once() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 5_000;
        let q = Arc::new(TicketRing::with_capacity(64));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.push(p * PER_PRODUCER + i, Backpressure::Yield).unwrap();
                    }
                })
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = vec![false; (PRODUCERS * PER_PRODUCER) as usize];
                let mut last_per_producer = vec![None::<u64>; PRODUCERS as usize];
                let mut got = 0;
                while got < PRODUCERS * PER_PRODUCER {
                    if let Some(v) = q.try_pop() {
                        assert!(!seen[v as usize], "duplicate {v}");
                        seen[v as usize] = true;
                        // Per-producer order is preserved (the MPSC
                        // guarantee the MPI non-overtaking rule rides on).
                        let p = (v / PER_PRODUCER) as usize;
                        let i = v % PER_PRODUCER;
                        assert!(last_per_producer[p].map(|prev| prev < i).unwrap_or(true));
                        last_per_producer[p] = Some(i);
                        got += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        consumer.join().unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn drop_runs_queued_destructors() {
        let token = Arc::new(());
        {
            let q = TicketRing::with_capacity(8);
            for _ in 0..5 {
                q.try_push(Arc::clone(&token)).unwrap();
            }
            assert_eq!(Arc::strong_count(&token), 6);
        }
        assert_eq!(Arc::strong_count(&token), 1, "ring drop released values");
    }
}
