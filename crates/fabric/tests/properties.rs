//! Randomized (seeded, deterministic) tests over the fabric: routing
//! totality, cost-model monotonicity, and queue discipline under
//! concurrency.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use fairmpi_fabric::{Envelope, Fabric, FabricConfig, MachineKind, Packet};

fn packet(dst: u32, seq: u64) -> Packet {
    Packet::eager(
        Envelope {
            src: 0,
            dst,
            comm: 0,
            tag: 0,
            seq,
        },
        Vec::new(),
    )
}

/// Routing is total and stable: every (dst, src_ctx) pair maps to a
/// valid destination context, and the mapping is a function.
#[test]
fn routing_is_total_and_deterministic() {
    for ranks in 1usize..6 {
        for ctxs in 1usize..9 {
            let fabric = Fabric::new(ranks, ctxs, FabricConfig::test_default());
            for dst in 0..ranks as u32 {
                for src_ctx in 0usize..64 {
                    let a = fabric.route(dst, src_ctx).index();
                    let b = fabric.route(dst, src_ctx).index();
                    assert_eq!(a, b);
                    assert!(a < fabric.num_contexts(dst));
                    assert_eq!(a, src_ctx % fabric.num_contexts(dst));
                }
            }
        }
    }
}

/// Serialization time is monotone in payload length and the peak rate
/// is antitone (never increases with size).
#[test]
fn cost_model_is_monotone() {
    let cfg = FabricConfig::default();
    let mut rng = SmallRng::seed_from_u64(0xC057);
    for _ in 0..512 {
        let len_a = rng.gen_range(0usize..1_000_000);
        let len_b = rng.gen_range(0usize..1_000_000);
        let (lo, hi) = if len_a <= len_b {
            (len_a, len_b)
        } else {
            (len_b, len_a)
        };
        assert!(cfg.serialization_time_ns(lo) <= cfg.serialization_time_ns(hi));
        assert!(cfg.theoretical_peak_msg_rate(lo) >= cfg.theoretical_peak_msg_rate(hi));
    }
}

/// Context clamping respects the hardware cap and never returns zero.
#[test]
fn context_clamp_invariants() {
    let mut rng = SmallRng::seed_from_u64(0xC1A9);
    for _ in 0..512 {
        let requested = rng.gen_range(0usize..10_000);
        let cap = rng.gen_range(1usize..300);
        let mut cfg = FabricConfig::test_default();
        cfg.max_contexts = Some(cap);
        let granted = cfg.clamp_contexts(requested);
        assert!(granted >= 1);
        assert!(granted <= cap);
        assert!(granted <= requested.max(1));
    }
}

/// A context's rx ring is FIFO for a single producer, regardless of
/// how pops interleave with pushes.
#[test]
fn rx_ring_fifo_under_interleaved_drain() {
    for seed in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xF1F0);
        let n_ops = rng.gen_range(1usize..80);
        let ops: Vec<bool> = (0..n_ops).map(|_| rng.gen_range(0u64..2) == 1).collect();
        let fabric = Fabric::new(2, 1, FabricConfig::test_default());
        let ctx = fabric.context(1, 0);
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for &push in &ops {
            if push {
                ctx.post_rx(packet(1, pushed));
                pushed += 1;
            } else {
                let mut drain = ctx.begin_drain();
                if let Some(p) = drain.pop_rx() {
                    assert_eq!(p.envelope.seq, popped);
                    popped += 1;
                }
            }
        }
        // Drain the remainder.
        let mut drain = ctx.begin_drain();
        while let Some(p) = drain.pop_rx() {
            assert_eq!(p.envelope.seq, popped);
            popped += 1;
        }
        assert_eq!(popped, pushed);
    }
}

#[test]
fn concurrent_producers_never_lose_packets() {
    let fabric = Arc::new(Fabric::new(2, 4, FabricConfig::test_default()));
    let producers = 4;
    let per_producer = 2_000u64;
    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let fabric = Arc::clone(&fabric);
            std::thread::spawn(move || {
                for i in 0..per_producer {
                    // Spread across source contexts like concurrent CRIs.
                    fabric.deliver(packet(1, (p as u64) << 32 | i), p);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut total = 0u64;
    let mut last_per_producer = [None::<u64>; 4];
    for ctx in 0..4 {
        let c = fabric.context(1, ctx);
        let mut drain = c.begin_drain();
        while let Some(p) = drain.pop_rx() {
            let producer = (p.envelope.seq >> 32) as usize;
            let seq = p.envelope.seq & 0xffff_ffff;
            // Per-producer FIFO within its ring.
            if let Some(prev) = last_per_producer[producer] {
                assert!(seq > prev, "producer {producer} reordered");
            }
            last_per_producer[producer] = Some(seq);
            total += 1;
        }
    }
    assert_eq!(total, producers as u64 * per_producer);
}

#[test]
fn machine_presets_have_consistent_cost_orderings() {
    let ib = FabricConfig::for_machine(MachineKind::AlembertInfinibandEdr);
    let knl = FabricConfig::for_machine(MachineKind::TrinititeAriesKnl);
    // Per-size peaks: the KNL NIC path is software-slower at small sizes,
    // but the link bandwidth (the large-message asymptote) is identical.
    assert!(knl.theoretical_peak_msg_rate(0) < ib.theoretical_peak_msg_rate(0));
    let big = 1 << 20;
    assert_eq!(
        ib.serialization_time_ns(big),
        knl.serialization_time_ns(big),
        "same 100 Gbps link"
    );
}
