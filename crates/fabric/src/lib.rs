//! A simulated interconnect for the `fairmpi` runtime.
//!
//! The paper's experiments run over InfiniBand EDR (`btl/uct`) and Cray Aries
//! (`btl/ugni`). This crate provides the synthetic equivalent: an in-memory
//! fabric exposing exactly the resources whose replication and protection the
//! study is about —
//!
//! * **network contexts** (the unit the paper replicates into CRIs; Aries
//!   imposes a hardware cap on how many can be created, which
//!   [`FabricConfig::max_contexts`] models),
//! * **completion queues** attached to a context, holding local completion
//!   events for outstanding sends and RMA operations,
//! * **receive rings** per context into which the wire deposits incoming
//!   packets (possibly out of order — real networks give no ordering
//!   guarantee, which is what forces MPI's sequence-number machinery),
//! * **endpoints** that route a packet from a source context to the matching
//!   context of the destination rank, and
//! * a **cost model** ([`FabricConfig`]) with per-message injection overhead
//!   and bandwidth, from which the theoretical peak message rate lines of
//!   paper Figs. 6 and 7 are computed.
//!
//! Like real NIC resources, a context is *not* safe for concurrent draining:
//! the layer above (the CRI layer) must protect it. Debug builds enforce this
//! with a drain guard.

mod config;
mod context;
mod cost;
mod fabric;
mod packet;

pub use config::{FabricConfig, MachineKind};
pub use context::{Completion, CompletionKind, DrainGuard, NetworkContext};
pub use cost::{busy_wait_ns, calibrate_spin};
pub use fabric::Fabric;
pub use packet::{Envelope, Packet, PacketKind, RmaOp, Tag, ANY_SOURCE, ANY_TAG};

/// Rank of a simulated MPI process within a [`Fabric`].
pub type Rank = u32;

/// Identifier of a communicator; assigned by the runtime above.
pub type CommId = u32;

/// Per-(communicator, peer) message sequence number.
pub type SeqNo = u64;
