//! Wire packets and their matching envelopes.

use crate::{CommId, Rank, SeqNo};

/// MPI message tag.
pub type Tag = i32;

/// Wildcard source for receives (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i32 = -1;

/// Wildcard tag for receives (`MPI_ANY_TAG`).
///
/// Paper §IV-D uses `MPI_ANY_TAG` receives to force the first posted receive
/// to match every incoming message, eliminating the queue search.
pub const ANY_TAG: Tag = -1;

/// The matching envelope carried by every two-sided packet.
///
/// Open MPI's envelope — what a 0-byte message actually puts on the wire —
/// is about 28 bytes (paper §IV); [`FabricConfig::envelope_bytes`] accounts
/// for it in the cost model.
///
/// [`FabricConfig::envelope_bytes`]: crate::FabricConfig::envelope_bytes
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Envelope {
    /// Sending rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Communicator the message travels on.
    pub comm: CommId,
    /// User tag.
    pub tag: Tag,
    /// Per-(communicator, destination) sequence number, assigned at send
    /// initiation. The receiver uses it to restore the MPI FIFO order.
    pub seq: SeqNo,
}

/// One-sided operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmaOp {
    /// Remote write.
    Put,
    /// Remote read.
    Get,
    /// Remote atomic `target += origin` on 8-byte lanes.
    AccumulateSum,
    /// Remote atomic replace.
    AccumulateReplace,
    /// Fetch-and-add returning the previous value.
    FetchAdd,
    /// Compare-and-swap on one 8-byte lane.
    CompareSwap,
}

/// What a packet is, beyond its envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketKind {
    /// Eager two-sided message: the payload rides with the envelope.
    Eager,
    /// Rendezvous request-to-send: only the envelope plus total length.
    RendezvousRts {
        /// Total message length the sender wants to transfer.
        len: usize,
        /// Token identifying the sender's pending request.
        sender_token: u64,
    },
    /// Rendezvous clear-to-send, flowing back to the sender.
    RendezvousCts {
        /// The sender token from the RTS being acknowledged.
        sender_token: u64,
        /// Token identifying the receiver's posted request.
        receiver_token: u64,
    },
    /// Rendezvous bulk data; matches the receiver request directly by token
    /// (no second matching pass, as in OMPI where the CTS carries the
    /// request pointer).
    RendezvousData {
        /// The receiver token from the CTS.
        receiver_token: u64,
    },
    /// Reliability acknowledgment: the receiver confirms it accepted the
    /// packet the sender transmitted as transport sequence `tseq`. Only
    /// present when a fault plan is active; acks are themselves unsequenced
    /// and fire-and-forget (a lost ack is repaired by retransmit + re-ack).
    Ack {
        /// The transport sequence number being acknowledged.
        tseq: u64,
    },
}

/// A packet in flight on the simulated wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Matching envelope.
    pub envelope: Envelope,
    /// Protocol discriminator.
    pub kind: PacketKind,
    /// Payload bytes (empty for 0-byte messages and control packets).
    pub payload: Vec<u8>,
    /// Transport-level sequence number assigned by the reliability layer
    /// when a fault plan is active. `0` means unsequenced: chaos is off, or
    /// the packet is itself a control frame (an [`PacketKind::Ack`]). The
    /// dedup key at the receiver is `(envelope.src, tseq)`.
    pub tseq: u64,
}

impl Packet {
    /// Build an eager packet.
    pub fn eager(envelope: Envelope, payload: Vec<u8>) -> Self {
        Self::with_kind(envelope, PacketKind::Eager, payload)
    }

    /// Build an unsequenced packet of any kind.
    pub fn with_kind(envelope: Envelope, kind: PacketKind, payload: Vec<u8>) -> Self {
        Self {
            envelope,
            kind,
            payload,
            tseq: 0,
        }
    }

    /// Bytes this packet occupies on the wire, including the envelope.
    pub fn wire_len(&self, envelope_bytes: usize) -> usize {
        envelope_bytes + self.payload.len()
    }

    /// True if this packet must go through the matching engine (carries a
    /// user-visible envelope rather than a protocol token).
    pub fn needs_matching(&self) -> bool {
        matches!(
            self.kind,
            PacketKind::Eager | PacketKind::RendezvousRts { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope() -> Envelope {
        Envelope {
            src: 0,
            dst: 1,
            comm: 0,
            tag: 7,
            seq: 42,
        }
    }

    #[test]
    fn wire_len_includes_envelope() {
        let p = Packet::eager(envelope(), vec![0u8; 100]);
        assert_eq!(p.wire_len(28), 128);
        let zero = Packet::eager(envelope(), vec![]);
        assert_eq!(zero.wire_len(28), 28, "0-byte msg still ships an envelope");
    }

    #[test]
    fn matching_requirement_by_kind() {
        let e = envelope();
        assert!(Packet::eager(e, vec![]).needs_matching());
        let rts = Packet::with_kind(
            e,
            PacketKind::RendezvousRts {
                len: 1 << 20,
                sender_token: 1,
            },
            vec![],
        );
        assert!(rts.needs_matching());
        let cts = Packet::with_kind(
            e,
            PacketKind::RendezvousCts {
                sender_token: 1,
                receiver_token: 2,
            },
            vec![],
        );
        assert!(!cts.needs_matching());
        let data = Packet::with_kind(
            e,
            PacketKind::RendezvousData { receiver_token: 2 },
            vec![1, 2, 3],
        );
        assert!(!data.needs_matching());
        let ack = Packet::with_kind(e, PacketKind::Ack { tseq: 5 }, vec![]);
        assert!(!ack.needs_matching(), "acks bypass the matching engine");
    }
}
