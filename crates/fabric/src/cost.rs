//! Calibrated busy-waiting for the native (real-thread) execution mode.
//!
//! When the runtime executes on real OS threads, per-message hardware costs
//! (NIC injection, wire serialization) are emulated by spinning for the
//! configured number of nanoseconds *while holding the same locks the real
//! operation would hold*, so that contention behaves like the real system.
//! The virtual-time executor never calls these; it advances a virtual clock
//! instead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Iterations of the calibration loop per nanosecond, fixed-point ×1024.
/// 0 means "not calibrated yet".
static SPIN_PER_NS_X1024: AtomicU64 = AtomicU64::new(0);

#[inline]
fn spin_chunk(iters: u64) {
    for _ in 0..iters {
        std::hint::spin_loop();
    }
}

/// Measure how many spin iterations one nanosecond costs on this host and
/// cache the result. Returns iterations/ns ×1024.
pub fn calibrate_spin() -> u64 {
    let cached = SPIN_PER_NS_X1024.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    // Time a fixed number of iterations, take the median of a few runs.
    const ITERS: u64 = 200_000;
    let mut samples = [0u64; 5];
    for s in samples.iter_mut() {
        let start = Instant::now();
        spin_chunk(ITERS);
        let ns = start.elapsed().as_nanos().max(1) as u64;
        *s = ITERS * 1024 / ns;
    }
    samples.sort_unstable();
    let rate = samples[2].max(1);
    SPIN_PER_NS_X1024.store(rate, Ordering::Relaxed);
    rate
}

/// Busy-wait for approximately `ns` nanoseconds.
///
/// Uses the calibrated spin rate for short waits to avoid the syscall cost of
/// reading the clock in a loop; falls back to clock-polling for long waits
/// where accuracy matters more than overhead.
pub fn busy_wait_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    if ns >= 50_000 {
        // Long wait: poll the clock.
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
        return;
    }
    let rate = calibrate_spin();
    spin_chunk((ns * rate) / 1024);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_returns_nonzero_and_caches() {
        let a = calibrate_spin();
        assert!(a > 0);
        let b = calibrate_spin();
        assert_eq!(a, b, "second call must hit the cache");
    }

    #[test]
    fn zero_wait_is_free() {
        let start = Instant::now();
        busy_wait_ns(0);
        assert!(start.elapsed().as_micros() < 1_000);
    }

    #[test]
    fn long_wait_is_roughly_accurate() {
        let start = Instant::now();
        busy_wait_ns(200_000); // 200 us, clock-polled.
        let elapsed = start.elapsed().as_nanos() as u64;
        assert!(elapsed >= 200_000, "waited only {elapsed} ns");
        // Generous upper bound: CI machines are noisy.
        assert!(elapsed < 20_000_000, "waited {elapsed} ns");
    }

    #[test]
    fn short_wait_terminates() {
        // Mostly checking it doesn't spin forever or panic.
        for _ in 0..100 {
            busy_wait_ns(300);
        }
    }
}
