//! The fabric cost model and machine presets (paper Table I).

/// Which testbed a preset emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineKind {
    /// University of Tennessee "Alembert": dual 10-core Haswell,
    /// InfiniBand EDR (100 Gbps). Used for paper §IV-A through §IV-E.
    AlembertInfinibandEdr,
    /// LANL "Trinitite" Haswell partition: dual 16-core Haswell,
    /// Cray Aries (100 Gbps). Used for paper Fig. 6.
    TrinititeAriesHaswell,
    /// LANL "Trinitite" KNL partition: 68-core Knights Landing,
    /// Cray Aries. Used for paper Fig. 7.
    TrinititeAriesKnl,
}

/// Parameters of the simulated interconnect.
///
/// The two numbers that dominate the study are the per-message **injection
/// overhead** (the work a thread does, holding a context, to hand one
/// descriptor to the NIC) and the **extraction overhead** (the work to pop
/// one completion/packet). Their ratio to the matching cost determines where
/// the two-sided bottleneck lands, which is the subject of paper Figs. 3-5.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// Per-message cost, in nanoseconds, of injecting a descriptor into a
    /// network context. Charged while the instance lock is held.
    pub injection_overhead_ns: u64,
    /// Per-message cost of extracting one packet/completion from a context.
    pub extraction_overhead_ns: u64,
    /// Link bandwidth in bytes per microsecond (100 Gbps = 12_500 B/us).
    pub bandwidth_bytes_per_us: u64,
    /// One-way wire latency in nanoseconds.
    pub wire_latency_ns: u64,
    /// Maximum random extra delivery delay, in nanoseconds. Nonzero jitter
    /// means two packets injected back-to-back on different contexts can
    /// arrive reordered — the "networks do not provide ordering" behaviour
    /// that makes sequence numbers necessary.
    pub delivery_jitter_ns: u64,
    /// Size of the matching envelope on the wire (28 B in Open MPI).
    pub envelope_bytes: usize,
    /// Messages at most this long are sent eagerly; longer ones use the
    /// rendezvous protocol.
    pub eager_threshold: usize,
    /// Hardware cap on the number of network contexts one process may
    /// create (`None` = unlimited). Cray Aries devices have such a limit
    /// (paper §III-B), so CRI pools must tolerate fewer instances than
    /// threads.
    pub max_contexts: Option<usize>,
}

impl FabricConfig {
    /// 100 Gbps in bytes per microsecond.
    const GBPS100: u64 = 12_500;

    /// Preset for the given machine. Overheads are calibrated so that the
    /// simulated peak message rates land in the paper's reported ranges
    /// (~0.5 M msg/s per single-threaded two-sided pair; tens of millions
    /// aggregate for RMA).
    pub fn for_machine(kind: MachineKind) -> Self {
        match kind {
            MachineKind::AlembertInfinibandEdr => Self {
                injection_overhead_ns: 400,
                extraction_overhead_ns: 300,
                bandwidth_bytes_per_us: Self::GBPS100,
                wire_latency_ns: 1_000,
                delivery_jitter_ns: 600,
                envelope_bytes: 28,
                eager_threshold: 4 * 1024,
                max_contexts: None,
            },
            MachineKind::TrinititeAriesHaswell => Self {
                injection_overhead_ns: 350,
                extraction_overhead_ns: 250,
                bandwidth_bytes_per_us: Self::GBPS100,
                wire_latency_ns: 1_200,
                delivery_jitter_ns: 500,
                envelope_bytes: 28,
                eager_threshold: 4 * 1024,
                // Aries hardware limit on communication domains.
                max_contexts: Some(120),
            },
            MachineKind::TrinititeAriesKnl => Self {
                // KNL cores are slow; per-message software overheads grow.
                injection_overhead_ns: 900,
                extraction_overhead_ns: 650,
                bandwidth_bytes_per_us: Self::GBPS100,
                wire_latency_ns: 1_500,
                delivery_jitter_ns: 700,
                envelope_bytes: 28,
                eager_threshold: 4 * 1024,
                max_contexts: Some(120),
            },
        }
    }

    /// A fast, low-jitter config for unit tests.
    pub fn test_default() -> Self {
        Self {
            injection_overhead_ns: 0,
            extraction_overhead_ns: 0,
            bandwidth_bytes_per_us: Self::GBPS100,
            wire_latency_ns: 0,
            delivery_jitter_ns: 0,
            envelope_bytes: 28,
            eager_threshold: 4 * 1024,
            max_contexts: None,
        }
    }

    /// Nanoseconds a message of `payload_len` bytes occupies the link
    /// (serialization time; envelope included).
    pub fn serialization_time_ns(&self, payload_len: usize) -> u64 {
        let bytes = (payload_len + self.envelope_bytes) as u64;
        // bytes / (bytes/us) * 1000 ns/us, rounded up.
        (bytes * 1_000).div_ceil(self.bandwidth_bytes_per_us)
    }

    /// The theoretical peak message rate (messages/second) for a given
    /// payload size on one context: the inverse of the larger of injection
    /// overhead and serialization time. This is the black horizontal line in
    /// paper Figs. 6 and 7.
    pub fn theoretical_peak_msg_rate(&self, payload_len: usize) -> f64 {
        let per_msg_ns = self
            .injection_overhead_ns
            .max(self.serialization_time_ns(payload_len))
            .max(1);
        1.0e9 / per_msg_ns as f64
    }

    /// Clamp a requested context count to the hardware limit.
    pub fn clamp_contexts(&self, requested: usize) -> usize {
        match self.max_contexts {
            Some(cap) => requested.min(cap).max(1),
            None => requested.max(1),
        }
    }
}

impl Default for FabricConfig {
    /// Defaults to the Alembert (InfiniBand EDR) preset, the testbed for the
    /// paper's §IV-A through §IV-E.
    fn default() -> Self {
        Self::for_machine(MachineKind::AlembertInfinibandEdr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_scales_with_length() {
        let cfg = FabricConfig::default();
        let small = cfg.serialization_time_ns(0);
        let large = cfg.serialization_time_ns(1 << 20);
        assert!(small < large);
        // 1 MiB at 12.5 GB/s is ~84 us.
        assert!((80_000..90_000).contains(&large), "{large}");
    }

    #[test]
    fn peak_rate_is_overhead_bound_for_small_messages() {
        let cfg = FabricConfig::default();
        // 0-byte: bound by the 400 ns injection overhead => 2.5 M msg/s.
        let peak = cfg.theoretical_peak_msg_rate(0);
        assert!((2.4e6..2.6e6).contains(&peak), "{peak}");
    }

    #[test]
    fn peak_rate_is_bandwidth_bound_for_large_messages() {
        let cfg = FabricConfig::default();
        // 16 KiB at 12.5 GB/s is ~1.3 us per message; overhead is 0.4 us.
        let peak = cfg.theoretical_peak_msg_rate(16 * 1024);
        let serialization = cfg.serialization_time_ns(16 * 1024);
        assert!(serialization > cfg.injection_overhead_ns);
        assert!((1.0e9 / serialization as f64 - peak).abs() < 1.0);
    }

    #[test]
    fn aries_presets_cap_contexts() {
        let cfg = FabricConfig::for_machine(MachineKind::TrinititeAriesHaswell);
        assert_eq!(cfg.clamp_contexts(4096), 120);
        assert_eq!(cfg.clamp_contexts(32), 32);
        assert_eq!(cfg.clamp_contexts(0), 1, "always at least one context");
        let ib = FabricConfig::for_machine(MachineKind::AlembertInfinibandEdr);
        assert_eq!(ib.clamp_contexts(4096), 4096);
    }

    #[test]
    fn knl_overheads_exceed_haswell() {
        let knl = FabricConfig::for_machine(MachineKind::TrinititeAriesKnl);
        let hsw = FabricConfig::for_machine(MachineKind::TrinititeAriesHaswell);
        assert!(knl.injection_overhead_ns > hsw.injection_overhead_ns);
        assert!(knl.extraction_overhead_ns > hsw.extraction_overhead_ns);
    }
}
