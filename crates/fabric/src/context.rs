//! Network contexts: the resource the paper replicates into CRIs.

use crossbeam::queue::SegQueue;
use fairmpi_spc::WatermarkCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::{Packet, Rank};

/// A local completion event, reported through a context's completion queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Caller-assigned token identifying the operation (request id).
    pub token: u64,
    /// What completed.
    pub kind: CompletionKind,
}

/// The kind of completed operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompletionKind {
    /// An outgoing two-sided packet left the context.
    SendDone,
    /// A one-sided operation completed at the origin.
    RmaDone,
    /// A one-sided get completed; carries the fetched bytes.
    RmaGetDone(Vec<u8>),
    /// A fetch-style atomic completed; carries the previous value.
    RmaFetchDone(u64),
}

/// One network context: an rx ring for incoming packets plus a completion
/// queue for local events.
///
/// Mirroring NIC hardware, *posting* into the ring is safe from any thread
/// (the wire does it), but *draining* must be serialized by the owner — in
/// this design, by the CRI lock above. Debug builds verify the discipline
/// with [`NetworkContext::begin_drain`].
#[derive(Debug)]
pub struct NetworkContext {
    /// Owning rank.
    rank: Rank,
    /// Index of this context within the rank's context table.
    index: usize,
    /// Incoming packets deposited by the wire.
    rx: SegQueue<Packet>,
    /// Local completion events.
    cq: SegQueue<Completion>,
    /// Number of operations injected but not yet completed.
    pending_ops: AtomicU64,
    /// Extremes of `pending_ops`, sampled at each injection — how deep this
    /// instance's in-flight window gets (the `fairmpi-mpit` per-instance
    /// injection/completion watermark).
    pending_watermark: WatermarkCell,
    /// Extremes of the rx-ring depth, sampled at each wire delivery — how
    /// far the progress engine lags injection on this instance.
    rx_watermark: WatermarkCell,
    /// Debug-only guard flagging a drain in progress.
    draining: AtomicBool,
    /// False once the fault plan has permanently killed this context.
    alive: AtomicBool,
}

impl NetworkContext {
    pub(crate) fn new(rank: Rank, index: usize) -> Self {
        Self {
            rank,
            index,
            rx: SegQueue::new(),
            cq: SegQueue::new(),
            pending_ops: AtomicU64::new(0),
            pending_watermark: WatermarkCell::new(),
            rx_watermark: WatermarkCell::new(),
            draining: AtomicBool::new(false),
            alive: AtomicBool::new(true),
        }
    }

    /// Owning rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Index within the rank's context table.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Deposit an incoming packet (called by the wire / remote endpoints;
    /// safe from any thread). A dead context silently discards traffic,
    /// exactly like a failed NIC port — recovery is the sender's problem.
    pub fn post_rx(&self, packet: Packet) {
        if !self.is_alive() {
            return;
        }
        self.rx.push(packet);
        self.rx_watermark.record(self.rx.len() as u64);
    }

    /// Permanently kill this context (fault injection). Irreversible: all
    /// later deliveries are discarded and the progress engine skips it.
    pub fn kill(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Whether the context still accepts and reports traffic.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Deposit a local completion event.
    pub fn post_completion(&self, completion: Completion) {
        fairmpi_trace::instant("fabric.cq_completion");
        self.cq.push(completion);
    }

    /// Record that an operation was injected and will complete later.
    pub fn op_started(&self) {
        let now = self.pending_ops.fetch_add(1, Ordering::Relaxed) + 1;
        self.pending_watermark.record(now);
    }

    /// Record that an injected operation completed.
    pub fn op_finished(&self) {
        let prev = self.pending_ops.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "op_finished without matching op_started");
    }

    /// Operations injected on this context that have not completed yet.
    pub fn pending_ops(&self) -> u64 {
        self.pending_ops.load(Ordering::Relaxed)
    }

    /// High/low extremes of the in-flight operation count, sampled at each
    /// injection.
    pub fn pending_watermark(&self) -> &WatermarkCell {
        &self.pending_watermark
    }

    /// High/low extremes of the rx-ring depth, sampled at each delivery.
    pub fn rx_watermark(&self) -> &WatermarkCell {
        &self.rx_watermark
    }

    /// Whether any packet or completion is waiting (cheap peek for progress
    /// heuristics; may race, callers must tolerate both outcomes).
    pub fn has_work(&self) -> bool {
        !self.rx.is_empty() || !self.cq.is_empty()
    }

    /// Begin draining this context. Enforces (in debug builds) that only one
    /// thread drains at a time — the invariant the CRI lock exists to
    /// provide. Returns a guard; draining methods are on the guard.
    pub fn begin_drain(&self) -> DrainGuard<'_> {
        let was = self.draining.swap(true, Ordering::Acquire);
        debug_assert!(
            !was,
            "concurrent drain of context {}/{}: the caller failed to hold \
             the instance lock",
            self.rank, self.index
        );
        DrainGuard { ctx: self }
    }
}

/// Exclusive access to a context's pop side, handed out by
/// [`NetworkContext::begin_drain`].
#[derive(Debug)]
pub struct DrainGuard<'a> {
    ctx: &'a NetworkContext,
}

impl DrainGuard<'_> {
    /// Pop one incoming packet, if any.
    pub fn pop_rx(&mut self) -> Option<Packet> {
        self.ctx.rx.pop()
    }

    /// Pop one completion event, if any.
    pub fn pop_completion(&mut self) -> Option<Completion> {
        self.ctx.cq.pop()
    }

    /// The context being drained.
    pub fn context(&self) -> &NetworkContext {
        self.ctx
    }
}

impl Drop for DrainGuard<'_> {
    fn drop(&mut self) {
        self.ctx.draining.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Envelope;

    fn packet(seq: u64) -> Packet {
        Packet::eager(
            Envelope {
                src: 0,
                dst: 1,
                comm: 0,
                tag: 0,
                seq,
            },
            vec![],
        )
    }

    #[test]
    fn rx_ring_is_fifo_per_producer() {
        let ctx = NetworkContext::new(1, 0);
        for seq in 0..10 {
            ctx.post_rx(packet(seq));
        }
        let mut drain = ctx.begin_drain();
        for seq in 0..10 {
            assert_eq!(drain.pop_rx().unwrap().envelope.seq, seq);
        }
        assert!(drain.pop_rx().is_none());
    }

    #[test]
    fn completion_queue_delivers_events() {
        let ctx = NetworkContext::new(0, 3);
        ctx.post_completion(Completion {
            token: 9,
            kind: CompletionKind::SendDone,
        });
        let mut drain = ctx.begin_drain();
        let c = drain.pop_completion().unwrap();
        assert_eq!(c.token, 9);
        assert_eq!(c.kind, CompletionKind::SendDone);
    }

    #[test]
    fn pending_op_accounting() {
        let ctx = NetworkContext::new(0, 0);
        ctx.op_started();
        ctx.op_started();
        assert_eq!(ctx.pending_ops(), 2);
        ctx.op_finished();
        assert_eq!(ctx.pending_ops(), 1);
        ctx.op_finished();
        assert_eq!(ctx.pending_ops(), 0);
    }

    #[test]
    fn per_instance_watermarks_track_depths() {
        let ctx = NetworkContext::new(0, 0);
        ctx.post_rx(packet(0));
        ctx.post_rx(packet(1));
        assert_eq!(ctx.rx_watermark().high(), 2);
        assert_eq!(ctx.rx_watermark().low(), 1);
        ctx.op_started();
        ctx.op_started();
        ctx.op_finished();
        ctx.op_started();
        // Sampled at injections only: 1, 2, then back up to 2.
        assert_eq!(ctx.pending_watermark().high(), 2);
        assert_eq!(ctx.pending_watermark().low(), 1);
    }

    #[test]
    fn dead_context_discards_deliveries() {
        let ctx = NetworkContext::new(0, 0);
        assert!(ctx.is_alive());
        ctx.post_rx(packet(0));
        ctx.kill();
        assert!(!ctx.is_alive());
        ctx.post_rx(packet(1));
        let mut drain = ctx.begin_drain();
        assert_eq!(
            drain.pop_rx().unwrap().envelope.seq,
            0,
            "pre-death traffic is still drainable"
        );
        assert!(drain.pop_rx().is_none(), "post-death traffic is discarded");
    }

    #[test]
    fn has_work_reflects_queues() {
        let ctx = NetworkContext::new(0, 0);
        assert!(!ctx.has_work());
        ctx.post_rx(packet(0));
        assert!(ctx.has_work());
        {
            let mut d = ctx.begin_drain();
            d.pop_rx();
        }
        assert!(!ctx.has_work());
    }

    #[test]
    #[should_panic(expected = "concurrent drain")]
    #[cfg(debug_assertions)]
    fn concurrent_drain_is_detected() {
        let ctx = NetworkContext::new(0, 0);
        let _a = ctx.begin_drain();
        let _b = ctx.begin_drain();
    }

    #[test]
    fn drain_guard_releases_on_drop() {
        let ctx = NetworkContext::new(0, 0);
        drop(ctx.begin_drain());
        // Second drain succeeds after the first guard is dropped.
        let _again = ctx.begin_drain();
    }
}
