//! The fabric: all ranks' contexts plus routing.

use std::sync::Arc;

use crate::{FabricConfig, NetworkContext, Packet, Rank};

/// The simulated interconnect connecting a set of ranks.
///
/// Each rank owns a table of [`NetworkContext`]s. Routing follows the
/// paper's BTL/uct arrangement: a packet injected on source context *k*
/// lands in destination context `k % contexts(dst)`, so the receiver drains
/// context *k* by progressing CRI *k*.
#[derive(Debug)]
pub struct Fabric {
    config: FabricConfig,
    ranks: Vec<Vec<Arc<NetworkContext>>>,
}

impl Fabric {
    /// Build a fabric with the same number of contexts on every rank.
    ///
    /// The requested context count is clamped to the configured hardware
    /// limit ([`FabricConfig::max_contexts`]), as on Cray Aries.
    pub fn new(num_ranks: usize, contexts_per_rank: usize, config: FabricConfig) -> Self {
        let counts = vec![contexts_per_rank; num_ranks];
        Self::with_context_counts(&counts, config)
    }

    /// Build a fabric with a per-rank context count.
    pub fn with_context_counts(counts: &[usize], config: FabricConfig) -> Self {
        assert!(!counts.is_empty(), "a fabric needs at least one rank");
        let ranks = counts
            .iter()
            .enumerate()
            .map(|(rank, &n)| {
                let n = config.clamp_contexts(n);
                (0..n)
                    .map(|i| Arc::new(NetworkContext::new(rank as Rank, i)))
                    .collect()
            })
            .collect();
        Self { config, ranks }
    }

    /// The cost model.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Number of ranks connected by this fabric.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Number of contexts a rank owns.
    pub fn num_contexts(&self, rank: Rank) -> usize {
        self.ranks[rank as usize].len()
    }

    /// A rank's context by index.
    pub fn context(&self, rank: Rank, index: usize) -> &Arc<NetworkContext> {
        &self.ranks[rank as usize][index]
    }

    /// All contexts of a rank.
    pub fn contexts(&self, rank: Rank) -> &[Arc<NetworkContext>] {
        &self.ranks[rank as usize]
    }

    /// The destination context a packet injected on source context
    /// `src_ctx_index` is routed to.
    pub fn route(&self, dst: Rank, src_ctx_index: usize) -> &Arc<NetworkContext> {
        let table = &self.ranks[dst as usize];
        &table[src_ctx_index % table.len()]
    }

    /// Deposit `packet` into the destination rank's ring for the given
    /// source context. This is the wire's delivery step; in native mode the
    /// caller has already charged injection/serialization costs.
    pub fn deliver(&self, packet: Packet, src_ctx_index: usize) {
        fairmpi_trace::instant("fabric.inject");
        let dst = packet.envelope.dst;
        debug_assert!((dst as usize) < self.ranks.len(), "rank {dst} out of range");
        self.route(dst, src_ctx_index).post_rx(packet);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Envelope, FabricConfig};

    fn packet(dst: Rank, seq: u64) -> Packet {
        Packet::eager(
            Envelope {
                src: 0,
                dst,
                comm: 0,
                tag: 0,
                seq,
            },
            vec![],
        )
    }

    #[test]
    fn routing_is_modulo_destination_contexts() {
        let fabric = Fabric::with_context_counts(&[4, 2], FabricConfig::test_default());
        // src ctx 3 -> dst rank 1, which has 2 contexts -> ctx 1.
        assert_eq!(fabric.route(1, 3).index(), 1);
        assert_eq!(fabric.route(1, 2).index(), 0);
        // Toward rank 0 (4 contexts) the index is preserved.
        assert_eq!(fabric.route(0, 3).index(), 3);
    }

    #[test]
    fn deliver_lands_in_routed_context() {
        let fabric = Fabric::new(2, 3, FabricConfig::test_default());
        fabric.deliver(packet(1, 7), 2);
        let ctx = fabric.context(1, 2);
        let mut drain = ctx.begin_drain();
        assert_eq!(drain.pop_rx().unwrap().envelope.seq, 7);
        // Other contexts stay empty.
        drop(drain);
        assert!(!fabric.context(1, 0).has_work());
        assert!(!fabric.context(1, 1).has_work());
    }

    #[test]
    fn context_count_respects_hardware_cap() {
        let mut cfg = FabricConfig::test_default();
        cfg.max_contexts = Some(8);
        let fabric = Fabric::new(2, 72, cfg);
        assert_eq!(fabric.num_contexts(0), 8);
    }

    #[test]
    fn per_rank_counts() {
        let fabric = Fabric::with_context_counts(&[1, 5], FabricConfig::test_default());
        assert_eq!(fabric.num_contexts(0), 1);
        assert_eq!(fabric.num_contexts(1), 5);
        assert_eq!(fabric.num_ranks(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_fabric_rejected() {
        let _ = Fabric::with_context_counts(&[], FabricConfig::test_default());
    }
}
