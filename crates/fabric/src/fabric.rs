//! The fabric: all ranks' contexts plus routing.

use std::sync::{Arc, OnceLock};

use fairmpi_chaos::{ChaosEngine, Delivery, FaultPlan};
use fairmpi_spc::{Counter, SpcSet};
use parking_lot::Mutex;

use crate::{FabricConfig, NetworkContext, Packet, Rank};

/// Runtime of an armed fault plan: the seeded decision engine plus the
/// holdback buffer that realizes reorder/delay faults (a held packet is
/// released after the next on-time delivery, i.e. out of order).
#[derive(Debug)]
struct ChaosState {
    engine: ChaosEngine,
    holdback: Mutex<Vec<(Packet, usize)>>,
}

/// The simulated interconnect connecting a set of ranks.
///
/// Each rank owns a table of [`NetworkContext`]s. Routing follows the
/// paper's BTL/uct arrangement: a packet injected on source context *k*
/// lands in destination context `k % contexts(dst)`, so the receiver drains
/// context *k* by progressing CRI *k*.
#[derive(Debug)]
pub struct Fabric {
    config: FabricConfig,
    ranks: Vec<Vec<Arc<NetworkContext>>>,
    chaos: OnceLock<ChaosState>,
}

impl Fabric {
    /// Build a fabric with the same number of contexts on every rank.
    ///
    /// The requested context count is clamped to the configured hardware
    /// limit ([`FabricConfig::max_contexts`]), as on Cray Aries.
    pub fn new(num_ranks: usize, contexts_per_rank: usize, config: FabricConfig) -> Self {
        let counts = vec![contexts_per_rank; num_ranks];
        Self::with_context_counts(&counts, config)
    }

    /// Build a fabric with a per-rank context count.
    pub fn with_context_counts(counts: &[usize], config: FabricConfig) -> Self {
        assert!(!counts.is_empty(), "a fabric needs at least one rank");
        let ranks = counts
            .iter()
            .enumerate()
            .map(|(rank, &n)| {
                let n = config.clamp_contexts(n);
                (0..n)
                    .map(|i| Arc::new(NetworkContext::new(rank as Rank, i)))
                    .collect()
            })
            .collect();
        Self {
            config,
            ranks,
            chaos: OnceLock::new(),
        }
    }

    /// The cost model.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Number of ranks connected by this fabric.
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// Number of contexts a rank owns.
    pub fn num_contexts(&self, rank: Rank) -> usize {
        self.ranks[rank as usize].len()
    }

    /// A rank's context by index.
    pub fn context(&self, rank: Rank, index: usize) -> &Arc<NetworkContext> {
        &self.ranks[rank as usize][index]
    }

    /// All contexts of a rank.
    pub fn contexts(&self, rank: Rank) -> &[Arc<NetworkContext>] {
        &self.ranks[rank as usize]
    }

    /// The destination context a packet injected on source context
    /// `src_ctx_index` is routed to. When the preferred destination port is
    /// dead (fault injection), delivery fails over to the next surviving
    /// context of the same rank — the receiver's progress engine drains all
    /// of them anyway, only the drain affinity is lost.
    pub fn route(&self, dst: Rank, src_ctx_index: usize) -> &Arc<NetworkContext> {
        let table = &self.ranks[dst as usize];
        let preferred = src_ctx_index % table.len();
        if table[preferred].is_alive() {
            return &table[preferred];
        }
        table
            .iter()
            .cycle()
            .skip(preferred + 1)
            .take(table.len() - 1)
            .find(|c| c.is_alive())
            .unwrap_or(&table[preferred])
    }

    /// Deposit `packet` into the destination rank's ring for the given
    /// source context. This is the wire's delivery step; in native mode the
    /// caller has already charged injection/serialization costs.
    pub fn deliver(&self, packet: Packet, src_ctx_index: usize) {
        fairmpi_trace::instant("fabric.inject");
        let dst = packet.envelope.dst;
        debug_assert!((dst as usize) < self.ranks.len(), "rank {dst} out of range");
        self.route(dst, src_ctx_index).post_rx(packet);
    }

    /// Arm a fault plan on this fabric. Callable at most once, before
    /// traffic flows; with no plan armed the fabric is a perfect wire.
    pub fn enable_chaos(&self, plan: FaultPlan) {
        let armed = self
            .chaos
            .set(ChaosState {
                engine: ChaosEngine::new(plan),
                holdback: Mutex::new(Vec::new()),
            })
            .is_ok();
        assert!(armed, "a fault plan can only be armed once per fabric");
    }

    /// The armed fault-plan engine, if any.
    pub fn chaos(&self) -> Option<&ChaosEngine> {
        self.chaos.get().map(|c| &c.engine)
    }

    /// Deliver through the armed fault plan: the wire may drop, duplicate,
    /// delay, or reorder the packet, and the plan's context-death trigger
    /// fires here. Identical to [`Fabric::deliver`] when no plan is armed.
    /// Injected fault events are charged to the caller's SPC set.
    pub fn deliver_observed(&self, packet: Packet, src_ctx_index: usize, spc: &SpcSet) {
        let Some(chaos) = self.chaos.get() else {
            self.deliver(packet, src_ctx_index);
            return;
        };
        if let Some(kill) = chaos.engine.observe_send() {
            if (kill.rank as usize) < self.ranks.len() {
                let table = &self.ranks[kill.rank as usize];
                table[kill.context % table.len()].kill();
            }
        }
        match chaos.engine.decide_delivery() {
            Delivery::Deliver => {
                self.deliver(packet, src_ctx_index);
                self.flush_holdback(chaos);
            }
            Delivery::Drop => {
                fairmpi_trace::instant("chaos.drop");
                spc.inc(Counter::ChaosDrops);
            }
            Delivery::Duplicate => {
                fairmpi_trace::instant("chaos.dup");
                spc.inc(Counter::ChaosDups);
                self.deliver(packet.clone(), src_ctx_index);
                self.deliver(packet, src_ctx_index);
                self.flush_holdback(chaos);
            }
            Delivery::Reorder => {
                fairmpi_trace::instant("chaos.reorder");
                spc.inc(Counter::ChaosReorders);
                chaos.holdback.lock().push((packet, src_ctx_index));
            }
            Delivery::Delay(_) => {
                // The native wire has no timer; a delay is a short holdback
                // released by the next on-time delivery.
                fairmpi_trace::instant("chaos.delay");
                chaos.holdback.lock().push((packet, src_ctx_index));
            }
        }
    }

    /// Release every held-back packet (they now arrive *after* a later
    /// packet — the reorder/delay fault made real). A holdback stranded by
    /// the end of traffic acts as a drop, which retransmission repairs.
    fn flush_holdback(&self, chaos: &ChaosState) {
        let held = std::mem::take(&mut *chaos.holdback.lock());
        for (p, src_ctx) in held {
            self.deliver(p, src_ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Envelope, FabricConfig};

    fn packet(dst: Rank, seq: u64) -> Packet {
        Packet::eager(
            Envelope {
                src: 0,
                dst,
                comm: 0,
                tag: 0,
                seq,
            },
            vec![],
        )
    }

    #[test]
    fn routing_is_modulo_destination_contexts() {
        let fabric = Fabric::with_context_counts(&[4, 2], FabricConfig::test_default());
        // src ctx 3 -> dst rank 1, which has 2 contexts -> ctx 1.
        assert_eq!(fabric.route(1, 3).index(), 1);
        assert_eq!(fabric.route(1, 2).index(), 0);
        // Toward rank 0 (4 contexts) the index is preserved.
        assert_eq!(fabric.route(0, 3).index(), 3);
    }

    #[test]
    fn deliver_lands_in_routed_context() {
        let fabric = Fabric::new(2, 3, FabricConfig::test_default());
        fabric.deliver(packet(1, 7), 2);
        let ctx = fabric.context(1, 2);
        let mut drain = ctx.begin_drain();
        assert_eq!(drain.pop_rx().unwrap().envelope.seq, 7);
        // Other contexts stay empty.
        drop(drain);
        assert!(!fabric.context(1, 0).has_work());
        assert!(!fabric.context(1, 1).has_work());
    }

    #[test]
    fn context_count_respects_hardware_cap() {
        let mut cfg = FabricConfig::test_default();
        cfg.max_contexts = Some(8);
        let fabric = Fabric::new(2, 72, cfg);
        assert_eq!(fabric.num_contexts(0), 8);
    }

    #[test]
    fn per_rank_counts() {
        let fabric = Fabric::with_context_counts(&[1, 5], FabricConfig::test_default());
        assert_eq!(fabric.num_contexts(0), 1);
        assert_eq!(fabric.num_contexts(1), 5);
        assert_eq!(fabric.num_ranks(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_fabric_rejected() {
        let _ = Fabric::with_context_counts(&[], FabricConfig::test_default());
    }

    #[test]
    fn observed_delivery_without_a_plan_is_a_perfect_wire() {
        let fabric = Fabric::new(2, 2, FabricConfig::test_default());
        let spc = SpcSet::new();
        fabric.deliver_observed(packet(1, 3), 0, &spc);
        assert!(fabric.context(1, 0).has_work());
        assert_eq!(spc.get(Counter::ChaosDrops), 0);
    }

    #[test]
    fn certain_drop_loses_every_packet_and_counts_them() {
        let fabric = Fabric::new(2, 1, FabricConfig::test_default());
        fabric.enable_chaos(FaultPlan::seeded(11).drop(1000));
        let spc = SpcSet::new();
        for seq in 0..10 {
            fabric.deliver_observed(packet(1, seq), 0, &spc);
        }
        assert!(!fabric.context(1, 0).has_work(), "all packets dropped");
        assert_eq!(spc.get(Counter::ChaosDrops), 10);
    }

    #[test]
    fn reordered_packet_arrives_after_a_later_one() {
        let fabric = Fabric::new(2, 1, FabricConfig::test_default());
        // Find a seed whose first draw reorders and second delivers.
        fabric.enable_chaos(FaultPlan::seeded(1).reorder(500));
        let spc = SpcSet::new();
        let mut sent = 0;
        while spc.get(Counter::ChaosReorders) == 0 {
            fabric.deliver_observed(packet(1, sent), 0, &spc);
            sent += 1;
        }
        let held = sent - 1; // the last send was held back
                             // Half the draws deliver normally, and every normal delivery
                             // flushes the holdback behind itself — 100 more sends guarantee
                             // (deterministically, same seed same schedule) the held packet
                             // reappears after a later one.
        for _ in 0..100 {
            fabric.deliver_observed(packet(1, sent), 0, &spc);
            sent += 1;
        }
        let mut order = Vec::new();
        let mut drain = fabric.context(1, 0).begin_drain();
        while let Some(p) = drain.pop_rx() {
            order.push(p.envelope.seq);
        }
        let pos_held = order.iter().position(|&s| s == held).expect("held seq");
        assert!(
            order[..pos_held].iter().any(|&s| s > held),
            "seq {held} must arrive after a later packet, order {order:?}"
        );
    }

    #[test]
    fn dead_destination_port_fails_over_routing() {
        let fabric = Fabric::new(2, 3, FabricConfig::test_default());
        assert_eq!(fabric.route(1, 1).index(), 1);
        fabric.context(1, 1).kill();
        assert_eq!(
            fabric.route(1, 1).index(),
            2,
            "delivery fails over to the next surviving context"
        );
        fabric.context(1, 2).kill();
        assert_eq!(fabric.route(1, 1).index(), 0);
    }

    #[test]
    fn kill_trigger_fires_at_the_observation_threshold() {
        let fabric = Fabric::new(2, 2, FabricConfig::test_default());
        fabric.enable_chaos(FaultPlan::seeded(4).kill(1, 1, 5));
        let spc = SpcSet::new();
        for seq in 0..5 {
            fabric.deliver_observed(packet(1, seq), 0, &spc);
            assert!(fabric.context(1, 1).is_alive());
        }
        fabric.deliver_observed(packet(1, 5), 0, &spc);
        assert!(
            !fabric.context(1, 1).is_alive(),
            "kill fires past threshold"
        );
        assert!(fabric.context(1, 0).is_alive(), "only the victim dies");
    }

    #[test]
    #[should_panic(expected = "armed once")]
    fn double_chaos_arming_is_rejected() {
        let fabric = Fabric::new(2, 1, FabricConfig::test_default());
        fabric.enable_chaos(FaultPlan::seeded(1));
        fabric.enable_chaos(FaultPlan::seeded(2));
    }
}
