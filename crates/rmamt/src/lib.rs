//! The RMA-MT benchmark (Dosanjh et al., CCGrid'16 — reference \[7\] in
//! the paper): a multithreaded one-sided stress test.
//!
//! N threads of one rank each perform `ops_per_thread` RMA operations of a
//! given size toward a passive target rank, then synchronize with
//! `MPI_Win_flush` (`-o put -s flush` in the original benchmark, the
//! configuration of paper §IV-F). Like the Multirate crate, it offers a
//! native backend over the real runtime and a virtual-time backend for the
//! figure harnesses.

use std::sync::Arc;
use std::time::Instant;

use fairmpi::{Assignment, DesignConfig, ProgressMode, SpcSnapshot, World};
use fairmpi_vsim::{Machine, RmamtResult, RmamtSim, SimAssignment, SimProgress};

/// Which one-sided operation the threads issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmaOpKind {
    /// `MPI_Put` (the paper's headline configuration).
    Put,
    /// `MPI_Get`.
    Get,
    /// `MPI_Fetch_and_op(MPI_SUM)`.
    FetchAdd,
}

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct RmamtConfig {
    /// Origin-side threads.
    pub threads: usize,
    /// Payload bytes per operation.
    pub msg_size: usize,
    /// Operations per thread between flushes (paper: 1000).
    pub ops_per_thread: usize,
    /// Operation kind.
    pub op: RmaOpKind,
    /// Runtime design (instances, assignment, progress).
    pub design: DesignConfig,
    /// Fabric cost model for the native backend.
    pub fabric: fairmpi::FabricConfig,
}

impl Default for RmamtConfig {
    fn default() -> Self {
        Self {
            threads: 2,
            msg_size: 8,
            ops_per_thread: 100,
            op: RmaOpKind::Put,
            design: DesignConfig::default(),
            fabric: fairmpi::FabricConfig::test_default(),
        }
    }
}

impl RmamtConfig {
    /// Total operations across threads.
    pub fn total_ops(&self) -> u64 {
        (self.threads * self.ops_per_thread) as u64
    }
}

/// Result of a native run.
#[derive(Debug, Clone)]
pub struct RmamtReport {
    /// Aggregate operation rate (ops per wall-clock second).
    pub msg_rate_per_s: f64,
    /// Wall-clock duration in nanoseconds.
    pub elapsed_ns: u64,
    /// Operations performed.
    pub total_ops: u64,
    /// Origin-rank counters.
    pub spc: SpcSnapshot,
}

/// Execute on real threads over the real runtime: rank 0 hosts the
/// threads, rank 1 is the passive target (never entering the library, as
/// one-sided semantics allow).
pub fn run_native(cfg: &RmamtConfig) -> RmamtReport {
    assert!(cfg.threads >= 1 && cfg.ops_per_thread >= 1);
    // Each thread writes to a disjoint window region.
    let region = cfg.msg_size.max(8).next_multiple_of(8);
    let world = Arc::new(
        World::builder()
            .ranks(2)
            .fabric(cfg.fabric.clone())
            .design(cfg.design)
            .build(),
    );
    let win_id = world.allocate_window(region * cfg.threads);

    let start = Instant::now();
    crossbeam::thread::scope(|scope| {
        for t in 0..cfg.threads {
            let world = Arc::clone(&world);
            let cfg2 = cfg.clone();
            scope.spawn(move |_| {
                let proc = world.proc(0);
                let win = proc.window(win_id).expect("window");
                let payload = vec![t as u8; cfg2.msg_size];
                let offset = t * region;
                for i in 0..cfg2.ops_per_thread {
                    match cfg2.op {
                        RmaOpKind::Put => win.put(1, offset, &payload).expect("put"),
                        RmaOpKind::Get => {
                            let _ = win.get(1, offset, cfg2.msg_size).expect("get");
                        }
                        RmaOpKind::FetchAdd => {
                            let _ = win.fetch_add(1, offset, i as u64).expect("fetch_add");
                        }
                    }
                }
                win.flush(1).expect("flush");
            });
        }
    })
    .expect("benchmark threads");
    let elapsed_ns = start.elapsed().as_nanos() as u64;

    let total = cfg.total_ops();
    RmamtReport {
        msg_rate_per_s: total as f64 / (elapsed_ns as f64 / 1e9),
        elapsed_ns,
        total_ops: total,
        spc: world.proc(0).spc_snapshot(),
    }
}

/// Execute under the virtual-time executor. Only the put/flush path is
/// simulated (the paper's configuration); get and fetch-add share its
/// timing profile at the origin.
pub fn run_virtual(cfg: &RmamtConfig, machine: &Machine, seed: u64) -> RmamtResult {
    RmamtSim {
        machine: machine.clone(),
        threads: cfg.threads,
        msg_size: cfg.msg_size,
        ops_per_thread: cfg.ops_per_thread,
        instances: cfg.design.num_instances,
        assignment: match cfg.design.assignment {
            Assignment::RoundRobin => SimAssignment::RoundRobin,
            Assignment::Dedicated => SimAssignment::Dedicated,
        },
        progress: match cfg.design.progress {
            ProgressMode::Serial => SimProgress::Serial,
            ProgressMode::Concurrent => SimProgress::Concurrent,
        },
        seed,
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairmpi::Counter;
    use fairmpi_vsim::MachinePreset;

    #[test]
    fn native_put_flush_completes_and_data_lands() {
        let cfg = RmamtConfig {
            threads: 3,
            msg_size: 16,
            ops_per_thread: 20,
            design: DesignConfig::builder().proposed(3).build().unwrap(),
            ..RmamtConfig::default()
        };
        let report = run_native(&cfg);
        assert_eq!(report.total_ops, 60);
        assert_eq!(report.spc[Counter::RmaPuts], 60);
        assert!(report.spc[Counter::RmaFlushes] >= 3);
    }

    #[test]
    fn native_get_and_fetch_add() {
        for op in [RmaOpKind::Get, RmaOpKind::FetchAdd] {
            let cfg = RmamtConfig {
                threads: 2,
                ops_per_thread: 10,
                op,
                ..RmamtConfig::default()
            };
            let report = run_native(&cfg);
            assert_eq!(report.total_ops, 20, "{op:?}");
        }
    }

    #[test]
    fn virtual_backend_runs() {
        let cfg = RmamtConfig {
            threads: 4,
            ops_per_thread: 50,
            design: DesignConfig::builder().proposed(32).build().unwrap(),
            ..RmamtConfig::default()
        };
        let machine = Machine::preset(MachinePreset::TrinititeHaswell);
        let result = run_virtual(&cfg, &machine, 5);
        assert_eq!(result.total_ops, 200);
        assert!(result.msg_rate_per_s > 0.0);
        assert!(result.msg_rate_per_s <= result.theoretical_peak_per_s + 1.0);
    }
}
