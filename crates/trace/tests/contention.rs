//! End-to-end: trace a virtual-time Multirate run and check that the
//! consumers see what the paper says they should — with every thread pair
//! funneling through one shared CRI, the instance lock dominates the
//! contention report.
//!
//! Kept as one `#[test]` because the recorder is process-global.

#![cfg(feature = "enabled")]

use fairmpi_trace as trace;
use fairmpi_vsim::{
    workload::multirate::SimMatchLayout, Machine, MachinePreset, MultirateSim, SimAssignment,
    SimDesign, SimProgress,
};

#[test]
fn one_cri_run_ranks_the_instance_lock_top() {
    trace::start_virtual();
    let sim = MultirateSim {
        machine: Machine::preset(MachinePreset::Alembert),
        pairs: 20,
        window: 16,
        iterations: 2,
        design: SimDesign {
            instances: 1,
            assignment: SimAssignment::RoundRobin,
            progress: SimProgress::Serial,
            matching: SimMatchLayout::SingleComm,
            allow_overtaking: false,
            any_tag: false,
            big_lock: false,
            process_mode: false,
            offload_workers: 0,
            chaos_drop_pm: 0,
            chaos_dup_pm: 0,
            chaos_seed: 0,
        },
        seed: 7,
        cost: None,
    };
    let (result, series) = sim.run_observed(Some(50_000));
    let t = trace::stop();

    assert!(result.total_messages > 0);

    // The contention report exists and is led by the shared instance lock.
    let report = t.contention_report();
    assert!(!report.locks.is_empty(), "no lock events recorded");
    let top = &report.locks[0];
    assert!(
        top.name.starts_with("instance["),
        "expected the shared CRI lock to dominate, got {:?}",
        report.locks.iter().map(|l| &l.name).collect::<Vec<_>>()
    );
    assert!(top.contended > 0, "20 pairs on one instance must contend");
    assert!(top.total_wait_ns > 0);

    // Per-track virtual timestamps never run backwards: each actor is
    // resumed by one simulator at increasing virtual times.
    for track in &t.tracks {
        for pair in track.events.windows(2) {
            assert!(
                pair[0].ts_ns <= pair[1].ts_ns,
                "track {} regressed from {} to {}",
                track.name,
                pair[0].ts_ns,
                pair[1].ts_ns
            );
        }
    }

    // Actor tracks carry the workload's names.
    assert!(t.tracks.iter().any(|tr| tr.name.starts_with("sender[")));
    assert!(t.tracks.iter().any(|tr| tr.name.starts_with("recv[")));

    // The Chrome export of a real run parses back as JSON.
    let json = trace::json::parse(&t.to_chrome_json()).expect("chrome export must be valid JSON");
    let events = json
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // The SPC series sampled the run and saw traffic.
    let series = series.expect("series requested");
    assert!(
        series.len() > 1,
        "a multi-interval run yields several samples"
    );
    let csv = series.to_csv();
    assert!(csv.starts_with("time_s,messages_sent"));
    assert!(csv.lines().count() == series.len() + 1);
}
