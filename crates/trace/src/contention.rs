//! The lock-contention report: the data behind the paper's "one big lock
//! collapses" story, aggregated from lock events.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::event::EventKind;
use crate::trace_data::Trace;

/// Number of log2 wait-time histogram buckets (bucket `i` covers waits in
/// `[2^i, 2^(i+1))` ns; the last bucket absorbs everything longer).
pub const WAIT_HIST_BUCKETS: usize = 24;

/// Aggregated statistics for one lock.
#[derive(Debug, Clone)]
pub struct LockStats {
    /// Lock name.
    pub name: String,
    /// Successful acquisitions.
    pub acquisitions: u64,
    /// Acquisitions that had to wait (wait > 0).
    pub contended: u64,
    /// Failed non-blocking attempts.
    pub try_fails: u64,
    /// Total nanoseconds spent waiting.
    pub total_wait_ns: u64,
    /// Longest single wait.
    pub max_wait_ns: u64,
    /// Total nanoseconds the lock was held.
    pub total_hold_ns: u64,
    /// Longest single hold.
    pub max_hold_ns: u64,
    /// log2 histogram of per-acquisition wait times.
    pub wait_hist: [u64; WAIT_HIST_BUCKETS],
}

impl LockStats {
    fn new(name: String) -> Self {
        Self {
            name,
            acquisitions: 0,
            contended: 0,
            try_fails: 0,
            total_wait_ns: 0,
            max_wait_ns: 0,
            total_hold_ns: 0,
            max_hold_ns: 0,
            wait_hist: [0; WAIT_HIST_BUCKETS],
        }
    }

    /// Mean wait per acquisition in nanoseconds.
    pub fn mean_wait_ns(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.total_wait_ns as f64 / self.acquisitions as f64
        }
    }

    /// Fraction of acquisitions that waited.
    pub fn contention_rate(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }
}

fn hist_bucket(wait_ns: u64) -> usize {
    if wait_ns == 0 {
        0
    } else {
        (63 - wait_ns.leading_zeros() as usize).min(WAIT_HIST_BUCKETS - 1)
    }
}

/// Per-lock contention statistics ranked most-contended first.
#[derive(Debug, Clone, Default)]
pub struct ContentionReport {
    /// Locks sorted by total wait time, descending.
    pub locks: Vec<LockStats>,
}

impl Trace {
    /// Aggregate all lock events into a [`ContentionReport`].
    pub fn contention_report(&self) -> ContentionReport {
        let mut by_name: HashMap<u32, LockStats> = HashMap::new();
        for track in &self.tracks {
            for ev in &track.events {
                let stats = match ev.kind {
                    EventKind::LockAcquired | EventKind::LockReleased | EventKind::TryLockFail => {
                        by_name
                            .entry(ev.name.0)
                            .or_insert_with(|| LockStats::new(self.name(ev.name).to_string()))
                    }
                    _ => continue,
                };
                match ev.kind {
                    EventKind::LockAcquired => {
                        stats.acquisitions += 1;
                        if ev.arg > 0 {
                            stats.contended += 1;
                        }
                        stats.total_wait_ns += ev.arg;
                        stats.max_wait_ns = stats.max_wait_ns.max(ev.arg);
                        stats.wait_hist[hist_bucket(ev.arg)] += 1;
                    }
                    EventKind::LockReleased => {
                        stats.total_hold_ns += ev.arg;
                        stats.max_hold_ns = stats.max_hold_ns.max(ev.arg);
                    }
                    EventKind::TryLockFail => stats.try_fails += 1,
                    _ => unreachable!(),
                }
            }
        }
        let mut locks: Vec<LockStats> = by_name.into_values().collect();
        locks.sort_by(|a, b| {
            b.total_wait_ns
                .cmp(&a.total_wait_ns)
                .then(b.try_fails.cmp(&a.try_fails))
                .then(a.name.cmp(&b.name))
        });
        ContentionReport { locks }
    }
}

impl ContentionReport {
    /// Render the top `n` locks as an aligned text table with a compact
    /// wait histogram (`·▁▂▃▄▅▆▇█` per power-of-two decade).
    pub fn render(&self, n: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>8} {:>8} {:>12} {:>10} {:>12} {:>7}  wait histogram (1ns→8ms, log2)",
            "lock", "acq", "cont", "tryfail", "wait total", "wait mean", "hold total", "cont%"
        );
        for s in self.locks.iter().take(n) {
            let spark: String = s
                .wait_hist
                .iter()
                .map(|&c| {
                    let glyphs = ['·', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
                    if c == 0 {
                        glyphs[0]
                    } else {
                        let mag = (64 - c.leading_zeros() as usize).min(8);
                        glyphs[mag.max(1)]
                    }
                })
                .collect();
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>8} {:>8} {:>12} {:>10} {:>12} {:>6.1}%  {}",
                s.name,
                s.acquisitions,
                s.contended,
                s.try_fails,
                fmt_ns(s.total_wait_ns),
                fmt_ns(s.mean_wait_ns() as u64),
                fmt_ns(s.total_hold_ns),
                100.0 * s.contention_rate(),
                spark
            );
        }
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, NameId};
    use crate::trace_data::TrackData;

    fn lock_ev(kind: EventKind, name: u32, arg: u64) -> Event {
        Event {
            ts_ns: 0,
            kind,
            name: NameId(name),
            arg,
        }
    }

    #[test]
    fn ranks_by_total_wait_and_aggregates() {
        let trace = Trace {
            names: vec!["cheap".into(), "hot".into()],
            tracks: vec![TrackData {
                name: "t".into(),
                events: vec![
                    lock_ev(EventKind::LockAcquired, 0, 10),
                    lock_ev(EventKind::LockReleased, 0, 100),
                    lock_ev(EventKind::LockAcquired, 1, 5_000),
                    lock_ev(EventKind::LockAcquired, 1, 0),
                    lock_ev(EventKind::LockReleased, 1, 900),
                    lock_ev(EventKind::TryLockFail, 1, 0),
                ],
                dropped: 0,
            }],
        };
        let report = trace.contention_report();
        assert_eq!(report.locks.len(), 2);
        assert_eq!(report.locks[0].name, "hot");
        assert_eq!(report.locks[0].acquisitions, 2);
        assert_eq!(report.locks[0].contended, 1);
        assert_eq!(report.locks[0].try_fails, 1);
        assert_eq!(report.locks[0].total_wait_ns, 5_000);
        assert_eq!(report.locks[0].max_hold_ns, 900);
        assert!((report.locks[0].contention_rate() - 0.5).abs() < 1e-9);
        // 5000 ns falls in bucket floor(log2(5000)) = 12.
        assert_eq!(report.locks[0].wait_hist[12], 1);
        let table = report.render(10);
        assert!(table.contains("hot"));
        assert!(table.contains("cheap"));
    }
}
