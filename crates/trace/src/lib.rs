//! Event tracing for the runtime and the virtual-time simulator.
//!
//! The paper's analysis lives or dies on internal visibility: Table II's
//! out-of-sequence counts and match-time inflation are *why* each design
//! wins or collapses. This crate records what the end-of-run SPC totals
//! cannot show — lock convoys forming, progress polls starving, message
//! rate evolving over time.
//!
//! # Architecture
//!
//! * A process-global recorder holds one ring buffer per **track** (a
//!   native thread or a simulated actor). Hot-path hooks check a single
//!   relaxed atomic and bail when the recorder is disarmed.
//! * Timestamps come from a [`Clock`]: [`WallClock`] for native threads,
//!   [`VirtualClock`] when `fairmpi-vsim` drives time.
//! * With the `enabled` cargo feature off, every hook is an empty
//!   `#[inline(always)]` function — instrumented crates compile to exactly
//!   the uninstrumented code.
//!
//! # Consumers
//!
//! * [`Trace::to_chrome_json`] — Chrome-trace-event JSON loadable in
//!   Perfetto (one track per thread/actor plus one per lock).
//! * [`Trace::contention_report`] — per-lock wait/hold statistics and a
//!   top-N contended ranking.
//! * [`SpcSeries`] — periodic [`fairmpi_spc::SpcSet`] snapshots turned
//!   into per-interval rate CSV.
//!
//! # Usage
//!
//! ```
//! # use fairmpi_trace as trace;
//! trace::start(Box::new(trace::WallClock::new()));
//! {
//!     let _span = trace::span("work");
//!     trace::instant("tick");
//! }
//! let t = trace::stop();
//! let json = t.to_chrome_json();
//! assert!(json.contains("traceEvents"));
//! ```
//!
//! Arm the recorder (`start`) **before** constructing the simulator or
//! runtime you want to observe: track and lock names are registered at
//! construction time.

mod chrome;
mod clock;
mod contention;
mod event;
pub mod json;
mod series;
mod trace_data;

#[cfg(feature = "enabled")]
mod recorder;
#[cfg(feature = "enabled")]
mod ring;

#[cfg(not(feature = "enabled"))]
mod noop;

pub use clock::{Clock, VirtualClock, WallClock};
pub use contention::{ContentionReport, LockStats, WAIT_HIST_BUCKETS};
pub use event::{Event, EventKind, NameId, TrackId};
pub use series::SpcSeries;
pub use trace_data::{Trace, TrackData};

#[cfg(feature = "enabled")]
pub use recorder::{
    counter, current_track, instant, intern, is_armed, lock_acquired, lock_acquired_at,
    lock_released, lock_released_at, lock_wait_at, now_ns, register_track, set_current_track,
    set_virtual_now, slice_at, span, start, start_with_capacity, stop, try_lock_fail,
    try_lock_fail_at, NameCache, SpanGuard,
};

#[cfg(not(feature = "enabled"))]
pub use noop::{
    counter, current_track, instant, intern, is_armed, lock_acquired, lock_acquired_at,
    lock_released, lock_released_at, lock_wait_at, now_ns, register_track, set_current_track,
    set_virtual_now, slice_at, span, start, start_with_capacity, stop, try_lock_fail,
    try_lock_fail_at, NameCache, SpanGuard,
};

/// Arm the recorder on wall-clock time (native threads).
pub fn start_wall() {
    start(Box::new(WallClock::new()));
}

/// Arm the recorder on virtual time (driven via [`set_virtual_now`] by the
/// simulator's event loop).
pub fn start_virtual() {
    start(Box::new(VirtualClock));
}
