//! The process-global recorder (compiled only with the `enabled` feature).
//!
//! Hot-path discipline: every public hook first checks one relaxed atomic
//! (`ARMED`); disarmed hooks return before touching any lock. Armed hooks
//! take exactly one uncontended mutex — the target track's ring — plus, for
//! string-named events, a read-mostly interner lock.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex, RwLock};

use crate::clock::{Clock, VIRTUAL_NOW};
use crate::event::{Event, EventKind, NameId, TrackId};
use crate::ring::Ring;
use crate::trace_data::{Trace, TrackData};

/// Default per-track ring capacity (events).
const DEFAULT_RING_CAPACITY: usize = 1 << 16;

static ARMED: AtomicBool = AtomicBool::new(false);
/// Bumped on every `start`; invalidates thread-local track caches and
/// [`NameCache`] entries from earlier recording sessions.
static EPOCH: AtomicU64 = AtomicU64::new(0);

struct TrackBuf {
    name: String,
    ring: Mutex<Ring>,
}

struct Registry {
    names: Vec<String>,
    name_ids: HashMap<String, u32>,
    capacity: usize,
    clock: Option<Box<dyn Clock>>,
}

static REGISTRY: LazyLock<Mutex<Registry>> = LazyLock::new(|| {
    Mutex::new(Registry {
        names: Vec::new(),
        name_ids: HashMap::new(),
        capacity: DEFAULT_RING_CAPACITY,
        clock: None,
    })
});

/// Track list, read on every event; only `register_track` writes.
static TRACKS: LazyLock<RwLock<Vec<Arc<TrackBuf>>>> = LazyLock::new(|| RwLock::new(Vec::new()));

thread_local! {
    /// (epoch, track index) — the track this thread emits to by default.
    static CURRENT: Cell<(u64, u32)> = const { Cell::new((0, u32::MAX)) };
}

/// Whether the recorder is collecting events.
#[inline]
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arm the recorder with the default ring capacity, discarding any state
/// from a previous session.
pub fn start(clock: Box<dyn Clock>) {
    start_with_capacity(clock, DEFAULT_RING_CAPACITY);
}

/// Arm the recorder with an explicit per-track ring capacity.
pub fn start_with_capacity(clock: Box<dyn Clock>, ring_capacity: usize) {
    let mut reg = REGISTRY.lock().unwrap();
    reg.names.clear();
    reg.name_ids.clear();
    reg.capacity = ring_capacity.max(1);
    reg.clock = Some(clock);
    TRACKS.write().unwrap().clear();
    VIRTUAL_NOW.store(0, Ordering::Relaxed);
    EPOCH.fetch_add(1, Ordering::Relaxed);
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarm the recorder and collect everything recorded since `start`.
pub fn stop() -> Trace {
    ARMED.store(false, Ordering::SeqCst);
    let mut reg = REGISTRY.lock().unwrap();
    reg.clock = None;
    let names = std::mem::take(&mut reg.names);
    reg.name_ids.clear();
    drop(reg);
    let bufs = std::mem::take(&mut *TRACKS.write().unwrap());
    let tracks = bufs
        .into_iter()
        .map(|buf| {
            // The Arc is uniquely held once disarmed: emitters only hold it
            // across one push, and no push starts after the SeqCst store.
            // Lose the events rather than block if a raced emitter lingers.
            match Arc::try_unwrap(buf) {
                Ok(t) => {
                    let ring = t.ring.into_inner().unwrap();
                    let dropped = ring.dropped();
                    TrackData {
                        name: t.name,
                        events: ring.into_vec(),
                        dropped,
                    }
                }
                Err(shared) => TrackData {
                    name: shared.name.clone(),
                    events: Vec::new(),
                    dropped: 0,
                },
            }
        })
        .collect();
    Trace { names, tracks }
}

/// Advance virtual time (called by the simulator's event loop).
#[inline]
pub fn set_virtual_now(ns: u64) {
    if is_armed() {
        VIRTUAL_NOW.store(ns, Ordering::Relaxed);
    }
}

/// Current time per the armed clock (0 when disarmed).
#[inline]
pub fn now_ns() -> u64 {
    if !is_armed() {
        return 0;
    }
    REGISTRY
        .lock()
        .unwrap()
        .clock
        .as_ref()
        .map(|c| c.now_ns())
        .unwrap_or(0)
}

/// Intern a name. Returns [`NameId::INVALID`] while disarmed.
pub fn intern(name: &str) -> NameId {
    if !is_armed() {
        return NameId::INVALID;
    }
    let mut reg = REGISTRY.lock().unwrap();
    if let Some(&id) = reg.name_ids.get(name) {
        return NameId(id);
    }
    let id = reg.names.len() as u32;
    reg.names.push(name.to_string());
    reg.name_ids.insert(name.to_string(), id);
    NameId(id)
}

/// Register a new event track. Returns [`TrackId::INVALID`] while disarmed.
pub fn register_track(name: &str) -> TrackId {
    if !is_armed() {
        return TrackId::INVALID;
    }
    let capacity = REGISTRY.lock().unwrap().capacity;
    let mut tracks = TRACKS.write().unwrap();
    let id = tracks.len() as u32;
    tracks.push(Arc::new(TrackBuf {
        name: name.to_string(),
        ring: Mutex::new(Ring::new(capacity)),
    }));
    TrackId(id)
}

/// Route this thread's subsequent implicit-track events to `track` (the
/// simulator calls this before each actor step).
#[inline]
pub fn set_current_track(track: TrackId) {
    CURRENT.with(|c| c.set((EPOCH.load(Ordering::Relaxed), track.0)));
}

/// The thread's current track, auto-registering one named after the OS
/// thread on first use in a session.
pub fn current_track() -> TrackId {
    let epoch = EPOCH.load(Ordering::Relaxed);
    let (e, t) = CURRENT.with(|c| c.get());
    if e == epoch && t != u32::MAX {
        return TrackId(t);
    }
    let name = std::thread::current()
        .name()
        .map(|n| n.to_string())
        .unwrap_or_else(|| format!("{:?}", std::thread::current().id()));
    let track = register_track(&name);
    if track != TrackId::INVALID {
        CURRENT.with(|c| c.set((epoch, track.0)));
    }
    track
}

#[inline]
fn emit(track: TrackId, ev: Event) {
    if track == TrackId::INVALID || ev.name == NameId::INVALID {
        return;
    }
    let tracks = TRACKS.read().unwrap();
    let Some(buf) = tracks.get(track.0 as usize) else {
        return;
    };
    buf.ring.lock().unwrap().push(ev);
}

/// A RAII span on the current track: begins at creation, ends at drop.
#[must_use = "the span ends when the guard drops"]
pub struct SpanGuard {
    track: TrackId,
    name: NameId,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.track != TrackId::INVALID && is_armed() {
            emit(
                self.track,
                Event {
                    ts_ns: now_ns(),
                    kind: EventKind::SpanEnd,
                    name: self.name,
                    arg: 0,
                },
            );
        }
    }
}

/// Open a named span on the current track.
#[inline]
pub fn span(name: &str) -> SpanGuard {
    if !is_armed() {
        return SpanGuard {
            track: TrackId::INVALID,
            name: NameId::INVALID,
        };
    }
    let track = current_track();
    let name = intern(name);
    emit(
        track,
        Event {
            ts_ns: now_ns(),
            kind: EventKind::SpanBegin,
            name,
            arg: 0,
        },
    );
    SpanGuard { track, name }
}

/// A point event on the current track.
#[inline]
pub fn instant(name: &str) {
    if !is_armed() {
        return;
    }
    let track = current_track();
    emit(
        track,
        Event {
            ts_ns: now_ns(),
            kind: EventKind::Instant,
            name: intern(name),
            arg: 0,
        },
    );
}

/// A sampled value on the current track.
#[inline]
pub fn counter(name: &str, value: u64) {
    if !is_armed() {
        return;
    }
    let track = current_track();
    emit(
        track,
        Event {
            ts_ns: now_ns(),
            kind: EventKind::Counter,
            name: intern(name),
            arg: value,
        },
    );
}

/// A complete slice at an explicit (possibly future) timestamp — the
/// simulator uses this for sleeps/yields whose end time it already knows.
#[inline]
pub fn slice_at(track: TrackId, name: NameId, ts_ns: u64, dur_ns: u64) {
    if !is_armed() {
        return;
    }
    emit(
        track,
        Event {
            ts_ns,
            kind: EventKind::Slice,
            name,
            arg: dur_ns,
        },
    );
}

/// Record that `track` started waiting on a lock at `ts_ns`.
#[inline]
pub fn lock_wait_at(track: TrackId, lock: NameId, ts_ns: u64) {
    if !is_armed() {
        return;
    }
    emit(
        track,
        Event {
            ts_ns,
            kind: EventKind::LockWait,
            name: lock,
            arg: 0,
        },
    );
}

/// Record a lock acquisition at an explicit timestamp with its wait time.
#[inline]
pub fn lock_acquired_at(track: TrackId, lock: NameId, ts_ns: u64, wait_ns: u64) {
    if !is_armed() {
        return;
    }
    emit(
        track,
        Event {
            ts_ns,
            kind: EventKind::LockAcquired,
            name: lock,
            arg: wait_ns,
        },
    );
}

/// Record a lock release at an explicit timestamp with its hold time.
#[inline]
pub fn lock_released_at(track: TrackId, lock: NameId, ts_ns: u64, hold_ns: u64) {
    if !is_armed() {
        return;
    }
    emit(
        track,
        Event {
            ts_ns,
            kind: EventKind::LockReleased,
            name: lock,
            arg: hold_ns,
        },
    );
}

/// Record a failed non-blocking acquisition at an explicit timestamp.
#[inline]
pub fn try_lock_fail_at(track: TrackId, lock: NameId, ts_ns: u64) {
    if !is_armed() {
        return;
    }
    emit(
        track,
        Event {
            ts_ns,
            kind: EventKind::TryLockFail,
            name: lock,
            arg: 0,
        },
    );
}

/// [`lock_acquired_at`] on the current track at the current time.
#[inline]
pub fn lock_acquired(lock: NameId, wait_ns: u64) {
    if !is_armed() {
        return;
    }
    lock_acquired_at(current_track(), lock, now_ns(), wait_ns);
}

/// [`lock_released_at`] on the current track at the current time.
#[inline]
pub fn lock_released(lock: NameId, hold_ns: u64) {
    if !is_armed() {
        return;
    }
    lock_released_at(current_track(), lock, now_ns(), hold_ns);
}

/// [`try_lock_fail_at`] on the current track at the current time.
#[inline]
pub fn try_lock_fail(lock: NameId) {
    if !is_armed() {
        return;
    }
    try_lock_fail_at(current_track(), lock, now_ns());
}

/// An epoch-aware cached [`NameId`] for long-lived objects (a CRI, a
/// progress engine) that outlive recording sessions: re-interns when a new
/// session starts, costs one relaxed load per event otherwise.
#[derive(Debug, Default)]
pub struct NameCache {
    /// `epoch << 32 | name_id` (0 = never interned).
    packed: AtomicU64,
}

impl NameCache {
    /// An empty cache.
    pub const fn new() -> Self {
        Self {
            packed: AtomicU64::new(0),
        }
    }

    /// The interned id for this session, or `None` while disarmed.
    /// `make_name` runs only on the first use per session.
    pub fn get(&self, make_name: impl FnOnce() -> String) -> Option<NameId> {
        if !is_armed() {
            return None;
        }
        let epoch = EPOCH.load(Ordering::Relaxed);
        let packed = self.packed.load(Ordering::Relaxed);
        if packed >> 32 == epoch {
            return Some(NameId(packed as u32));
        }
        let id = intern(&make_name());
        if id == NameId::INVALID {
            return None;
        }
        self.packed
            .store(epoch << 32 | id.0 as u64, Ordering::Relaxed);
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{VirtualClock, WallClock};

    /// The recorder is process-global; tests that arm it must not overlap.
    static SESSION: Mutex<()> = Mutex::new(());

    fn session() -> std::sync::MutexGuard<'static, ()> {
        SESSION.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn concurrent_writers_wrap_one_ring() {
        let _s = session();
        start_with_capacity(Box::new(WallClock::new()), 8);
        let track = register_track("shared");
        let name = intern("ev");
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..100u64 {
                        slice_at(track, name, t * 1000 + i, 1);
                    }
                });
            }
        });
        let trace = stop();
        let shared = &trace.tracks[0];
        assert_eq!(shared.name, "shared");
        assert_eq!(shared.events.len(), 8, "ring keeps exactly its capacity");
        assert_eq!(
            shared.dropped,
            400 - 8,
            "everything else counted as dropped"
        );
        assert!(shared.events.iter().all(|e| e.name == name));
    }

    #[test]
    fn wall_timestamps_are_monotonic_per_track() {
        let _s = session();
        start(Box::new(WallClock::new()));
        for i in 0..50 {
            let _span = span("work");
            counter("i", i);
            instant("tick");
        }
        let trace = stop();
        let track = trace.tracks.iter().find(|t| !t.events.is_empty()).unwrap();
        assert_eq!(
            track.events.len(),
            200,
            "begin+counter+instant+end per loop"
        );
        for pair in track.events.windows(2) {
            assert!(
                pair[0].ts_ns <= pair[1].ts_ns,
                "wall timestamps regressed: {} > {}",
                pair[0].ts_ns,
                pair[1].ts_ns
            );
        }
    }

    #[test]
    fn virtual_timestamps_track_the_simulated_clock() {
        let _s = session();
        start(Box::new(VirtualClock));
        let track = register_track("actor");
        set_current_track(track);
        for now in [10u64, 10, 25, 40] {
            set_virtual_now(now);
            instant("step");
        }
        let trace = stop();
        let actor = &trace.tracks[0];
        let ts: Vec<u64> = actor.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![10, 10, 25, 40]);
    }

    #[test]
    fn disarmed_hooks_hand_out_invalid_ids_and_record_nothing() {
        let _s = session();
        assert!(!is_armed());
        assert_eq!(intern("x"), NameId::INVALID);
        assert_eq!(register_track("x"), TrackId::INVALID);
        instant("x");
        counter("x", 1);
        let _ = span("x");
        let cache = NameCache::new();
        assert_eq!(
            cache.get(|| unreachable!("must not intern while disarmed")),
            None
        );
    }

    #[test]
    fn name_cache_reinterns_across_sessions() {
        let _s = session();
        let cache = NameCache::new();
        start(Box::new(WallClock::new()));
        let first = cache.get(|| "lock".to_string()).unwrap();
        assert_eq!(cache.get(|| unreachable!("cached")), Some(first));
        stop();
        start(Box::new(WallClock::new()));
        let second = cache.get(|| "lock".to_string()).unwrap();
        assert_eq!(cache.get(|| unreachable!("cached")), Some(second));
        stop();
    }
}
