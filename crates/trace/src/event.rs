//! The compact in-buffer event representation.

/// Interned event/lock name. `NameId::INVALID` marks names interned while
/// the recorder was disarmed; events carrying it are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(pub u32);

impl NameId {
    /// Sentinel for "interned while disarmed".
    pub const INVALID: NameId = NameId(u32::MAX);
}

/// One event stream: a native thread or a simulated actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(pub u32);

impl TrackId {
    /// Sentinel for "registered while disarmed".
    pub const INVALID: TrackId = TrackId(u32::MAX);
}

/// What an [`Event`] records. The meaning of [`Event::arg`] depends on the
/// kind (durations for lock events and slices, the value for counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`arg` unused).
    SpanBegin,
    /// The innermost open span of the same name closed (`arg` unused).
    SpanEnd,
    /// A point event (`arg` unused).
    Instant,
    /// A sampled value (`arg` = value).
    Counter,
    /// A complete slice starting at `ts_ns` (`arg` = duration in ns).
    Slice,
    /// The track started waiting for lock `name` (`arg` unused).
    LockWait,
    /// The track acquired lock `name` (`arg` = wait time in ns; 0 when
    /// uncontended).
    LockAcquired,
    /// The track released lock `name` (`arg` = hold time in ns).
    LockReleased,
    /// A non-blocking acquisition attempt on lock `name` failed
    /// (`arg` unused).
    TryLockFail,
}

/// One recorded event (24 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Timestamp in clock nanoseconds (wall or virtual).
    pub ts_ns: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Interned name (event label or lock name).
    pub name: NameId,
    /// Kind-dependent payload (duration, counter value).
    pub arg: u64,
}
