//! Hook stubs compiled when the `enabled` feature is off: every function
//! is an empty `#[inline(always)]`, so instrumented crates carry zero
//! tracing overhead — the optimizer erases the calls entirely.

use crate::clock::Clock;
use crate::event::{NameId, TrackId};
use crate::trace_data::Trace;

/// Always `false` without the `enabled` feature.
#[inline(always)]
pub fn is_armed() -> bool {
    false
}

/// No-op.
#[inline(always)]
pub fn start(_clock: Box<dyn Clock>) {}

/// No-op.
#[inline(always)]
pub fn start_with_capacity(_clock: Box<dyn Clock>, _ring_capacity: usize) {}

/// Returns an empty [`Trace`].
#[inline(always)]
pub fn stop() -> Trace {
    Trace::default()
}

/// No-op.
#[inline(always)]
pub fn set_virtual_now(_ns: u64) {}

/// Always 0.
#[inline(always)]
pub fn now_ns() -> u64 {
    0
}

/// Always [`NameId::INVALID`].
#[inline(always)]
pub fn intern(_name: &str) -> NameId {
    NameId::INVALID
}

/// Always [`TrackId::INVALID`].
#[inline(always)]
pub fn register_track(_name: &str) -> TrackId {
    TrackId::INVALID
}

/// No-op.
#[inline(always)]
pub fn set_current_track(_track: TrackId) {}

/// Always [`TrackId::INVALID`].
#[inline(always)]
pub fn current_track() -> TrackId {
    TrackId::INVALID
}

/// A zero-sized span guard.
#[must_use = "the span ends when the guard drops"]
pub struct SpanGuard;

/// No-op; returns a zero-sized guard.
#[inline(always)]
pub fn span(_name: &str) -> SpanGuard {
    SpanGuard
}

/// No-op.
#[inline(always)]
pub fn instant(_name: &str) {}

/// No-op.
#[inline(always)]
pub fn counter(_name: &str, _value: u64) {}

/// No-op.
#[inline(always)]
pub fn slice_at(_track: TrackId, _name: NameId, _ts_ns: u64, _dur_ns: u64) {}

/// No-op.
#[inline(always)]
pub fn lock_wait_at(_track: TrackId, _lock: NameId, _ts_ns: u64) {}

/// No-op.
#[inline(always)]
pub fn lock_acquired_at(_track: TrackId, _lock: NameId, _ts_ns: u64, _wait_ns: u64) {}

/// No-op.
#[inline(always)]
pub fn lock_released_at(_track: TrackId, _lock: NameId, _ts_ns: u64, _hold_ns: u64) {}

/// No-op.
#[inline(always)]
pub fn try_lock_fail_at(_track: TrackId, _lock: NameId, _ts_ns: u64) {}

/// No-op.
#[inline(always)]
pub fn lock_acquired(_lock: NameId, _wait_ns: u64) {}

/// No-op.
#[inline(always)]
pub fn lock_released(_lock: NameId, _hold_ns: u64) {}

/// No-op.
#[inline(always)]
pub fn try_lock_fail(_lock: NameId) {}

/// Zero-sized stand-in for the epoch-aware name cache.
#[derive(Debug, Default)]
pub struct NameCache;

impl NameCache {
    /// An empty cache.
    pub const fn new() -> Self {
        Self
    }

    /// Always `None` without the `enabled` feature.
    #[inline(always)]
    pub fn get(&self, _make_name: impl FnOnce() -> String) -> Option<NameId> {
        None
    }
}
