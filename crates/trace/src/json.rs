//! Hand-rolled JSON: a writer helper and a small recursive-descent parser.
//!
//! The workspace builds with no registry access, so serialization is done
//! by hand; the parser exists so tests can validate exported traces by
//! parsing them back.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape a string into a JSON string literal (without the quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// Any number (parsed as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (ordered for deterministic tests).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Returns a human-readable error with the
/// byte offset on malformed input.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Number)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let ch_len = utf8_len(c);
                let chunk = b
                    .get(*pos..*pos + ch_len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or("bad utf-8 in string")?;
                out.push_str(chunk);
                *pos += ch_len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "s": "he\"llo\n", "t": true, "n": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
        assert_eq!(v.get("s").unwrap().as_str(), Some("he\"llo\n"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[2].as_f64(), Some(-300.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
    }

    #[test]
    fn escape_handles_controls() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }
}
