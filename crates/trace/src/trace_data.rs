//! The collected result of one recording session.

use crate::event::{Event, NameId};

/// Everything one `stop()` call collected.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    /// Interned names; `Event::name` indexes into this.
    pub names: Vec<String>,
    /// One entry per registered track, in registration order.
    pub tracks: Vec<TrackData>,
}

/// One track's events.
#[derive(Debug, Default, Clone)]
pub struct TrackData {
    /// Track label (thread or actor name).
    pub name: String,
    /// Events oldest → newest. Per-track timestamps are monotonic: each
    /// track has a single logical writer (a thread, or the simulator
    /// acting for one actor).
    pub events: Vec<Event>,
    /// Events overwritten by ring wraparound.
    pub dropped: u64,
}

impl Trace {
    /// Resolve an interned name ("?" if out of range).
    pub fn name(&self, id: NameId) -> &str {
        self.names
            .get(id.0 as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Total events retained across all tracks.
    pub fn total_events(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Total events lost to ring wraparound.
    pub fn total_dropped(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }
}
