//! Chrome-trace-event (Perfetto-loadable) JSON export.
//!
//! Layout: pid 1 carries one named track per thread/actor; pid 2 carries
//! one track per lock, showing who held it and for how long. Open the
//! output at <https://ui.perfetto.dev> or `chrome://tracing`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{EventKind, NameId};
use crate::json::escape_into;
use crate::trace_data::Trace;

/// pid of thread/actor tracks.
const PID_THREADS: u32 = 1;
/// pid of per-lock tracks.
const PID_LOCKS: u32 = 2;
/// tid offset of per-lock tracks (locks get tids 1000, 1001, ...).
const LOCK_TID_BASE: u32 = 1000;

struct Writer {
    out: String,
    first: bool,
}

impl Writer {
    fn new() -> Self {
        Self {
            out: String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"),
            first: true,
        }
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push_str(",\n");
        }
    }

    /// Microsecond timestamp with sub-ns kept as fraction.
    fn ts(ns: u64) -> String {
        format!("{}.{:03}", ns / 1_000, ns % 1_000)
    }

    fn meta(&mut self, pid: u32, tid: u32, what: &str, name: &str) {
        self.sep();
        let _ = write!(
            self.out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{what}\",\"args\":{{\"name\":\""
        );
        escape_into(&mut self.out, name);
        self.out.push_str("\"}}");
    }

    fn event(&mut self, ph: char, pid: u32, tid: u32, ts_ns: u64, name: &str, extra: &str) {
        self.sep();
        let _ = write!(
            self.out,
            "{{\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":\"",
            Self::ts(ts_ns)
        );
        escape_into(&mut self.out, name);
        self.out.push('"');
        self.out.push_str(extra);
        self.out.push('}');
    }

    fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

impl Trace {
    /// Export as Chrome trace-event JSON (Perfetto-loadable).
    pub fn to_chrome_json(&self) -> String {
        let mut w = Writer::new();

        // Stable tids for every lock name seen in lock events.
        let mut lock_tids: BTreeMap<u32, u32> = BTreeMap::new();
        for track in &self.tracks {
            for ev in &track.events {
                if matches!(
                    ev.kind,
                    EventKind::LockWait
                        | EventKind::LockAcquired
                        | EventKind::LockReleased
                        | EventKind::TryLockFail
                ) {
                    let next = LOCK_TID_BASE + lock_tids.len() as u32;
                    lock_tids.entry(ev.name.0).or_insert(next);
                }
            }
        }

        w.meta(PID_THREADS, 0, "process_name", "threads");
        for (i, track) in self.tracks.iter().enumerate() {
            w.meta(PID_THREADS, i as u32 + 1, "thread_name", &track.name);
        }
        if !lock_tids.is_empty() {
            w.meta(PID_LOCKS, 0, "process_name", "locks");
            for (&name, &tid) in &lock_tids {
                w.meta(PID_LOCKS, tid, "thread_name", self.name(NameId(name)));
            }
        }

        for (i, track) in self.tracks.iter().enumerate() {
            let tid = i as u32 + 1;
            for ev in &track.events {
                let name = self.name(ev.name);
                match ev.kind {
                    EventKind::SpanBegin => {
                        w.event('B', PID_THREADS, tid, ev.ts_ns, name, "");
                    }
                    EventKind::SpanEnd => {
                        w.event('E', PID_THREADS, tid, ev.ts_ns, name, "");
                    }
                    EventKind::Instant => {
                        w.event('i', PID_THREADS, tid, ev.ts_ns, name, ",\"s\":\"t\"");
                    }
                    EventKind::Counter => {
                        let extra = format!(",\"args\":{{\"value\":{}}}", ev.arg);
                        w.event('C', PID_THREADS, tid, ev.ts_ns, name, &extra);
                    }
                    EventKind::Slice => {
                        let extra = format!(",\"dur\":{}", Writer::ts(ev.arg));
                        w.event('X', PID_THREADS, tid, ev.ts_ns, name, &extra);
                    }
                    EventKind::LockWait => {
                        let label = format!("{name} (wait…)");
                        w.event('i', PID_THREADS, tid, ev.ts_ns, &label, ",\"s\":\"t\"");
                    }
                    EventKind::LockAcquired => {
                        // The wait is rendered as a complete slice ending at
                        // the acquisition instant.
                        if ev.arg > 0 {
                            let label = format!("{name} (wait)");
                            let extra = format!(",\"dur\":{}", Writer::ts(ev.arg));
                            w.event(
                                'X',
                                PID_THREADS,
                                tid,
                                ev.ts_ns.saturating_sub(ev.arg),
                                &label,
                                &extra,
                            );
                        }
                    }
                    EventKind::LockReleased => {
                        // Hold slice on the lock's own track, labeled with
                        // the holder.
                        let lock_tid = lock_tids[&ev.name.0];
                        let extra = format!(",\"dur\":{}", Writer::ts(ev.arg));
                        w.event(
                            'X',
                            PID_LOCKS,
                            lock_tid,
                            ev.ts_ns.saturating_sub(ev.arg),
                            &track.name,
                            &extra,
                        );
                    }
                    EventKind::TryLockFail => {
                        let label = format!("{name} (try-fail)");
                        w.event('i', PID_THREADS, tid, ev.ts_ns, &label, ",\"s\":\"t\"");
                    }
                }
            }
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::json;
    use crate::trace_data::TrackData;

    fn ev(ts: u64, kind: EventKind, name: u32, arg: u64) -> Event {
        Event {
            ts_ns: ts,
            kind,
            name: NameId(name),
            arg,
        }
    }

    #[test]
    fn export_is_valid_json_with_expected_shape() {
        let trace = Trace {
            names: vec!["work".into(), "lockA".into(), "msgs".into()],
            tracks: vec![TrackData {
                name: "t0".into(),
                events: vec![
                    ev(1_000, EventKind::SpanBegin, 0, 0),
                    ev(1_500, EventKind::Counter, 2, 7),
                    ev(2_000, EventKind::SpanEnd, 0, 0),
                    ev(2_500, EventKind::LockWait, 1, 0),
                    ev(3_000, EventKind::LockAcquired, 1, 500),
                    ev(4_000, EventKind::LockReleased, 1, 1_000),
                    ev(4_100, EventKind::TryLockFail, 1, 0),
                    ev(4_200, EventKind::Slice, 0, 300),
                ],
                dropped: 0,
            }],
        };
        let out = trace.to_chrome_json();
        let doc = json::parse(&out).expect("exporter must emit valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert!(!events.is_empty());
        for e in events {
            for key in ["ph", "pid", "tid", "name"] {
                assert!(e.get(key).is_some(), "event missing {key}: {e:?}");
            }
        }
        // The lock hold slice lands on the lock's track under pid 2.
        let hold = events
            .iter()
            .find(|e| {
                e.get("pid").and_then(|p| p.as_f64()) == Some(2.0)
                    && e.get("ph").and_then(|p| p.as_str()) == Some("X")
            })
            .expect("lock hold slice");
        assert_eq!(hold.get("name").unwrap().as_str(), Some("t0"));
        // B/E balance per name.
        let b = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B"))
            .count();
        let e = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("E"))
            .count();
        assert_eq!(b, e);
    }
}
