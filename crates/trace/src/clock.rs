//! The clock abstraction: the same instrumentation runs on wall-clock time
//! (native threads) and on virtual time (driven by the simulator).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Global virtual-time register, advanced by the simulator's event loop
/// through [`crate::set_virtual_now`].
pub(crate) static VIRTUAL_NOW: AtomicU64 = AtomicU64::new(0);

/// A monotonic nanosecond source for event timestamps.
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds. Must be monotonic per thread.
    fn now_ns(&self) -> u64;
}

/// Wall-clock time, relative to the clock's creation.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose zero is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Virtual time: reads the register the simulator advances via
/// [`crate::set_virtual_now`]. Never advances on its own.
#[derive(Debug, Default)]
pub struct VirtualClock;

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        VIRTUAL_NOW.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_reads_the_register() {
        VIRTUAL_NOW.store(1234, Ordering::Relaxed);
        assert_eq!(VirtualClock.now_ns(), 1234);
        VIRTUAL_NOW.store(0, Ordering::Relaxed);
    }
}
