//! Time-series sampling of an [`SpcSet`]: periodic snapshots that turn the
//! cumulative counters into per-interval rates (message rate over virtual
//! time, match-time share per window, ...).

use std::fmt::Write as _;

use fairmpi_spc::{Counter, SpcSet, SpcSnapshot};

/// Periodic [`SpcSnapshot`] samples over (virtual or wall) time.
#[derive(Debug, Clone)]
pub struct SpcSeries {
    /// Sampling interval in nanoseconds.
    pub interval_ns: u64,
    /// `(sample_time_ns, cumulative_snapshot)` rows, oldest first.
    pub rows: Vec<(u64, SpcSnapshot)>,
    next_due_ns: u64,
}

impl SpcSeries {
    /// A series sampling every `interval_ns` nanoseconds.
    pub fn new(interval_ns: u64) -> Self {
        Self {
            interval_ns: interval_ns.max(1),
            rows: Vec::new(),
            next_due_ns: 0,
        }
    }

    /// Record a sample unconditionally.
    pub fn sample(&mut self, now_ns: u64, spc: &SpcSet) {
        self.rows.push((now_ns, spc.snapshot()));
        self.next_due_ns = now_ns.saturating_add(self.interval_ns);
    }

    /// Record a sample only if at least one interval elapsed since the last
    /// one. Returns whether a sample was taken.
    pub fn maybe_sample(&mut self, now_ns: u64, spc: &SpcSet) -> bool {
        if now_ns < self.next_due_ns {
            return false;
        }
        self.sample(now_ns, spc);
        true
    }

    /// Number of samples collected.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV. Each row reports the **delta** over the preceding
    /// interval (high-water counters keep their cumulative value), plus
    /// derived per-second send/receive rates for quick plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s");
        for c in Counter::ALL {
            let _ = write!(out, ",{}", c.name());
        }
        out.push_str(",sent_per_s,received_per_s\n");

        let mut prev_ts = 0u64;
        let mut prev = SpcSnapshot::zero();
        for (ts, snap) in &self.rows {
            let delta = snap.delta_since(&prev);
            let dt_s = ts.saturating_sub(prev_ts) as f64 / 1e9;
            let _ = write!(out, "{:.6}", *ts as f64 / 1e9);
            for c in Counter::ALL {
                let _ = write!(out, ",{}", delta[c]);
            }
            let (sent_rate, recv_rate) = if dt_s > 0.0 {
                (
                    delta[Counter::MessagesSent] as f64 / dt_s,
                    delta[Counter::MessagesReceived] as f64 / dt_s,
                )
            } else {
                (0.0, 0.0)
            };
            let _ = writeln!(out, ",{sent_rate:.1},{recv_rate:.1}");
            prev_ts = *ts;
            prev = snap.clone();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maybe_sample_respects_interval() {
        let spc = SpcSet::new();
        let mut series = SpcSeries::new(1_000);
        assert!(series.maybe_sample(0, &spc));
        assert!(!series.maybe_sample(999, &spc));
        assert!(series.maybe_sample(1_000, &spc));
        assert!(series.maybe_sample(5_000, &spc));
        assert_eq!(series.len(), 3);
    }

    #[test]
    fn csv_reports_per_interval_deltas_and_rates() {
        let spc = SpcSet::new();
        let mut series = SpcSeries::new(1_000_000);
        spc.add(Counter::MessagesSent, 10);
        series.sample(1_000_000_000, &spc); // t = 1 s, 10 msgs total
        spc.add(Counter::MessagesSent, 30);
        series.sample(2_000_000_000, &spc); // t = 2 s, +30 msgs
        let csv = series.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("time_s,messages_sent,"));
        assert!(header.ends_with("sent_per_s,received_per_s"));
        let row1: Vec<&str> = lines.next().unwrap().split(',').collect();
        let row2: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(row1[0], "1.000000");
        assert_eq!(row1[1], "10"); // delta from zero
        assert_eq!(row2[1], "30"); // delta from previous row
                                   // 30 msgs over the second interval second → 30/s.
        assert_eq!(row2.last().copied(), Some("0.0"));
        assert_eq!(row2[row2.len() - 2], "30.0");
        assert_eq!(lines.next(), None);
    }
}
