//! The per-track bounded event buffer.

use crate::event::Event;

/// A fixed-capacity ring that keeps the **newest** events: once full, each
/// push overwrites the oldest entry and bumps the drop counter. Bounding
/// memory this way lets tracing stay armed across long runs without
/// distorting the run it observes.
#[derive(Debug)]
pub struct Ring {
    cap: usize,
    buf: Vec<Event>,
    /// Index of the oldest entry once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl Ring {
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            buf: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    pub fn push(&mut self, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain into a Vec ordered oldest → newest.
    pub fn into_vec(mut self) -> Vec<Event> {
        self.buf.rotate_left(self.head);
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, NameId};

    fn ev(i: u64) -> Event {
        Event {
            ts_ns: i,
            kind: EventKind::Instant,
            name: NameId(0),
            arg: i,
        }
    }

    #[test]
    fn keeps_everything_under_capacity() {
        let mut r = Ring::new(8);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.dropped(), 0);
        let v = r.into_vec();
        assert_eq!(
            v.iter().map(|e| e.arg).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn wraparound_keeps_newest_in_order() {
        let mut r = Ring::new(4);
        for i in 0..11 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 7);
        let v = r.into_vec();
        assert_eq!(
            v.iter().map(|e| e.arg).collect::<Vec<_>>(),
            vec![7, 8, 9, 10]
        );
    }
}
