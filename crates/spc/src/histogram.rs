//! Log2-bucket histogram cells.
//!
//! Some internals (queue-search lengths, drain batch sizes) are badly
//! summarized by a single counter: the paper's matching pathology is a
//! *distribution* question — most searches are short, a heavy tail is what
//! burns the match time. Each [`Histogram`] id owns a fixed array of
//! power-of-two buckets in an [`crate::SpcSet`]; recording is one relaxed
//! `fetch_add`, so the probe stays as cheap as a counter bump.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets per histogram: bucket 0 holds zeros, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b - 1]`, and the last bucket absorbs the
/// overflow tail.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// Identifier of one histogram.
///
/// Like [`crate::Counter`], the discriminant doubles as the cell index, so
/// the enum must stay dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Histogram {
    /// Posted-receive-queue entries inspected per incoming-message match
    /// attempt (the PRQ search length distribution).
    MatchDeliverAttempts,
    /// Unexpected-queue entries inspected per posted receive (the UMQ
    /// search length distribution).
    MatchPostAttempts,
    /// Items extracted from an instance per progress-engine visit.
    DrainBatchSize,
    /// Out-of-sequence messages replayed per in-sequence arrival (the
    /// reorder-chain length distribution).
    OosReplayChain,
}

impl Histogram {
    /// Total number of histograms in every [`crate::SpcSet`].
    pub const COUNT: usize = Histogram::OosReplayChain as usize + 1;

    /// All histograms in index order.
    pub const ALL: [Histogram; Histogram::COUNT] = [
        Histogram::MatchDeliverAttempts,
        Histogram::MatchPostAttempts,
        Histogram::DrainBatchSize,
        Histogram::OosReplayChain,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Histogram::MatchDeliverAttempts => "match_deliver_attempts",
            Histogram::MatchPostAttempts => "match_post_attempts",
            Histogram::DrainBatchSize => "drain_batch_size",
            Histogram::OosReplayChain => "oos_replay_chain",
        }
    }

    /// Index of the cell inside an [`crate::SpcSet`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Bucket index for a recorded value: 0 for 0, `floor(log2(v)) + 1`
/// otherwise, saturating into the last bucket.
#[inline]
pub fn bucket_for(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `b` (`None` for the overflow bucket).
pub fn bucket_upper_bound(b: usize) -> Option<u64> {
    if b + 1 >= HISTOGRAM_BUCKETS {
        None
    } else {
        Some((1u64 << b) - 1)
    }
}

/// One live histogram: bucket counts plus sum/count for mean derivation.
///
/// Buckets share the cell's cache line(s) rather than getting a line each —
/// a histogram update touches exactly one bucket plus sum and count, and
/// the `SpcSet` pads whole cells against *neighboring* cells instead.
#[derive(Debug)]
pub struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramCell {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_for(value)].fetch_add(1, Ordering::Relaxed);
        // Saturating: a histogram that has absorbed 2^64 ns of samples must
        // pin at the ceiling, not wrap to a tiny sum.
        self.sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            })
            .ok();
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Forget all observations (see [`crate::SpcSet::reset`] for the
    /// concurrency contract).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        assert_eq!(bucket_for(0), 0);
        for k in 0..12u32 {
            let p = 1u64 << k;
            // 2^k opens bucket k+1 ...
            assert_eq!(
                bucket_for(p),
                (k as usize + 1).min(HISTOGRAM_BUCKETS - 1),
                "2^{k}"
            );
            // ... and 2^k - 1 still belongs to bucket k (for k ≥ 1).
            if k >= 1 {
                assert_eq!(
                    bucket_for(p - 1),
                    (k as usize).min(HISTOGRAM_BUCKETS - 1),
                    "2^{k}-1"
                );
            }
        }
        // The tail saturates into the last bucket.
        assert_eq!(bucket_for(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_bounds_match_bucket_for() {
        for b in 0..HISTOGRAM_BUCKETS - 1 {
            let ub = bucket_upper_bound(b).unwrap();
            assert_eq!(bucket_for(ub), b, "upper bound of bucket {b}");
            assert_eq!(bucket_for(ub + 1), b + 1, "first value past bucket {b}");
        }
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn record_fills_buckets_sum_count() {
        let h = HistogramCell::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let snap = h.snapshot();
        assert_eq!(snap[0], 1); // the zero
        assert_eq!(snap[1], 1); // 1
        assert_eq!(snap[2], 2); // 2 and 3
        assert_eq!(snap[11], 1); // 1024 = 2^10 → bucket 11
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = HistogramCell::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn histogram_ids_are_dense() {
        for (i, h) in Histogram::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
        let mut names: Vec<&str> = Histogram::ALL.iter().map(|h| h.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Histogram::COUNT);
    }
}
