//! Immutable copies of a counter set, with arithmetic for phase deltas.

use std::fmt;
use std::ops::Index;

use crate::Counter;

/// A point-in-time copy of every counter in an [`crate::SpcSet`].
#[derive(Clone, PartialEq, Eq)]
pub struct SpcSnapshot {
    values: Vec<u64>,
}

impl SpcSnapshot {
    pub(crate) fn from_values(values: [u64; Counter::COUNT]) -> Self {
        Self {
            values: values.to_vec(),
        }
    }

    /// A snapshot with every counter at zero.
    pub fn zero() -> Self {
        Self {
            values: vec![0; Counter::COUNT],
        }
    }

    /// Value of one counter.
    #[inline]
    pub fn get(&self, counter: Counter) -> u64 {
        self.values[counter.index()]
    }

    /// Counter-wise saturating difference `self - earlier`, for measuring a
    /// phase between two snapshots. Max-style counters keep the later value.
    pub fn delta_since(&self, earlier: &SpcSnapshot) -> SpcSnapshot {
        let mut out = self.clone();
        for c in Counter::ALL {
            let i = c.index();
            match c {
                Counter::MaxPostedRecvQueueLen
                | Counter::MaxUnexpectedQueueLen
                | Counter::MaxOutOfSequenceBuffered => {
                    // High-water marks are not meaningful as differences.
                    out.values[i] = self.values[i];
                }
                _ => {
                    out.values[i] = self.values[i].saturating_sub(earlier.values[i]);
                }
            }
        }
        out
    }

    /// Counter-wise sum, for aggregating per-rank snapshots.
    pub fn merged_with(&self, other: &SpcSnapshot) -> SpcSnapshot {
        let mut out = self.clone();
        for c in Counter::ALL {
            let i = c.index();
            match c {
                Counter::MaxPostedRecvQueueLen
                | Counter::MaxUnexpectedQueueLen
                | Counter::MaxOutOfSequenceBuffered => {
                    out.values[i] = self.values[i].max(other.values[i]);
                }
                // Saturating: merging many long-running ranks must not wrap
                // the time accumulators.
                _ => out.values[i] = self.values[i].saturating_add(other.values[i]),
            }
        }
        out
    }

    /// Fraction of received messages that arrived out of sequence
    /// (the "Out-of-sequence (%)" row of Table II).
    pub fn out_of_sequence_fraction(&self) -> f64 {
        let received = self.get(Counter::MessagesReceived);
        if received == 0 {
            return 0.0;
        }
        self.get(Counter::OutOfSequenceMessages) as f64 / received as f64
    }

    /// Total matching time in milliseconds (the "Match time (ms)" row of
    /// Table II).
    pub fn match_time_ms(&self) -> f64 {
        self.get(Counter::MatchTimeNanos) as f64 / 1.0e6
    }

    /// Iterate over `(counter, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL
            .iter()
            .map(move |&c| (c, self.values[c.index()]))
    }
}

impl Index<Counter> for SpcSnapshot {
    type Output = u64;

    fn index(&self, counter: Counter) -> &u64 {
        &self.values[counter.index()]
    }
}

impl fmt::Debug for SpcSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("SpcSnapshot");
        for (c, v) in self.iter() {
            if v != 0 {
                s.field(c.name(), &v);
            }
        }
        s.finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpcSet;

    #[test]
    fn delta_subtracts_monotonic_counters() {
        let spc = SpcSet::new();
        spc.add(Counter::MessagesSent, 10);
        let before = spc.snapshot();
        spc.add(Counter::MessagesSent, 32);
        let after = spc.snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta[Counter::MessagesSent], 32);
    }

    #[test]
    fn delta_keeps_high_water_marks() {
        let spc = SpcSet::new();
        spc.record_max(Counter::MaxUnexpectedQueueLen, 9);
        let before = spc.snapshot();
        let after = spc.snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta[Counter::MaxUnexpectedQueueLen], 9);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let a = {
            let s = SpcSet::new();
            s.add(Counter::MessagesReceived, 5);
            s.record_max(Counter::MaxOutOfSequenceBuffered, 3);
            s.snapshot()
        };
        let b = {
            let s = SpcSet::new();
            s.add(Counter::MessagesReceived, 7);
            s.record_max(Counter::MaxOutOfSequenceBuffered, 8);
            s.snapshot()
        };
        let m = a.merged_with(&b);
        assert_eq!(m[Counter::MessagesReceived], 12);
        assert_eq!(m[Counter::MaxOutOfSequenceBuffered], 8);
    }

    #[test]
    fn oos_fraction_matches_table_ii_definition() {
        let spc = SpcSet::new();
        spc.add(Counter::MessagesReceived, 2_585_600);
        spc.add(Counter::OutOfSequenceMessages, 2_154_493);
        let f = spc.snapshot().out_of_sequence_fraction();
        // Paper Table II: 83.32 %.
        assert!((f - 0.8332).abs() < 0.0005, "fraction was {f}");
    }

    #[test]
    fn match_time_converts_to_ms() {
        let spc = SpcSet::new();
        spc.add(Counter::MatchTimeNanos, 2_732_000_000);
        assert!((spc.snapshot().match_time_ms() - 2732.0).abs() < 1e-9);
    }
}
