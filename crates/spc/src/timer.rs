//! Wall-clock timing into a counter, for the native (real-thread) path.
//!
//! The virtual-time executor does not use this type; it adds virtual
//! nanoseconds to [`Counter::MatchTimeNanos`] directly.

use std::time::Instant;

use crate::{Counter, SpcSet};

/// Measures the wall-clock duration of a scope into a counter.
///
/// ```
/// use fairmpi_spc::{SpcSet, Counter, ScopedTimer};
/// let spc = SpcSet::new();
/// {
///     let _t = ScopedTimer::new(&spc, Counter::MatchTimeNanos);
///     // ... matching work ...
/// }
/// // Some nonzero number of nanoseconds was recorded.
/// ```
#[must_use = "the timer records on drop; binding it to `_` drops immediately"]
pub struct ScopedTimer<'a> {
    spc: &'a SpcSet,
    counter: Counter,
    start: Instant,
}

impl<'a> ScopedTimer<'a> {
    /// Start timing; the elapsed nanoseconds are added to `counter` on drop.
    pub fn new(spc: &'a SpcSet, counter: Counter) -> Self {
        Self {
            spc,
            counter,
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed so far without stopping the timer.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Drop for ScopedTimer<'_> {
    fn drop(&mut self) {
        // Saturating: timer accumulators must pin at u64::MAX rather than
        // wrap and report a tiny total after ~584 years of accumulated ns.
        self.spc.add_saturating(self.counter, self.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_records_on_drop() {
        let spc = SpcSet::new();
        {
            let _t = ScopedTimer::new(&spc, Counter::MatchTimeNanos);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(spc.get(Counter::MatchTimeNanos) >= 1_000_000);
    }

    #[test]
    fn nested_timers_accumulate() {
        let spc = SpcSet::new();
        for _ in 0..3 {
            let _t = ScopedTimer::new(&spc, Counter::MatchTimeNanos);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(spc.get(Counter::MatchTimeNanos) >= 3 * 500_000);
    }
}
