//! Crate-level tests: enum/name invariants and snapshot rendering.

use crate::{Counter, SpcSet};

#[test]
fn counter_indices_are_dense_and_in_order() {
    for (i, c) in Counter::ALL.iter().enumerate() {
        assert_eq!(c.index(), i, "Counter::ALL must be in discriminant order");
    }
    assert_eq!(Counter::ALL.len(), Counter::COUNT);
}

#[test]
fn counter_names_are_unique() {
    let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), Counter::COUNT);
}

#[test]
fn snapshot_debug_rendering_includes_values() {
    let spc = SpcSet::new();
    spc.add(Counter::MessagesSent, 123);
    spc.record_max(Counter::MaxUnexpectedQueueLen, 17);
    let snap = spc.snapshot();
    let rendered = format!("{snap:?}");
    assert!(rendered.contains("123"));
}

#[test]
fn index_operator_matches_get() {
    let spc = SpcSet::new();
    spc.add(Counter::RmaPuts, 9);
    let snap = spc.snapshot();
    assert_eq!(snap[Counter::RmaPuts], snap.get(Counter::RmaPuts));
}
