//! Watermark cells: high/low extremes of a fluctuating level.
//!
//! The monotonic [`crate::Counter`]s cover event *counts*; MPI_T's
//! `MPI_T_PVAR_CLASS_HIGHWATERMARK` / `MPI_T_PVAR_CLASS_LOWWATERMARK`
//! classes instead track the extreme values a *level* reached — queue
//! depths, in-flight operation counts. Each [`Watermark`] id owns one
//! [`WatermarkCell`] in an [`crate::SpcSet`] recording both extremes of the
//! same level, so one probe call feeds both the high- and low-watermark
//! pvars the `fairmpi-mpit` registry exposes.

use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of one watermarked level.
///
/// Like [`crate::Counter`], the discriminant doubles as the cell index, so
/// the enum must stay dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Watermark {
    /// Posted-receive queue depth observed at each post/match.
    PostedRecvQueueDepth,
    /// Unexpected-message queue depth observed at each insert/match.
    UnexpectedQueueDepth,
    /// Out-of-sequence messages parked across all sources.
    OutOfSequenceBuffered,
    /// Operations injected on an instance but not yet completed, sampled at
    /// each injection (the paper's per-CRI in-flight depth).
    InstancePendingOps,
    /// Receive-ring depth sampled at each wire delivery (how far the
    /// progress engine lags injection).
    InstanceRxDepth,
    /// Offload command-queue depth sampled at each enqueue (how far the
    /// offload workers lag the producing application threads).
    OffloadQueueDepth,
}

impl Watermark {
    /// Total number of watermark cells in every [`crate::SpcSet`].
    pub const COUNT: usize = Watermark::OffloadQueueDepth as usize + 1;

    /// All watermarks in index order.
    pub const ALL: [Watermark; Watermark::COUNT] = [
        Watermark::PostedRecvQueueDepth,
        Watermark::UnexpectedQueueDepth,
        Watermark::OutOfSequenceBuffered,
        Watermark::InstancePendingOps,
        Watermark::InstanceRxDepth,
        Watermark::OffloadQueueDepth,
    ];

    /// Stable machine-readable name of the underlying level.
    pub fn name(self) -> &'static str {
        match self {
            Watermark::PostedRecvQueueDepth => "posted_recv_queue_depth",
            Watermark::UnexpectedQueueDepth => "unexpected_queue_depth",
            Watermark::OutOfSequenceBuffered => "out_of_sequence_buffered",
            Watermark::InstancePendingOps => "instance_pending_ops",
            Watermark::InstanceRxDepth => "instance_rx_depth",
            Watermark::OffloadQueueDepth => "offload_queue_depth",
        }
    }

    /// Index of the cell inside an [`crate::SpcSet`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One high/low watermark pair over a level.
///
/// Standalone so that subsystems without an `SpcSet` at hand (the fabric's
/// per-context telemetry) can embed the same cell; updates are relaxed
/// `fetch_max`/`fetch_min`, so recording from many threads never blocks.
#[derive(Debug)]
pub struct WatermarkCell {
    high: AtomicU64,
    /// `u64::MAX` until the first record (an untouched low watermark reads
    /// as 0, see [`WatermarkCell::low`]).
    low: AtomicU64,
}

impl Default for WatermarkCell {
    fn default() -> Self {
        Self::new()
    }
}

impl WatermarkCell {
    /// A cell with no recorded samples.
    pub const fn new() -> Self {
        Self {
            high: AtomicU64::new(0),
            low: AtomicU64::new(u64::MAX),
        }
    }

    /// Fold one observation of the level into both extremes.
    #[inline]
    pub fn record(&self, level: u64) {
        self.high.fetch_max(level, Ordering::Relaxed);
        self.low.fetch_min(level, Ordering::Relaxed);
    }

    /// Highest level recorded (0 if never recorded).
    #[inline]
    pub fn high(&self) -> u64 {
        self.high.load(Ordering::Relaxed)
    }

    /// Lowest level recorded (0 if never recorded).
    #[inline]
    pub fn low(&self) -> u64 {
        let v = self.low.load(Ordering::Relaxed);
        if v == u64::MAX {
            0
        } else {
            v
        }
    }

    /// Whether any sample was recorded.
    #[inline]
    pub fn touched(&self) -> bool {
        self.high.load(Ordering::Relaxed) != 0 || self.low.load(Ordering::Relaxed) != u64::MAX
    }

    /// Forget all samples (see [`crate::SpcSet::reset`] for the concurrency
    /// contract).
    pub fn reset(&self) {
        self.high.store(0, Ordering::Relaxed);
        self.low.store(u64::MAX, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_cell_reads_zero() {
        let c = WatermarkCell::new();
        assert_eq!(c.high(), 0);
        assert_eq!(c.low(), 0);
        assert!(!c.touched());
    }

    #[test]
    fn record_tracks_both_extremes() {
        let c = WatermarkCell::new();
        c.record(7);
        c.record(3);
        c.record(11);
        assert_eq!(c.high(), 11);
        assert_eq!(c.low(), 3);
        assert!(c.touched());
    }

    #[test]
    fn reset_forgets_samples() {
        let c = WatermarkCell::new();
        c.record(9);
        c.reset();
        assert_eq!(c.high(), 0);
        assert_eq!(c.low(), 0);
        assert!(!c.touched());
    }

    #[test]
    fn concurrent_updates_keep_true_extremes() {
        use std::sync::Arc;
        let c = Arc::new(WatermarkCell::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    // Thread t records levels t*1000+1 ..= t*1000+1000.
                    for i in 1..=1000u64 {
                        c.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.high(), 8000, "true max across 8 threads");
        assert_eq!(c.low(), 1, "true min across 8 threads");
    }

    #[test]
    fn watermark_ids_are_dense() {
        for (i, w) in Watermark::ALL.iter().enumerate() {
            assert_eq!(w.index(), i);
        }
        let mut names: Vec<&str> = Watermark::ALL.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Watermark::COUNT);
    }
}
