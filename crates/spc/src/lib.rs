//! Software-based Performance Counters (SPCs) for the `fairmpi` runtime.
//!
//! This crate reproduces the role of Open MPI's built-in SPC framework
//! (Eberius et al., EuroMPI'17, reference \[9\] in the paper): a set of very
//! low-overhead counters exposing internal MPI information — number of
//! messages sent/received, number of *unexpected* and *out-of-sequence*
//! messages, time spent in the matching engine, matching queue lengths, and
//! so on. The paper's Table II is produced entirely from two of these
//! counters (`OutOfSequenceMessages` and `MatchTime`).
//!
//! Counters are cache-line padded relaxed atomics so that updating them from
//! many threads never introduces the very contention the study measures.
//!
//! # Example
//!
//! ```
//! use fairmpi_spc::{SpcSet, Counter};
//!
//! let spc = SpcSet::new();
//! spc.inc(Counter::MessagesSent);
//! spc.add(Counter::BytesSent, 28); // a 0-byte message still carries its envelope
//! let snap = spc.snapshot();
//! assert_eq!(snap[Counter::MessagesSent], 1);
//! assert_eq!(snap[Counter::BytesSent], 28);
//! ```

mod counter;
mod histogram;
mod set;
mod snapshot;
mod timer;
mod watermark;

pub use counter::Counter;
pub use histogram::{bucket_for, bucket_upper_bound, Histogram, HistogramCell, HISTOGRAM_BUCKETS};
pub use set::SpcSet;
pub use snapshot::SpcSnapshot;
pub use timer::ScopedTimer;
pub use watermark::{Watermark, WatermarkCell};

#[cfg(test)]
mod tests;
