//! The live counter storage.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Counter, Histogram, HistogramCell, SpcSnapshot, Watermark, WatermarkCell};

/// A set of live software performance counters, watermarks and histograms.
///
/// One `SpcSet` exists per simulated MPI process. Updates use relaxed atomic
/// read-modify-write on cache-line padded slots, so concurrent updates from
/// different threads never share a cache line with each other or with
/// neighboring counters — the instrumentation must not perturb the very
/// contention effects the study measures.
///
/// Beyond the original monotonic [`Counter`]s, a set carries one
/// [`WatermarkCell`] per [`Watermark`] (high/low extremes of a level) and
/// one [`HistogramCell`] per [`Histogram`] (log2-bucket distributions) —
/// the cell classes behind the `fairmpi-mpit` pvar registry's
/// HIGHWATERMARK / LOWWATERMARK / HISTOGRAM classes.
#[derive(Debug)]
pub struct SpcSet {
    slots: Box<[CachePadded<AtomicU64>]>,
    watermarks: Box<[CachePadded<WatermarkCell>]>,
    histograms: Box<[CachePadded<HistogramCell>]>,
}

impl Default for SpcSet {
    fn default() -> Self {
        Self::new()
    }
}

impl SpcSet {
    /// Create a zeroed counter set.
    pub fn new() -> Self {
        let slots = (0..Counter::COUNT)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let watermarks = (0..Watermark::COUNT)
            .map(|_| CachePadded::new(WatermarkCell::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let histograms = (0..Histogram::COUNT)
            .map(|_| CachePadded::new(HistogramCell::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            watermarks,
            histograms,
        }
    }

    /// Add `delta` to a counter.
    #[inline]
    pub fn add(&self, counter: Counter, delta: u64) {
        self.slots[counter.index()].fetch_add(delta, Ordering::Relaxed);
    }

    /// Add `delta` to a counter, saturating at `u64::MAX` instead of
    /// wrapping. Time accumulators use this: a run long enough to overflow
    /// the nanosecond sum must pin at the ceiling, not report a tiny total.
    #[inline]
    pub fn add_saturating(&self, counter: Counter, delta: u64) {
        self.slots[counter.index()]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(delta))
            })
            .ok();
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Raise a high-water-mark counter to at least `value`.
    #[inline]
    pub fn record_max(&self, counter: Counter, value: u64) {
        self.slots[counter.index()].fetch_max(value, Ordering::Relaxed);
    }

    /// Current value of one counter.
    #[inline]
    pub fn get(&self, counter: Counter) -> u64 {
        self.slots[counter.index()].load(Ordering::Relaxed)
    }

    /// Record one observation of a watermarked level (updates both the high
    /// and the low extreme).
    #[inline]
    pub fn record_level(&self, watermark: Watermark, level: u64) {
        self.watermarks[watermark.index()].record(level);
    }

    /// The live watermark cell for one level.
    #[inline]
    pub fn watermark(&self, watermark: Watermark) -> &WatermarkCell {
        &self.watermarks[watermark.index()]
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn record_hist(&self, histogram: Histogram, value: u64) {
        self.histograms[histogram.index()].record(value);
    }

    /// The live histogram cell for one distribution.
    #[inline]
    pub fn histogram(&self, histogram: Histogram) -> &HistogramCell {
        &self.histograms[histogram.index()]
    }

    /// Reset every counter, watermark and histogram to its initial state.
    ///
    /// # Concurrency contract
    ///
    /// Each individual slot is a word-sized atomic, so a [`snapshot`]
    /// (or [`get`]) racing a `reset` observes, **per slot**, either the
    /// pre-reset value or a post-reset value (zero plus whatever updates
    /// landed after that slot was cleared) — never a torn mix of bits.
    /// There is **no atomicity across slots**: a concurrent snapshot may
    /// combine pre-reset values for some counters with post-reset values
    /// for others, and updates arriving while `reset` walks the slots may
    /// survive in slots the walk already passed. As with OMPI's SPC reset,
    /// call it while the measured phase is quiescent when cross-counter
    /// consistency matters.
    ///
    /// [`snapshot`]: Self::snapshot
    /// [`get`]: Self::get
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            slot.store(0, Ordering::Relaxed);
        }
        for w in self.watermarks.iter() {
            w.reset();
        }
        for h in self.histograms.iter() {
            h.reset();
        }
    }

    /// Capture a point-in-time copy of all counters.
    ///
    /// The snapshot is not atomic across counters; as with OMPI's SPCs it is
    /// intended to be read while the measured phase is quiescent. Concurrent
    /// with a [`reset`](Self::reset), every individual value is still
    /// well-formed (see the reset concurrency contract), but values from
    /// before and after the reset may appear side by side.
    pub fn snapshot(&self) -> SpcSnapshot {
        let mut values = [0u64; Counter::COUNT];
        for (i, slot) in self.slots.iter().enumerate() {
            values[i] = slot.load(Ordering::Relaxed);
        }
        SpcSnapshot::from_values(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let spc = SpcSet::new();
        for c in Counter::ALL {
            assert_eq!(spc.get(c), 0, "{}", c.name());
        }
    }

    #[test]
    fn add_and_inc_accumulate() {
        let spc = SpcSet::new();
        spc.inc(Counter::MessagesSent);
        spc.add(Counter::MessagesSent, 41);
        assert_eq!(spc.get(Counter::MessagesSent), 42);
        // Other counters untouched.
        assert_eq!(spc.get(Counter::MessagesReceived), 0);
    }

    #[test]
    fn record_max_keeps_high_water_mark() {
        let spc = SpcSet::new();
        spc.record_max(Counter::MaxPostedRecvQueueLen, 7);
        spc.record_max(Counter::MaxPostedRecvQueueLen, 3);
        assert_eq!(spc.get(Counter::MaxPostedRecvQueueLen), 7);
        spc.record_max(Counter::MaxPostedRecvQueueLen, 11);
        assert_eq!(spc.get(Counter::MaxPostedRecvQueueLen), 11);
    }

    #[test]
    fn reset_zeroes_everything() {
        let spc = SpcSet::new();
        for c in Counter::ALL {
            spc.add(c, 5);
        }
        spc.reset();
        for c in Counter::ALL {
            assert_eq!(spc.get(c), 0);
        }
    }

    #[test]
    fn add_saturating_pins_at_ceiling() {
        let spc = SpcSet::new();
        spc.add(Counter::MatchTimeNanos, u64::MAX - 10);
        spc.add_saturating(Counter::MatchTimeNanos, 100);
        assert_eq!(spc.get(Counter::MatchTimeNanos), u64::MAX);
        spc.add_saturating(Counter::MatchTimeNanos, 1);
        assert_eq!(spc.get(Counter::MatchTimeNanos), u64::MAX);
    }

    #[test]
    fn watermark_and_histogram_cells_reset_with_the_set() {
        let spc = SpcSet::new();
        spc.record_level(Watermark::UnexpectedQueueDepth, 12);
        spc.record_hist(Histogram::MatchPostAttempts, 5);
        assert_eq!(spc.watermark(Watermark::UnexpectedQueueDepth).high(), 12);
        assert_eq!(spc.histogram(Histogram::MatchPostAttempts).count(), 1);
        spc.reset();
        assert_eq!(spc.watermark(Watermark::UnexpectedQueueDepth).high(), 0);
        assert_eq!(spc.histogram(Histogram::MatchPostAttempts).count(), 0);
    }

    /// The documented reset contract: per-slot values seen by a snapshot
    /// racing `reset` are either pre-reset or post-reset — a counter that
    /// only ever moves 0 → N can therefore never be observed above N or
    /// between 0 and the smallest post-reset partial sum in a torn state.
    #[test]
    fn snapshot_concurrent_with_reset_stays_within_bounds() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        const PER_THREAD: u64 = 50_000;
        let spc = Arc::new(SpcSet::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let spc = Arc::clone(&spc);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        spc.inc(Counter::MessagesSent);
                    }
                })
            })
            .collect();
        let observer = {
            let spc = Arc::clone(&spc);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut snaps = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v = spc.snapshot()[Counter::MessagesSent];
                    // Every observed value is one some interleaving of
                    // increments and resets could produce: at most the
                    // total increment count, never torn bits.
                    assert!(v <= 4 * PER_THREAD, "impossible value {v}");
                    spc.reset();
                    snaps += 1;
                }
                snaps
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        assert!(observer.join().unwrap() > 0);
        // Quiescent now: one final reset leaves exactly zero.
        spc.reset();
        assert_eq!(spc.get(Counter::MessagesSent), 0);
    }

    #[test]
    fn concurrent_updates_do_not_lose_increments() {
        use std::sync::Arc;
        let spc = Arc::new(SpcSet::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let spc = Arc::clone(&spc);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        spc.inc(Counter::ProgressCalls);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(spc.get(Counter::ProgressCalls), 40_000);
    }
}
