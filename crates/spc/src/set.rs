//! The live counter storage.

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::{Counter, SpcSnapshot};

/// A set of live software performance counters.
///
/// One `SpcSet` exists per simulated MPI process. Updates use relaxed atomic
/// read-modify-write on cache-line padded slots, so concurrent updates from
/// different threads never share a cache line with each other or with
/// neighboring counters — the instrumentation must not perturb the very
/// contention effects the study measures.
#[derive(Debug)]
pub struct SpcSet {
    slots: Box<[CachePadded<AtomicU64>]>,
}

impl Default for SpcSet {
    fn default() -> Self {
        Self::new()
    }
}

impl SpcSet {
    /// Create a zeroed counter set.
    pub fn new() -> Self {
        let slots = (0..Counter::COUNT)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self { slots }
    }

    /// Add `delta` to a counter.
    #[inline]
    pub fn add(&self, counter: Counter, delta: u64) {
        self.slots[counter.index()].fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Raise a high-water-mark counter to at least `value`.
    #[inline]
    pub fn record_max(&self, counter: Counter, value: u64) {
        self.slots[counter.index()].fetch_max(value, Ordering::Relaxed);
    }

    /// Current value of one counter.
    #[inline]
    pub fn get(&self, counter: Counter) -> u64 {
        self.slots[counter.index()].load(Ordering::Relaxed)
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            slot.store(0, Ordering::Relaxed);
        }
    }

    /// Capture a point-in-time copy of all counters.
    ///
    /// The snapshot is not atomic across counters; as with OMPI's SPCs it is
    /// intended to be read while the measured phase is quiescent.
    pub fn snapshot(&self) -> SpcSnapshot {
        let mut values = [0u64; Counter::COUNT];
        for (i, slot) in self.slots.iter().enumerate() {
            values[i] = slot.load(Ordering::Relaxed);
        }
        SpcSnapshot::from_values(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let spc = SpcSet::new();
        for c in Counter::ALL {
            assert_eq!(spc.get(c), 0, "{}", c.name());
        }
    }

    #[test]
    fn add_and_inc_accumulate() {
        let spc = SpcSet::new();
        spc.inc(Counter::MessagesSent);
        spc.add(Counter::MessagesSent, 41);
        assert_eq!(spc.get(Counter::MessagesSent), 42);
        // Other counters untouched.
        assert_eq!(spc.get(Counter::MessagesReceived), 0);
    }

    #[test]
    fn record_max_keeps_high_water_mark() {
        let spc = SpcSet::new();
        spc.record_max(Counter::MaxPostedRecvQueueLen, 7);
        spc.record_max(Counter::MaxPostedRecvQueueLen, 3);
        assert_eq!(spc.get(Counter::MaxPostedRecvQueueLen), 7);
        spc.record_max(Counter::MaxPostedRecvQueueLen, 11);
        assert_eq!(spc.get(Counter::MaxPostedRecvQueueLen), 11);
    }

    #[test]
    fn reset_zeroes_everything() {
        let spc = SpcSet::new();
        for c in Counter::ALL {
            spc.add(c, 5);
        }
        spc.reset();
        for c in Counter::ALL {
            assert_eq!(spc.get(c), 0);
        }
    }

    #[test]
    fn concurrent_updates_do_not_lose_increments() {
        use std::sync::Arc;
        let spc = Arc::new(SpcSet::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let spc = Arc::clone(&spc);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        spc.inc(Counter::ProgressCalls);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(spc.get(Counter::ProgressCalls), 40_000);
    }
}
