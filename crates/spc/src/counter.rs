//! The counter namespace.
//!
//! Names mirror the OMPI SPC counters used in the paper where one exists
//! (`OMPI_SPC_OUT_OF_SEQUENCE`, `OMPI_SPC_MATCH_TIME`, ...); the remainder
//! cover the additional design axes this reproduction instruments (CRI
//! assignment, try-lock failures, progress sweeps).

/// Identifier of one software performance counter.
///
/// The discriminant doubles as the index into an [`crate::SpcSet`], so the
/// enum must stay dense (no explicit discriminants, no gaps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Counter {
    // ---- message volume (OMPI: OMPI_SPC_SENT / RECEIVED) ----
    /// Point-to-point messages handed to the network (per send initiation).
    MessagesSent,
    /// Point-to-point messages fully matched and delivered to a receive.
    MessagesReceived,
    /// Bytes injected, including the matching envelope (28 B in Open MPI).
    BytesSent,
    /// Payload bytes delivered to user receive buffers.
    BytesReceived,

    // ---- matching engine (the Table II counters) ----
    /// Messages whose sequence number did not match the expected one and had
    /// to be buffered for later (OMPI: `OMPI_SPC_OUT_OF_SEQUENCE`).
    OutOfSequenceMessages,
    /// Total virtual/real nanoseconds spent inside the matching critical
    /// section (OMPI: `OMPI_SPC_MATCH_TIME`, reported in ms in Table II).
    MatchTimeNanos,
    /// Messages that arrived before a matching receive was posted
    /// (OMPI: `OMPI_SPC_UNEXPECTED`).
    UnexpectedMessages,
    /// Messages matched directly against an already-posted receive.
    ExpectedMessages,
    /// High-water mark of the posted-receive queue length.
    MaxPostedRecvQueueLen,
    /// High-water mark of the unexpected-message queue length.
    MaxUnexpectedQueueLen,
    /// High-water mark of the out-of-sequence buffer size.
    MaxOutOfSequenceBuffered,
    /// Sum of queue entries traversed during matching searches (queue-search
    /// cost proxy; grows with wildcard misses and out-of-order matching).
    MatchQueueTraversals,
    /// Messages admitted without sequence validation because the
    /// communicator allows overtaking (`mpi_assert_allow_overtaking`).
    OvertakenMessages,

    // ---- protocol selection ----
    /// Sends below the eager threshold (header + inline payload).
    EagerSends,
    /// Sends that used the rendezvous (RTS/CTS/DATA) protocol.
    RendezvousSends,

    // ---- one-sided ----
    /// `put` operations initiated.
    RmaPuts,
    /// `get` operations initiated.
    RmaGets,
    /// `accumulate`/`fetch_and_op` operations initiated.
    RmaAccumulates,
    /// Window flush synchronizations completed.
    RmaFlushes,

    // ---- CRI / progress engine ----
    /// CRI acquisitions served by the round-robin strategy.
    CriRoundRobinAssignments,
    /// CRI acquisitions served from thread-local (dedicated) state.
    CriDedicatedHits,
    /// Failed `try_lock` attempts on an instance (another thread held it).
    InstanceTryLockFailures,
    /// Successful instance lock acquisitions.
    InstanceLockAcquisitions,
    /// Calls into the progress engine.
    ProgressCalls,
    /// Completion events drained from completion queues.
    CompletionsDrained,
    /// Progress calls that found no completion on the dedicated instance and
    /// swept the other instances (Algorithm 2 fallback path).
    ProgressFallbackSweeps,
    /// Progress passes that produced at least one user-visible completion.
    ProgressUsefulPasses,
    /// Progress passes that produced nothing — pure overhead spent polling
    /// (the wasted share of the progress budget).
    ProgressWastedPasses,

    // ---- software offload (fairmpi-offload) ----
    /// Command descriptors enqueued onto an offload command queue.
    OffloadCommands,
    /// Batches drained from the command queue by offload workers (commands
    /// per batch = `offload_commands / offload_batches`).
    OffloadBatches,
    /// Enqueue attempts that found the command queue full and had to stall
    /// (spin/yield) or fail fast, depending on the backpressure policy.
    OffloadBackpressureStalls,

    // ---- fault injection + recovery (fairmpi-chaos) ----
    /// Packets dropped on the wire by the active fault plan.
    ChaosDrops,
    /// Packets duplicated on the wire by the active fault plan.
    ChaosDups,
    /// Packets reordered (held back past a later packet) by the fault plan.
    ChaosReorders,
    /// Injection attempts transiently refused (CQ-full / `ENOBUFS`).
    ChaosRefusals,
    /// Packets re-injected by the reliability layer after a timeout or
    /// refusal.
    Retransmits,
    /// Total nanoseconds of exponential backoff scheduled between retries.
    RetryBackoffNanos,
    /// Duplicate packets suppressed by receiver-side sequence tracking.
    DuplicatesSuppressed,
    /// Communication instances quarantined after permanent death, with their
    /// traffic failed over to survivors.
    CriFailovers,
    /// Progress watchdog trips: no completion within the stall budget.
    WatchdogTrips,
}

impl Counter {
    /// Total number of counters; the size of every [`crate::SpcSet`].
    pub const COUNT: usize = Counter::WatchdogTrips as usize + 1;

    /// All counters in index order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::MessagesSent,
        Counter::MessagesReceived,
        Counter::BytesSent,
        Counter::BytesReceived,
        Counter::OutOfSequenceMessages,
        Counter::MatchTimeNanos,
        Counter::UnexpectedMessages,
        Counter::ExpectedMessages,
        Counter::MaxPostedRecvQueueLen,
        Counter::MaxUnexpectedQueueLen,
        Counter::MaxOutOfSequenceBuffered,
        Counter::MatchQueueTraversals,
        Counter::OvertakenMessages,
        Counter::EagerSends,
        Counter::RendezvousSends,
        Counter::RmaPuts,
        Counter::RmaGets,
        Counter::RmaAccumulates,
        Counter::RmaFlushes,
        Counter::CriRoundRobinAssignments,
        Counter::CriDedicatedHits,
        Counter::InstanceTryLockFailures,
        Counter::InstanceLockAcquisitions,
        Counter::ProgressCalls,
        Counter::CompletionsDrained,
        Counter::ProgressFallbackSweeps,
        Counter::ProgressUsefulPasses,
        Counter::ProgressWastedPasses,
        Counter::OffloadCommands,
        Counter::OffloadBatches,
        Counter::OffloadBackpressureStalls,
        Counter::ChaosDrops,
        Counter::ChaosDups,
        Counter::ChaosReorders,
        Counter::ChaosRefusals,
        Counter::Retransmits,
        Counter::RetryBackoffNanos,
        Counter::DuplicatesSuppressed,
        Counter::CriFailovers,
        Counter::WatchdogTrips,
    ];

    /// Stable machine-readable name (used in CSV/JSON output).
    pub fn name(self) -> &'static str {
        match self {
            Counter::MessagesSent => "messages_sent",
            Counter::MessagesReceived => "messages_received",
            Counter::BytesSent => "bytes_sent",
            Counter::BytesReceived => "bytes_received",
            Counter::OutOfSequenceMessages => "out_of_sequence_messages",
            Counter::MatchTimeNanos => "match_time_ns",
            Counter::UnexpectedMessages => "unexpected_messages",
            Counter::ExpectedMessages => "expected_messages",
            Counter::MaxPostedRecvQueueLen => "max_posted_recv_queue_len",
            Counter::MaxUnexpectedQueueLen => "max_unexpected_queue_len",
            Counter::MaxOutOfSequenceBuffered => "max_out_of_sequence_buffered",
            Counter::MatchQueueTraversals => "match_queue_traversals",
            Counter::OvertakenMessages => "overtaken_messages",
            Counter::EagerSends => "eager_sends",
            Counter::RendezvousSends => "rendezvous_sends",
            Counter::RmaPuts => "rma_puts",
            Counter::RmaGets => "rma_gets",
            Counter::RmaAccumulates => "rma_accumulates",
            Counter::RmaFlushes => "rma_flushes",
            Counter::CriRoundRobinAssignments => "cri_round_robin_assignments",
            Counter::CriDedicatedHits => "cri_dedicated_hits",
            Counter::InstanceTryLockFailures => "instance_try_lock_failures",
            Counter::InstanceLockAcquisitions => "instance_lock_acquisitions",
            Counter::ProgressCalls => "progress_calls",
            Counter::CompletionsDrained => "completions_drained",
            Counter::ProgressFallbackSweeps => "progress_fallback_sweeps",
            Counter::ProgressUsefulPasses => "progress_useful_passes",
            Counter::ProgressWastedPasses => "progress_wasted_passes",
            Counter::OffloadCommands => "offload_commands",
            Counter::OffloadBatches => "offload_batches",
            Counter::OffloadBackpressureStalls => "offload_backpressure_stalls",
            Counter::ChaosDrops => "chaos_drops",
            Counter::ChaosDups => "chaos_dups",
            Counter::ChaosReorders => "chaos_reorders",
            Counter::ChaosRefusals => "chaos_refusals",
            Counter::Retransmits => "retransmits",
            Counter::RetryBackoffNanos => "retry_backoff_ns",
            Counter::DuplicatesSuppressed => "duplicates_suppressed",
            Counter::CriFailovers => "cri_failovers",
            Counter::WatchdogTrips => "watchdog_trips",
        }
    }

    /// Index of the counter inside an [`crate::SpcSet`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}
