//! Exhaustive interleaving checks of the real receiver-side duplicate
//! suppression (`fairmpi::DedupWindow`) used by the reliability layer.

use fairmpi::DedupWindow;
use fairmpi_check::{spawn, Checker};
use fairmpi_sync::atomic::{AtomicU64, Ordering};
use fairmpi_sync::Mutex;
use std::sync::Arc;

/// Two racing deliveries of the same transport sequence number: exactly
/// one is accepted, in every schedule. This is the window a retransmission
/// racing its own ack opens in the real runtime.
#[test]
fn racing_duplicate_deliveries_accept_exactly_once() {
    let checker = Checker::new();
    let outcome = checker.check(|| {
        let window = Arc::new(Mutex::new(DedupWindow::new()));
        let accepted = Arc::new(AtomicU64::new(0));
        let deliveries: Vec<_> = (0..2)
            .map(|_| {
                let window = Arc::clone(&window);
                let accepted = Arc::clone(&accepted);
                spawn(move || {
                    if window.lock().accept(1) {
                        accepted.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for d in deliveries {
            d.join();
        }
        assert_eq!(
            accepted.load(Ordering::SeqCst),
            1,
            "exactly one delivery of tseq 1 accepted"
        );
    });
    outcome.assert_pass("DedupWindow racing duplicates");
    match outcome {
        fairmpi_check::Outcome::Pass {
            schedules,
            complete,
        } => {
            assert!(complete, "bounded schedule space was not exhausted");
            println!("DedupWindow duplicates: {schedules} schedules, exhaustive");
        }
        fairmpi_check::Outcome::Fail(_) => unreachable!(),
    }
}

/// Out-of-order arrivals with duplicates from both threads: each distinct
/// tseq is accepted exactly once regardless of interleaving (the window's
/// floor/above-set bookkeeping stays consistent).
#[test]
fn out_of_order_arrivals_with_duplicates() {
    let checker = Checker::new();
    let outcome = checker.check(|| {
        let window = Arc::new(Mutex::new(DedupWindow::new()));
        let accepted = Arc::new(AtomicU64::new(0));
        let mk = |seqs: [u64; 2]| {
            let window = Arc::clone(&window);
            let accepted = Arc::clone(&accepted);
            spawn(move || {
                for tseq in seqs {
                    if window.lock().accept(tseq) {
                        accepted.fetch_add(1, Ordering::SeqCst);
                    }
                }
            })
        };
        let a = mk([2, 1]);
        let b = mk([1, 2]);
        a.join();
        b.join();
        assert_eq!(
            accepted.load(Ordering::SeqCst),
            2,
            "tseqs 1 and 2 each accepted exactly once"
        );
    });
    outcome.assert_pass("DedupWindow out-of-order arrivals");
}
