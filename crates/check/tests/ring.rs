//! Exhaustive interleaving checks of the real offload command ring
//! (`fairmpi_offload::TicketRing`) under the model backend.

use fairmpi_check::{spawn, yield_now, Checker};
use fairmpi_offload::TicketRing;
use std::sync::Arc;

/// Two producers race their ticket claims while the consumer pops
/// concurrently: every pushed value is popped exactly once, in every
/// schedule within the preemption bound.
#[test]
fn ring_two_producers_one_consumer_exhaustive() {
    let checker = Checker::new();
    let outcome = checker.check(|| {
        let ring = Arc::new(TicketRing::with_capacity(4));
        let producers: Vec<_> = (1..=2u64)
            .map(|v| {
                let ring = Arc::clone(&ring);
                spawn(move || {
                    ring.try_push(v).expect("capacity covers every push");
                })
            })
            .collect();
        // The consumer overlaps the producers for a few bounded attempts,
        // so pops interleave with in-flight pushes...
        let mut got = Vec::new();
        for _ in 0..3 {
            if let Some(v) = ring.try_pop() {
                got.push(v);
            }
            if got.len() == 2 {
                break;
            }
            yield_now();
        }
        for p in producers {
            p.join();
        }
        // ...and then drains whatever is left.
        while let Some(v) = ring.try_pop() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "each pushed value popped exactly once");
        assert!(ring.try_pop().is_none(), "ring empty after the drain");
    });
    outcome.assert_pass("TicketRing 2 producers x 1 consumer");
    match outcome {
        fairmpi_check::Outcome::Pass {
            schedules,
            complete,
        } => {
            assert!(complete, "bounded schedule space was not exhausted");
            println!("TicketRing 2p1c: {schedules} schedules, exhaustive");
        }
        fairmpi_check::Outcome::Fail(_) => unreachable!(),
    }
}

/// Batch extraction (`pop_batch`, the consumer path the offload workers
/// actually use) against racing producers.
#[test]
fn ring_pop_batch_collects_everything() {
    let checker = Checker::new();
    let outcome = checker.check(|| {
        let ring = Arc::new(TicketRing::with_capacity(4));
        let producers: Vec<_> = (1..=2u64)
            .map(|v| {
                let ring = Arc::clone(&ring);
                spawn(move || {
                    ring.try_push(v).expect("capacity covers every push");
                })
            })
            .collect();
        for p in producers {
            p.join();
        }
        let mut out = Vec::new();
        let n = ring.pop_batch(&mut out, 8);
        assert_eq!(n, 2);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
    });
    outcome.assert_pass("TicketRing pop_batch");
}
