//! The checker's own regression suite: four deliberately seeded
//! concurrency bugs (see `fairmpi_check::mutants`), each of which the
//! checker must catch with a reproducible counterexample. A checker that
//! passes correct code proves nothing unless it also fails broken code.

use fairmpi_check::mutants::{MiniPool, ModelRing, Pop, RacyDedup, RingBug};
use fairmpi_check::{assert_reproducible_failure, spawn, yield_now, Checker, Counterexample};
use fairmpi_sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// --- scenario bodies (fn items so check and replay run the same code) ---

fn ring_publish_before_write() {
    let ring = Arc::new(ModelRing::new(4, RingBug::PublishBeforeWrite));
    let producer = {
        let ring = Arc::clone(&ring);
        spawn(move || assert!(ring.try_push(7)))
    };
    let mut got = None;
    for _ in 0..3 {
        match ring.try_pop() {
            Pop::Value(v) => {
                got = Some(v);
                break;
            }
            Pop::Torn => panic!("popped a published but unwritten slot"),
            Pop::Empty => yield_now(),
        }
    }
    producer.join();
    if got.is_none() {
        match ring.try_pop() {
            Pop::Value(v) => got = Some(v),
            other => panic!("expected the pushed value after join, got {other:?}"),
        }
    }
    assert_eq!(got, Some(7));
}

fn ring_ticket_without_cas() {
    let ring = Arc::new(ModelRing::new(4, RingBug::TicketWithoutCas));
    let producers: Vec<_> = (1..=2u64)
        .map(|v| {
            let ring = Arc::clone(&ring);
            spawn(move || assert!(ring.try_push(v)))
        })
        .collect();
    for p in producers {
        p.join();
    }
    let mut got = Vec::new();
    for _ in 0..2 {
        match ring.try_pop() {
            Pop::Value(v) => got.push(v),
            Pop::Empty => panic!("a pushed value was lost ({} of 2 popped)", got.len()),
            Pop::Torn => panic!("popped a published but unwritten slot"),
        }
    }
    got.sort_unstable();
    assert_eq!(got, vec![1, 2], "no value duplicated or lost");
}

fn progress_lost_wakeup() {
    let pool = Arc::new(MiniPool::new(2, true));
    let poster = {
        let pool = Arc::clone(&pool);
        spawn(move || pool.post(1, 7))
    };
    let mut out = Vec::new();
    for _ in 0..2 {
        pool.pass(0, &mut out);
        if !out.is_empty() {
            break;
        }
        yield_now();
    }
    poster.join();
    // Give the mutant every chance: two full passes after the post is
    // complete. Once its pending signal is consumed, no number of passes
    // recovers the stranded completion.
    for _ in 0..2 {
        if out.is_empty() {
            pool.pass(0, &mut out);
        }
    }
    assert_eq!(
        out,
        vec![7],
        "the posted completion is eventually extracted"
    );
}

fn dedup_check_then_insert() {
    let dedup = Arc::new(RacyDedup::new());
    let accepted = Arc::new(AtomicU64::new(0));
    let deliveries: Vec<_> = (0..2)
        .map(|_| {
            let dedup = Arc::clone(&dedup);
            let accepted = Arc::clone(&accepted);
            spawn(move || {
                if dedup.accept(1) {
                    accepted.fetch_add(1, Ordering::SeqCst);
                }
            })
        })
        .collect();
    for d in deliveries {
        d.join();
    }
    assert_eq!(
        accepted.load(Ordering::SeqCst),
        1,
        "exactly one delivery of tseq 1 accepted"
    );
}

// --- catchers: explore, then replay the counterexample verbatim ---

fn catch(what: &str, scenario: fn()) -> Counterexample {
    let checker = Checker::new();
    let outcome = checker.check(scenario);
    let ce = assert_reproducible_failure(&checker, &outcome, scenario, what);
    println!(
        "caught '{what}' after {} schedule(s)",
        ce.schedules_explored
    );
    ce
}

#[test]
fn mutant_ring_publish_before_write_caught() {
    catch("ring publish-before-write", ring_publish_before_write);
}

#[test]
fn mutant_ring_ticket_without_cas_caught() {
    catch("ring ticket-without-CAS", ring_ticket_without_cas);
}

#[test]
fn mutant_progress_lost_wakeup_caught() {
    catch("progress lost-wakeup", progress_lost_wakeup);
}

#[test]
fn mutant_dedup_check_then_insert_caught() {
    catch("dedup check-then-insert", dedup_check_then_insert);
}

/// The gate ci.sh greps for: every seeded mutant produced a reproducible
/// counterexample.
#[test]
fn all_seeded_mutants_caught() {
    let mutants: [(&str, fn()); 4] = [
        ("ring publish-before-write", ring_publish_before_write),
        ("ring ticket-without-CAS", ring_ticket_without_cas),
        ("progress lost-wakeup", progress_lost_wakeup),
        ("dedup check-then-insert", dedup_check_then_insert),
    ];
    for (what, scenario) in mutants {
        let ce = catch(what, scenario);
        assert!(!ce.schedule.is_empty(), "counterexample has a schedule");
    }
    println!("all 4 seeded mutants caught");
}

/// The miniature ring with no seeded bug upholds the same properties the
/// mutants violate — evidence the miniature (and not an artifact of it)
/// is what the mutants break.
#[test]
fn miniature_ring_correct_protocol_passes() {
    let checker = Checker::new();
    checker
        .check(|| {
            let ring = Arc::new(ModelRing::new(4, RingBug::None));
            let producers: Vec<_> = (1..=2u64)
                .map(|v| {
                    let ring = Arc::clone(&ring);
                    spawn(move || assert!(ring.try_push(v)))
                })
                .collect();
            let mut got = Vec::new();
            for _ in 0..3 {
                match ring.try_pop() {
                    Pop::Value(v) => got.push(v),
                    Pop::Torn => panic!("popped a published but unwritten slot"),
                    Pop::Empty => yield_now(),
                }
                if got.len() == 2 {
                    break;
                }
            }
            for p in producers {
                p.join();
            }
            loop {
                match ring.try_pop() {
                    Pop::Value(v) => got.push(v),
                    Pop::Torn => panic!("popped a published but unwritten slot"),
                    Pop::Empty => break,
                }
            }
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        })
        .assert_pass("miniature ring, correct protocol");
}
