//! Exhaustive interleaving check of the Algorithm 2 progress shape:
//! dedicated-instance drain first, unconditional round-robin fallback
//! sweep when the dedicated drain produced nothing.

use fairmpi_check::mutants::MiniPool;
use fairmpi_check::{spawn, yield_now, Checker};
use std::sync::Arc;

/// A completion posted to an instance nobody is dedicated to is still
/// extracted, in every schedule: the fallback sweep runs unconditionally,
/// so no cross-thread signal can be lost.
#[test]
fn algorithm2_fallback_sweep_extracts_stranded_completion() {
    let checker = Checker::new();
    let outcome = checker.check(|| {
        let pool = Arc::new(MiniPool::new(2, false));
        let poster = {
            let pool = Arc::clone(&pool);
            // The fabric delivers a completion to instance 1 — which no
            // progress thread is dedicated to.
            spawn(move || pool.post(1, 7))
        };
        // The main thread is the progress thread dedicated to instance 0.
        // A few passes overlap the posting...
        let mut out = Vec::new();
        for _ in 0..2 {
            pool.pass(0, &mut out);
            if !out.is_empty() {
                break;
            }
            yield_now();
        }
        poster.join();
        // ...and one pass after the post is visible must find it.
        if out.is_empty() {
            pool.pass(0, &mut out);
        }
        assert_eq!(out, vec![7], "stranded completion extracted by the sweep");
    });
    outcome.assert_pass("Algorithm 2 fallback sweep");
    match outcome {
        fairmpi_check::Outcome::Pass {
            schedules,
            complete,
        } => {
            assert!(complete, "bounded schedule space was not exhausted");
            println!("Algorithm 2 sweep: {schedules} schedules, exhaustive");
        }
        fairmpi_check::Outcome::Fail(_) => unreachable!(),
    }
}

/// Two progress threads with different dedicated instances never deadlock
/// and never double-extract a completion (try-lock contention on one
/// instance leaves the completion for the lock holder).
#[test]
fn algorithm2_two_progress_threads_extract_exactly_once() {
    let checker = Checker::new();
    let outcome = checker.check(|| {
        let pool = Arc::new(MiniPool::new(2, false));
        pool.post(1, 7);
        let other = {
            let pool = Arc::clone(&pool);
            spawn(move || {
                let mut out = Vec::new();
                pool.pass(1, &mut out);
                out
            })
        };
        let mut out = Vec::new();
        pool.pass(0, &mut out);
        let mut all = other.join();
        all.append(&mut out);
        // Between the dedicated owner and the sweeping thread, exactly one
        // extracts the completion.
        assert_eq!(all, vec![7], "completion extracted exactly once");
    });
    outcome.assert_pass("Algorithm 2 two progress threads");
}
