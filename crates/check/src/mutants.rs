//! Deliberately-broken miniatures of the runtime's concurrency kernels.
//!
//! Each type here mirrors the *shape* of a real fairmpi algorithm —
//! small enough for exhaustive schedule exploration, faithful enough
//! that the seeded bug is the same bug a regression in the real code
//! would introduce. The test suite asserts that [`crate::Checker`]
//! produces a reproducible counterexample for every mutant, which is the
//! evidence that the checker would catch the corresponding real
//! regression. **Nothing in this module is used by the runtime.**
//!
//! The four seeded bugs:
//!
//! 1. [`RingBug::PublishBeforeWrite`] — the MPSC ring publishes a slot's
//!    sequence number before storing the value, so a concurrent consumer
//!    can pop an unwritten slot ([`Pop::Torn`]).
//! 2. [`RingBug::TicketWithoutCas`] — the producer claims its ticket with
//!    a load + store instead of a compare-exchange, so two producers can
//!    claim the same slot and one value is lost.
//! 3. [`MiniPool`] with `lost_wakeup = true` — Algorithm 2's fallback
//!    sweep is gated on a pending flag that the poster raises *before*
//!    inserting the completion; a sweep in the window consumes the flag,
//!    finds nothing, and the completion is stranded forever.
//! 4. [`RacyDedup`] — receiver-side duplicate suppression as a
//!    check-then-insert across two lock acquisitions, so two racing
//!    deliveries of the same `tseq` are both accepted.

use fairmpi_sync::atomic::{AtomicU64, Ordering};
use fairmpi_sync::Mutex;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Miniature MPSC ticket ring (mirrors fairmpi_offload::TicketRing)
// ---------------------------------------------------------------------------

/// Which bug, if any, to seed into [`ModelRing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingBug {
    /// Correct protocol (used to validate the miniature itself).
    None,
    /// Publish the slot sequence before writing the value.
    PublishBeforeWrite,
    /// Claim the producer ticket with load + store instead of CAS.
    TicketWithoutCas,
}

/// Result of [`ModelRing::try_pop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pop {
    /// Ring empty (slot not yet published).
    Empty,
    /// A published value.
    Value(u64),
    /// The slot was published but its value was never written — the
    /// observable symptom of [`RingBug::PublishBeforeWrite`]. The real
    /// ring stores through an `UnsafeCell`, where this is a read of
    /// uninitialized memory; the miniature keeps it safe (and visible)
    /// with an `Option`.
    Torn,
}

struct Slot {
    seq: AtomicU64,
    value: Mutex<Option<u64>>,
}

/// Single-consumer miniature of the Vyukov-style command ring, with an
/// optional seeded bug. Capacity must be a power of two and at least the
/// total number of pushes in the test (no wraparound paths — the mutants
/// live in the claim/publish protocol, not in index arithmetic).
pub struct ModelRing {
    bug: RingBug,
    mask: u64,
    capacity: u64,
    tail: AtomicU64,
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl ModelRing {
    /// New ring with `capacity` slots (power of two).
    pub fn new(capacity: usize, bug: RingBug) -> Self {
        assert!(capacity.is_power_of_two());
        Self {
            bug,
            mask: capacity as u64 - 1,
            capacity: capacity as u64,
            tail: AtomicU64::new(0),
            head: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|i| Slot {
                    seq: AtomicU64::new(i as u64),
                    value: Mutex::new(None),
                })
                .collect(),
        }
    }

    /// Push from any producer thread. Returns `false` when full.
    pub fn try_push(&self, value: u64) -> bool {
        loop {
            let ticket = self.tail.load(Ordering::Acquire);
            let slot = &self.slots[(ticket & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == ticket {
                let claimed = match self.bug {
                    RingBug::TicketWithoutCas => {
                        // Seeded bug: non-atomic claim. Two producers can
                        // both read the same ticket and both "win" it.
                        self.tail.store(ticket + 1, Ordering::Release);
                        true
                    }
                    _ => self
                        .tail
                        .compare_exchange(ticket, ticket + 1, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok(),
                };
                if !claimed {
                    continue;
                }
                if self.bug == RingBug::PublishBeforeWrite {
                    // Seeded bug: the consumer may observe seq == ticket+1
                    // while the value below is still unwritten.
                    slot.seq.store(ticket + 1, Ordering::Release);
                    *slot.value.lock() = Some(value);
                } else {
                    *slot.value.lock() = Some(value);
                    slot.seq.store(ticket + 1, Ordering::Release);
                }
                return true;
            }
            if seq < ticket {
                return false;
            }
            // seq > ticket: another producer advanced tail; retry.
        }
    }

    /// Pop from the single consumer thread.
    pub fn try_pop(&self) -> Pop {
        let head = self.head.load(Ordering::Acquire);
        let slot = &self.slots[(head & self.mask) as usize];
        if slot.seq.load(Ordering::Acquire) != head + 1 {
            return Pop::Empty;
        }
        let taken = slot.value.lock().take();
        slot.seq.store(head + self.capacity, Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
        match taken {
            Some(v) => Pop::Value(v),
            None => Pop::Torn,
        }
    }
}

// ---------------------------------------------------------------------------
// Miniature Algorithm 2 progress loop (mirrors fairmpi_progress)
// ---------------------------------------------------------------------------

/// Miniature of the paper's Algorithm 2: each progress pass drains the
/// caller's dedicated instance first and, when that produced nothing,
/// sweeps every instance round-robin so a completion stranded on an
/// unattended instance is still extracted.
///
/// With `lost_wakeup = true` the sweep is gated on a pending flag that
/// posters raise *before* inserting (a classic lost-wakeup window): a
/// sweep between the flag store and the insert consumes the signal, finds
/// nothing, and every later pass skips the sweep — the completion is
/// stranded. The correct design runs the sweep unconditionally, which is
/// exactly why Algorithm 2 does not rely on cross-thread signaling.
pub struct MiniPool {
    lost_wakeup: bool,
    has_pending: AtomicU64,
    round_robin: AtomicU64,
    instances: Vec<Mutex<Vec<u64>>>,
}

impl MiniPool {
    /// `n` instances; `lost_wakeup` seeds the mutant.
    pub fn new(n: usize, lost_wakeup: bool) -> Self {
        Self {
            lost_wakeup,
            has_pending: AtomicU64::new(0),
            round_robin: AtomicU64::new(0),
            instances: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Deliver a completion to instance `k` (fabric side).
    pub fn post(&self, k: usize, completion: u64) {
        if self.lost_wakeup {
            // Seeded bug: signal before the completion is visible.
            self.has_pending.store(1, Ordering::SeqCst);
            self.instances[k].lock().push(completion);
        } else {
            self.instances[k].lock().push(completion);
            self.has_pending.store(1, Ordering::SeqCst);
        }
    }

    fn drain_one(&self, k: usize, out: &mut Vec<u64>) -> usize {
        let Some(mut q) = self.instances[k].try_lock() else {
            // Another thread is working this instance (paper §III-C).
            return 0;
        };
        let n = q.len();
        out.append(&mut q);
        n
    }

    /// One progress pass by the thread assigned to instance `assigned`.
    /// Returns the number of completions extracted into `out`.
    pub fn pass(&self, assigned: usize, out: &mut Vec<u64>) -> usize {
        let mut count = self.drain_one(assigned, out);
        if count == 0 {
            if self.lost_wakeup && self.has_pending.swap(0, Ordering::SeqCst) == 0 {
                // Seeded bug: no signal, skip the fallback sweep.
                return 0;
            }
            for _ in 0..self.instances.len() {
                let k = self.round_robin.fetch_add(1, Ordering::Relaxed) as usize
                    % self.instances.len();
                count += self.drain_one(k, out);
                if count > 0 {
                    break;
                }
            }
        }
        count
    }
}

// ---------------------------------------------------------------------------
// Racy duplicate suppression (mirrors fairmpi::DedupWindow misuse)
// ---------------------------------------------------------------------------

/// Receiver-side duplicate suppression with a seeded check-then-insert
/// race: membership is tested under one lock acquisition and recorded
/// under a second, so two racing deliveries of the same `tseq` can both
/// observe "new" and both be accepted. The correct design (the runtime's
/// `Reliability::accept`) holds one lock across the whole
/// [`fairmpi::DedupWindow::accept`] test-and-record.
pub struct RacyDedup {
    seen: Mutex<BTreeSet<u64>>,
}

impl RacyDedup {
    /// Empty window.
    pub fn new() -> Self {
        Self {
            seen: Mutex::new(BTreeSet::new()),
        }
    }

    /// `true` if this `tseq` is (apparently) new.
    pub fn accept(&self, tseq: u64) -> bool {
        if self.seen.lock().contains(&tseq) {
            return false;
        }
        // Seeded bug: the lock was dropped — another delivery of the same
        // tseq can pass the check above before the insert below lands.
        self.seen.lock().insert(tseq);
        true
    }
}

impl Default for RacyDedup {
    fn default() -> Self {
        Self::new()
    }
}
