//! Deterministic interleaving checker for the fairmpi lock-free core.
//!
//! The runtime's concurrency-critical crates are written against the
//! [`fairmpi_sync`] facade. This crate turns that facade's `model` backend
//! into a test harness: a [`Checker`] runs a closed concurrent program
//! under every thread interleaving within a preemption bound (CHESS-style
//! bounded-preemption DFS), serializing real OS threads so each lock
//! acquisition, atomic access, and condvar operation becomes a scheduling
//! decision point. A failing schedule is returned as a
//! [`Counterexample`] — the exact sequence of thread ids granted at each
//! decision point — and can be re-executed verbatim with
//! [`Checker::replay`].
//!
//! What is covered (see the `tests/` directory):
//!
//! * the real [`fairmpi_offload::TicketRing`] MPSC command ring under
//!   racing producers and a concurrent consumer,
//! * a miniature of the paper's Algorithm 2 progress loop
//!   (dedicated-instance drain with round-robin fallback sweep),
//! * the real [`fairmpi::DedupWindow`] receiver-side duplicate
//!   suppression under racing deliveries.
//!
//! The [`mutants`] module carries deliberately-broken variants of each
//! algorithm; the test suite asserts the checker produces a reproducible
//! counterexample for every one of them. That closes the loop on the
//! checker itself: a checker that cannot catch a seeded bug proves
//! nothing by passing.
//!
//! The model explores *scheduling* nondeterminism only: operations are
//! executed by serialized threads on real memory, so semantics are
//! sequentially consistent regardless of the `Ordering` arguments.
//! Weak-memory reorderings are out of scope (DESIGN.md §10).
//!
//! Quick start:
//!
//! ```
//! use fairmpi_check::{spawn, Checker};
//! use fairmpi_sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let outcome = Checker::new().check(|| {
//!     let n = Arc::new(AtomicU64::new(0));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let n = Arc::clone(&n);
//!             spawn(move || n.fetch_add(1, Ordering::Relaxed))
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join();
//!     }
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! outcome.assert_pass("two incrementing threads");
//! ```

pub use fairmpi_sync::model::{
    spawn, thread_id, yield_now, Checker, Counterexample, JoinHandle, Outcome,
};

pub mod mutants;

/// Assert that `outcome` is a failure and that replaying its counterexample
/// schedule reproduces a failure. Returns the counterexample for further
/// inspection. This is the contract every seeded-mutant test relies on:
/// finding a bug is only useful if the finding is reproducible.
pub fn assert_reproducible_failure(
    checker: &Checker,
    outcome: &Outcome,
    f: impl Fn() + Send + Sync + 'static,
    what: &str,
) -> Counterexample {
    let ce = outcome
        .counterexample()
        .unwrap_or_else(|| panic!("checker missed the seeded bug in '{what}'"))
        .clone();
    let replayed = checker.replay(&ce.schedule, f);
    assert!(
        replayed.is_fail(),
        "counterexample for '{what}' did not reproduce under replay\n{ce}"
    );
    ce
}
