//! One-sided (RMA) communication.
//!
//! Paper §II-D: one-sided communication separates data movement from
//! synchronization and needs no matching, which removes the multithreaded
//! bottleneck the two-sided path suffers from — at the price of putting the
//! synchronization burden on the user. The paper's Figs. 6 and 7 stress
//! exactly this path (`MPI_Put` + `MPI_Win_flush`) through the RMA-MT
//! benchmark.
//!
//! Mirroring RDMA offload, an origin thread performs the remote access
//! *directly against the target's window memory* while holding only its own
//! CRI — the target process never participates. Completion events land on
//! the origin's completion queue; `flush` progresses the origin until its
//! pending count toward the target drains.

use fairmpi_sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use fairmpi_sync::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

use fairmpi_fabric::Rank;

use crate::error::{MpiError, Result};
use crate::proc::Proc;

/// Identifier of a window, valid on every rank of its world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowId(pub(crate) u32);

/// Element-wise atomic update operations (`MPI_Accumulate` reductions), on
/// little-endian u64 lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccumulateOp {
    /// `MPI_SUM`
    Sum,
    /// `MPI_REPLACE`
    Replace,
    /// `MPI_MAX`
    Max,
    /// `MPI_MIN`
    Min,
}

impl AccumulateOp {
    fn apply(self, target: u64, origin: u64) -> u64 {
        match self {
            AccumulateOp::Sum => target.wrapping_add(origin),
            AccumulateOp::Replace => origin,
            AccumulateOp::Max => target.max(origin),
            AccumulateOp::Min => target.min(origin),
        }
    }
}

/// Sense-reversing barrier used by `fence` (active-target synchronization).
#[derive(Debug)]
pub(crate) struct FenceBarrier {
    arrived: AtomicUsize,
    generation: AtomicUsize,
    size: usize,
}

impl FenceBarrier {
    fn new(size: usize) -> Self {
        Self {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            size,
        }
    }

    pub(crate) fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.size {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            while self.generation.load(Ordering::Acquire) == gen {
                std::thread::yield_now();
            }
        }
    }
}

/// Shared state of one window across all ranks.
#[derive(Debug)]
pub(crate) struct WindowState {
    pub(crate) id: WindowId,
    pub(crate) len: usize,
    num_ranks: usize,
    /// One exposed buffer per rank. `AtomicU8` keeps concurrent one-sided
    /// byte access well-defined without claiming more atomicity than MPI's
    /// separate memory model does.
    buffers: Vec<Box<[AtomicU8]>>,
    /// Per-target lock making accumulate element-updates atomic w.r.t. each
    /// other, as MPI requires for accumulates (but not for put/get).
    acc_locks: Vec<Mutex<()>>,
    /// Outstanding (injected, undrained) operations per (origin, target).
    pending: Vec<AtomicU64>,
    /// Passive-target exposure epochs (`MPI_Win_lock`): one RwLock per
    /// target rank; exclusive == `MPI_LOCK_EXCLUSIVE`.
    epochs: Vec<RwLock<()>>,
    /// Active-target fence barrier.
    fence: FenceBarrier,
}

impl WindowState {
    pub(crate) fn new(id: WindowId, len: usize, num_ranks: usize) -> Self {
        Self {
            id,
            len,
            num_ranks,
            buffers: (0..num_ranks)
                .map(|_| (0..len).map(|_| AtomicU8::new(0)).collect())
                .collect(),
            acc_locks: (0..num_ranks).map(|_| Mutex::new(())).collect(),
            pending: (0..num_ranks * num_ranks)
                .map(|_| AtomicU64::new(0))
                .collect(),
            epochs: (0..num_ranks).map(|_| RwLock::new(())).collect(),
            fence: FenceBarrier::new(num_ranks),
        }
    }

    fn check_range(&self, offset: usize, len: usize) -> Result<()> {
        if offset.checked_add(len).is_none_or(|end| end > self.len) {
            return Err(MpiError::WindowOutOfRange {
                offset,
                len,
                window_len: self.len,
            });
        }
        Ok(())
    }

    fn pending_slot(&self, origin: Rank, target: Rank) -> &AtomicU64 {
        &self.pending[origin as usize * self.num_ranks + target as usize]
    }

    pub(crate) fn pending_inc(&self, origin: Rank, target: Rank) {
        self.pending_slot(origin, target)
            .fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn pending_dec(&self, origin: Rank, target: Rank) {
        let prev = self
            .pending_slot(origin, target)
            .fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "RMA completion without a pending op");
    }

    pub(crate) fn pending_toward(&self, origin: Rank, target: Rank) -> u64 {
        self.pending_slot(origin, target).load(Ordering::Acquire)
    }

    pub(crate) fn pending_total(&self, origin: Rank) -> u64 {
        (0..self.num_ranks)
            .map(|t| self.pending_toward(origin, t as Rank))
            .sum()
    }

    /// Raw byte store into a target buffer (caller already validated).
    pub(crate) fn store_bytes(&self, target: Rank, offset: usize, data: &[u8]) {
        let buf = &self.buffers[target as usize];
        for (i, &b) in data.iter().enumerate() {
            buf[offset + i].store(b, Ordering::Relaxed);
        }
    }

    /// Raw byte load from a target buffer.
    pub(crate) fn load_bytes(&self, target: Rank, offset: usize, len: usize) -> Vec<u8> {
        let buf = &self.buffers[target as usize];
        (0..len)
            .map(|i| buf[offset + i].load(Ordering::Relaxed))
            .collect()
    }

    fn load_u64(&self, target: Rank, offset: usize) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.buffers[target as usize][offset + i].load(Ordering::Relaxed);
        }
        u64::from_le_bytes(bytes)
    }

    fn store_u64(&self, target: Rank, offset: usize, value: u64) {
        for (i, &b) in value.to_le_bytes().iter().enumerate() {
            self.buffers[target as usize][offset + i].store(b, Ordering::Relaxed);
        }
    }

    /// Element-atomic accumulate over u64 lanes; returns the previous value
    /// of the first lane (for fetch-style ops).
    pub(crate) fn accumulate_u64(
        &self,
        target: Rank,
        offset: usize,
        lanes: &[u64],
        op: AccumulateOp,
    ) -> u64 {
        let _atomic = self.acc_locks[target as usize].lock();
        let mut first_prev = 0;
        for (i, &lane) in lanes.iter().enumerate() {
            let off = offset + i * 8;
            let prev = self.load_u64(target, off);
            if i == 0 {
                first_prev = prev;
            }
            self.store_u64(target, off, op.apply(prev, lane));
        }
        first_prev
    }

    /// Element-atomic compare-and-swap on one u64 lane; returns the
    /// previous value.
    pub(crate) fn compare_swap_u64(
        &self,
        target: Rank,
        offset: usize,
        compare: u64,
        swap: u64,
    ) -> u64 {
        let _atomic = self.acc_locks[target as usize].lock();
        let prev = self.load_u64(target, offset);
        if prev == compare {
            self.store_u64(target, offset, swap);
        }
        prev
    }

    pub(crate) fn epoch(&self, target: Rank) -> &RwLock<()> {
        &self.epochs[target as usize]
    }

    pub(crate) fn fence_wait(&self) {
        self.fence.wait();
    }

    fn validate_atomic(&self, offset: usize, len: usize) -> Result<()> {
        self.check_range(offset, len)?;
        if !offset.is_multiple_of(8) || !len.is_multiple_of(8) {
            return Err(MpiError::MisalignedAtomic(offset));
        }
        Ok(())
    }
}

/// Registry of all windows of a world, shared by every rank.
#[derive(Debug, Default)]
pub(crate) struct WindowRegistry {
    next: AtomicU32,
    map: RwLock<HashMap<u32, Arc<WindowState>>>,
}

impl WindowRegistry {
    pub(crate) fn allocate(&self, len: usize, num_ranks: usize) -> WindowId {
        let id = WindowId(self.next.fetch_add(1, Ordering::Relaxed));
        let state = Arc::new(WindowState::new(id, len, num_ranks));
        self.map.write().insert(id.0, state);
        id
    }

    pub(crate) fn get(&self, id: WindowId) -> Result<Arc<WindowState>> {
        self.map
            .read()
            .get(&id.0)
            .cloned()
            .ok_or(MpiError::InvalidWindow(id.0 as u64))
    }

    pub(crate) fn free(&self, id: WindowId) {
        self.map.write().remove(&id.0);
    }
}

/// RAII passive-target epoch, returned by [`Window::lock_exclusive`] /
/// [`Window::lock_shared`]. Dropping the guard is `MPI_Win_unlock`.
#[must_use = "dropping the guard immediately ends the epoch"]
pub struct EpochGuard<'a> {
    _guard: EpochGuardInner<'a>,
}

// The guards are held purely for their Drop behavior (ending the epoch).
#[allow(dead_code)]
enum EpochGuardInner<'a> {
    Exclusive(fairmpi_sync::RwLockWriteGuard<'a, ()>),
    Shared(fairmpi_sync::RwLockReadGuard<'a, ()>),
}

/// A window handle bound to one rank (the origin of the operations issued
/// through it).
#[derive(Clone)]
pub struct Window {
    pub(crate) state: Arc<WindowState>,
    pub(crate) proc: Proc,
}

impl Window {
    /// Window id.
    pub fn id(&self) -> WindowId {
        self.state.id
    }

    /// Window size in bytes (identical on every rank).
    pub fn len(&self) -> usize {
        self.state.len
    }

    /// True for zero-byte windows.
    pub fn is_empty(&self) -> bool {
        self.state.len == 0
    }

    /// Remote write (`MPI_Put`). Completes locally at the next
    /// [`Window::flush`]/[`Window::flush_all`] toward `target`.
    pub fn put(&self, target: Rank, offset: usize, data: &[u8]) -> Result<()> {
        self.proc.state.validate_rank(target)?;
        self.state.check_range(offset, data.len())?;
        self.proc.state.rma_put(&self.state, target, offset, data);
        Ok(())
    }

    /// Remote read (`MPI_Get`). The returned bytes are valid after
    /// [`Window::flush`] toward `target` (this implementation also makes
    /// them available immediately, which is a legal strengthening).
    pub fn get(&self, target: Rank, offset: usize, len: usize) -> Result<Vec<u8>> {
        self.proc.state.validate_rank(target)?;
        self.state.check_range(offset, len)?;
        Ok(self.proc.state.rma_get(&self.state, target, offset, len))
    }

    /// Remote accumulate (`MPI_Accumulate`) over u64 lanes. Element-atomic
    /// with respect to other accumulates on the same target.
    pub fn accumulate(
        &self,
        target: Rank,
        offset: usize,
        lanes: &[u64],
        op: AccumulateOp,
    ) -> Result<()> {
        self.proc.state.validate_rank(target)?;
        self.state.validate_atomic(offset, lanes.len() * 8)?;
        self.proc
            .state
            .rma_accumulate(&self.state, target, offset, lanes, op);
        Ok(())
    }

    /// Atomic fetch-and-add on one u64 lane (`MPI_Fetch_and_op` with
    /// `MPI_SUM`); returns the previous value.
    pub fn fetch_add(&self, target: Rank, offset: usize, value: u64) -> Result<u64> {
        self.proc.state.validate_rank(target)?;
        self.state.validate_atomic(offset, 8)?;
        Ok(self
            .proc
            .state
            .rma_fetch_op(&self.state, target, offset, value))
    }

    /// Atomic compare-and-swap on one u64 lane (`MPI_Compare_and_swap`);
    /// returns the previous value.
    pub fn compare_swap(
        &self,
        target: Rank,
        offset: usize,
        compare: u64,
        swap: u64,
    ) -> Result<u64> {
        self.proc.state.validate_rank(target)?;
        self.state.validate_atomic(offset, 8)?;
        Ok(self
            .proc
            .state
            .rma_compare_swap(&self.state, target, offset, compare, swap))
    }

    /// Passive-target flush (`MPI_Win_flush`): progress until every
    /// operation this rank issued toward `target` has completed.
    pub fn flush(&self, target: Rank) -> Result<()> {
        self.proc.state.validate_rank(target)?;
        self.proc.state.rma_flush(&self.state, Some(target));
        Ok(())
    }

    /// Flush toward every target (`MPI_Win_flush_all`).
    pub fn flush_all(&self) {
        self.proc.state.rma_flush(&self.state, None);
    }

    /// Begin an exclusive passive-target epoch on `target`
    /// (`MPI_Win_lock(MPI_LOCK_EXCLUSIVE)`); ends when the guard drops.
    pub fn lock_exclusive(&self, target: Rank) -> Result<EpochGuard<'_>> {
        self.proc.state.validate_rank(target)?;
        Ok(EpochGuard {
            _guard: EpochGuardInner::Exclusive(self.state.epoch(target).write()),
        })
    }

    /// Begin a shared passive-target epoch on `target`
    /// (`MPI_Win_lock(MPI_LOCK_SHARED)`).
    pub fn lock_shared(&self, target: Rank) -> Result<EpochGuard<'_>> {
        self.proc.state.validate_rank(target)?;
        Ok(EpochGuard {
            _guard: EpochGuardInner::Shared(self.state.epoch(target).read()),
        })
    }

    /// Active-target fence (`MPI_Win_fence`): flush everything, then
    /// barrier with every other rank of the window.
    pub fn fence(&self) {
        self.flush_all();
        self.state.fence_wait();
    }

    /// Read this rank's own exposed region (local load).
    pub fn read_local(&self, offset: usize, len: usize) -> Result<Vec<u8>> {
        self.state.check_range(offset, len)?;
        Ok(self.state.load_bytes(self.proc.rank(), offset, len))
    }

    /// Write this rank's own exposed region (local store).
    pub fn write_local(&self, offset: usize, data: &[u8]) -> Result<()> {
        self.state.check_range(offset, data.len())?;
        self.state.store_bytes(self.proc.rank(), offset, data);
        Ok(())
    }

    /// Outstanding operations this rank has toward `target`.
    pub fn pending_toward(&self, target: Rank) -> u64 {
        self.state.pending_toward(self.proc.rank(), target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_ops_apply() {
        assert_eq!(AccumulateOp::Sum.apply(3, 4), 7);
        assert_eq!(AccumulateOp::Replace.apply(3, 4), 4);
        assert_eq!(AccumulateOp::Max.apply(3, 4), 4);
        assert_eq!(AccumulateOp::Min.apply(3, 4), 3);
        assert_eq!(AccumulateOp::Sum.apply(u64::MAX, 1), 0, "wrapping");
    }

    #[test]
    fn window_state_bounds_checks() {
        let w = WindowState::new(WindowId(0), 64, 2);
        assert!(w.check_range(0, 64).is_ok());
        assert!(w.check_range(60, 5).is_err());
        assert!(w.check_range(usize::MAX, 2).is_err(), "overflow guarded");
        assert!(w.validate_atomic(8, 16).is_ok());
        assert!(matches!(
            w.validate_atomic(4, 8),
            Err(MpiError::MisalignedAtomic(4))
        ));
    }

    #[test]
    fn store_load_round_trip() {
        let w = WindowState::new(WindowId(0), 16, 2);
        w.store_bytes(1, 4, &[1, 2, 3]);
        assert_eq!(w.load_bytes(1, 4, 3), vec![1, 2, 3]);
        assert_eq!(w.load_bytes(0, 4, 3), vec![0, 0, 0], "per-rank buffers");
    }

    #[test]
    fn accumulate_and_cas_semantics() {
        let w = WindowState::new(WindowId(0), 32, 1);
        let prev = w.accumulate_u64(0, 0, &[5, 7], AccumulateOp::Sum);
        assert_eq!(prev, 0);
        let prev = w.accumulate_u64(0, 0, &[10, 10], AccumulateOp::Sum);
        assert_eq!(prev, 5);
        assert_eq!(w.load_u64(0, 0), 15);
        assert_eq!(w.load_u64(0, 8), 17);
        // CAS hits then misses.
        assert_eq!(w.compare_swap_u64(0, 0, 15, 99), 15);
        assert_eq!(w.load_u64(0, 0), 99);
        assert_eq!(w.compare_swap_u64(0, 0, 15, 1), 99, "miss returns prev");
        assert_eq!(w.load_u64(0, 0), 99, "miss leaves value");
    }

    #[test]
    fn pending_accounting() {
        let w = WindowState::new(WindowId(0), 8, 3);
        w.pending_inc(0, 2);
        w.pending_inc(0, 2);
        w.pending_inc(0, 1);
        assert_eq!(w.pending_toward(0, 2), 2);
        assert_eq!(w.pending_total(0), 3);
        assert_eq!(w.pending_total(1), 0);
        w.pending_dec(0, 2);
        assert_eq!(w.pending_total(0), 2);
    }

    #[test]
    fn registry_lifecycle() {
        let reg = WindowRegistry::default();
        let id = reg.allocate(128, 2);
        assert_eq!(reg.get(id).unwrap().len, 128);
        reg.free(id);
        assert!(reg.get(id).is_err());
    }

    #[test]
    fn fence_barrier_releases_all() {
        let b = Arc::new(FenceBarrier::new(3));
        let hs: Vec<_> = (0..3)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        b.wait();
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
    }
}
