//! Control variables — the `MPI_T` cvar / MCA-parameter surface.
//!
//! Paper §III-B: *"an implementation can provide the user with a way to
//! give a hint via environment variable(s), MPI info key(s), or other
//! means (MCA parameters for Open MPI or the new MPI control variables
//! MPI_T_cvar) to let the implementation know how many threads the
//! application intend to use"*. This module is that surface: a typed
//! registry of control variables, settable programmatically or through
//! `FAIRMPI_*` environment variables, resolving to a [`DesignConfig`].

use std::collections::BTreeMap;
use std::fmt;

use crate::design::{Assignment, DesignConfig, LockModel, MatchMode, ProgressMode};

/// One control variable's description (an `MPI_T_cvar_get_info` analogue).
#[derive(Debug, Clone)]
pub struct CvarInfo {
    /// Variable name (also the `FAIRMPI_<NAME>` environment key).
    pub name: &'static str,
    /// Human-readable description.
    pub description: &'static str,
    /// Allowed values, for enumerated variables.
    pub values: &'static [&'static str],
}

/// The control variables this runtime exposes.
pub const CVARS: &[CvarInfo] = &[
    CvarInfo {
        name: "num_instances",
        description: "Number of communication resources instances (CRIs) \
                      to allocate per rank; clamp: hardware context limit. \
                      The paper's hint for the expected thread count.",
        values: &[],
    },
    CvarInfo {
        name: "assignment",
        description: "CRI assignment strategy (paper Algorithm 1).",
        values: &["round_robin", "dedicated"],
    },
    CvarInfo {
        name: "progress",
        description: "Progress engine design (paper Algorithm 2 vs the \
                      original serialized engine).",
        values: &["serial", "concurrent"],
    },
    CvarInfo {
        name: "matching",
        description: "Matching layout: OB1-style per-communicator queues \
                      or a single global queue.",
        values: &["per_communicator", "global"],
    },
    CvarInfo {
        name: "lock_model",
        description: "Per-instance locks, or one global critical section \
                      (big-lock emulation).",
        values: &["per_instance", "global_critical_section"],
    },
    CvarInfo {
        name: "allow_overtaking",
        description: "Default mpi_assert_allow_overtaking for new \
                      communicators (skips sequence validation).",
        values: &["true", "false"],
    },
    CvarInfo {
        name: "offload_workers",
        description: "Dedicated communication (offload) worker threads per \
                      rank; 0 disables offload. With offload on, see also \
                      the runtime keys FAIRMPI_OFFLOAD_QUEUE_CAPACITY, \
                      FAIRMPI_OFFLOAD_BATCH_LIMIT and \
                      FAIRMPI_OFFLOAD_BACKPRESSURE (spin|yield|try_again).",
        values: &[],
    },
];

/// Error from parsing a control variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CvarError {
    /// Variable that failed to parse.
    pub name: String,
    /// Offending value.
    pub value: String,
}

impl fmt::Display for CvarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid value {:?} for control variable {:?}",
            self.value, self.name
        )
    }
}

impl std::error::Error for CvarError {}

/// A set of control-variable assignments resolving to a [`DesignConfig`].
///
/// ```
/// use fairmpi::tuning::Cvars;
/// use fairmpi::{Assignment, ProgressMode};
///
/// let design = Cvars::new()
///     .set("num_instances", "16").unwrap()
///     .set("assignment", "dedicated").unwrap()
///     .set("progress", "concurrent").unwrap()
///     .resolve().unwrap();
/// assert_eq!(design.num_instances, 16);
/// assert_eq!(design.assignment, Assignment::Dedicated);
/// assert_eq!(design.progress, ProgressMode::Concurrent);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cvars {
    values: BTreeMap<String, String>,
}

impl Cvars {
    /// An empty assignment set (resolves to [`DesignConfig::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Read every `FAIRMPI_<NAME>` environment variable that matches a
    /// known cvar.
    pub fn from_env() -> Self {
        let mut out = Self::new();
        for cvar in CVARS {
            let key = format!("FAIRMPI_{}", cvar.name.to_uppercase());
            if let Some(v) = crate::env::raw(&key) {
                out.values.insert(cvar.name.to_string(), v);
            }
        }
        out
    }

    /// Set one variable by name. Unknown names are rejected; values are
    /// validated at [`Cvars::resolve`] time (as with `MPI_T`, writing and
    /// binding are separate steps).
    pub fn set(mut self, name: &str, value: &str) -> Result<Self, CvarError> {
        if !CVARS.iter().any(|c| c.name == name) {
            return Err(CvarError {
                name: name.to_string(),
                value: value.to_string(),
            });
        }
        self.values.insert(name.to_string(), value.to_string());
        Ok(self)
    }

    /// Currently assigned raw value of a variable.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// Resolve into a design configuration, starting from the default
    /// (original Open MPI) design.
    pub fn resolve(&self) -> Result<DesignConfig, CvarError> {
        self.resolve_over(DesignConfig::default())
    }

    /// Resolve on top of an explicit base design.
    pub fn resolve_over(&self, mut design: DesignConfig) -> Result<DesignConfig, CvarError> {
        let err = |name: &str, value: &str| CvarError {
            name: name.to_string(),
            value: value.to_string(),
        };
        for (name, value) in &self.values {
            match name.as_str() {
                "num_instances" => {
                    design.num_instances = value.parse().map_err(|_| err(name, value))?;
                }
                "assignment" => {
                    design.assignment = match value.as_str() {
                        "round_robin" => Assignment::RoundRobin,
                        "dedicated" => Assignment::Dedicated,
                        _ => return Err(err(name, value)),
                    };
                }
                "progress" => {
                    design.progress = match value.as_str() {
                        "serial" => ProgressMode::Serial,
                        "concurrent" => ProgressMode::Concurrent,
                        _ => return Err(err(name, value)),
                    };
                }
                "matching" => {
                    design.matching = match value.as_str() {
                        "per_communicator" => MatchMode::PerCommunicator,
                        "global" => MatchMode::Global,
                        _ => return Err(err(name, value)),
                    };
                }
                "lock_model" => {
                    design.lock_model = match value.as_str() {
                        "per_instance" => LockModel::PerInstance,
                        "global_critical_section" => LockModel::GlobalCriticalSection,
                        _ => return Err(err(name, value)),
                    };
                }
                "allow_overtaking" => {
                    design.allow_overtaking = match value.as_str() {
                        "true" | "1" => true,
                        "false" | "0" => false,
                        _ => return Err(err(name, value)),
                    };
                }
                "offload_workers" => {
                    design.offload_workers = value.parse().map_err(|_| err(name, value))?;
                }
                _ => return Err(err(name, value)),
            }
        }
        Ok(design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_resolves_to_default() {
        assert_eq!(Cvars::new().resolve().unwrap(), DesignConfig::default());
    }

    #[test]
    fn full_assignment_round_trips() {
        let d = Cvars::new()
            .set("num_instances", "20")
            .unwrap()
            .set("assignment", "dedicated")
            .unwrap()
            .set("progress", "concurrent")
            .unwrap()
            .set("matching", "global")
            .unwrap()
            .set("lock_model", "global_critical_section")
            .unwrap()
            .set("allow_overtaking", "true")
            .unwrap()
            .resolve()
            .unwrap();
        assert_eq!(d.num_instances, 20);
        assert_eq!(d.assignment, Assignment::Dedicated);
        assert_eq!(d.progress, ProgressMode::Concurrent);
        assert_eq!(d.matching, MatchMode::Global);
        assert_eq!(d.lock_model, LockModel::GlobalCriticalSection);
        assert!(d.allow_overtaking);
    }

    #[test]
    fn unknown_name_and_bad_values_are_rejected() {
        assert!(Cvars::new().set("btl_uct_magic", "1").is_err());
        let bad = Cvars::new().set("progress", "sideways").unwrap();
        assert!(bad.resolve().is_err());
        let bad = Cvars::new().set("num_instances", "many").unwrap();
        assert!(bad.resolve().is_err());
    }

    #[test]
    fn resolve_over_preserves_unset_fields() {
        let base = DesignConfig::builder().proposed(8).build().unwrap();
        let d = Cvars::new()
            .set("num_instances", "4")
            .unwrap()
            .resolve_over(base)
            .unwrap();
        assert_eq!(d.num_instances, 4);
        assert_eq!(d.assignment, base.assignment, "untouched");
        assert_eq!(d.progress, base.progress, "untouched");
    }

    #[test]
    fn cvar_table_is_consistent() {
        // Every enumerated cvar's listed values parse successfully.
        for cvar in CVARS {
            for v in cvar.values {
                let set = Cvars::new().set(cvar.name, v).unwrap();
                assert!(set.resolve().is_ok(), "{}={v} must resolve", cvar.name);
            }
        }
    }

    #[test]
    fn env_parsing_smoke() {
        // SAFETY/testing note: set_var in tests is fine single-threaded;
        // use a unique name to avoid interference.
        std::env::set_var("FAIRMPI_NUM_INSTANCES", "7");
        let cv = Cvars::from_env();
        assert_eq!(cv.get("num_instances"), Some("7"));
        std::env::remove_var("FAIRMPI_NUM_INSTANCES");
        assert_eq!(cv.resolve().unwrap().num_instances, 7);
    }
}
