//! Error types for the runtime.

use std::fmt;

/// Errors surfaced by `fairmpi` operations, loosely mirroring MPI error
/// classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Destination or source rank outside the communicator (`MPI_ERR_RANK`).
    InvalidRank(i32),
    /// User tag outside the valid (non-negative) range (`MPI_ERR_TAG`).
    InvalidTag(i32),
    /// Unknown communicator id (`MPI_ERR_COMM`).
    InvalidComm(u32),
    /// Message longer than the posted receive buffer (`MPI_ERR_TRUNCATE`).
    Truncated {
        /// Bytes the sender shipped.
        message_len: usize,
        /// Capacity the receive posted.
        capacity: usize,
    },
    /// The request token does not name a live request (`MPI_ERR_REQUEST`).
    InvalidRequest(u64),
    /// The request was cancelled before completion.
    Cancelled,
    /// A window access fell outside the window (`MPI_ERR_RMA_RANGE`).
    WindowOutOfRange {
        /// First byte accessed.
        offset: usize,
        /// Bytes accessed.
        len: usize,
        /// Window size.
        window_len: usize,
    },
    /// Unknown window id (`MPI_ERR_WIN`).
    InvalidWindow(u64),
    /// An RMA op on a misaligned offset for a typed atomic operation.
    MisalignedAtomic(usize),
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            MpiError::InvalidTag(t) => write!(f, "invalid tag {t} (user tags must be >= 0)"),
            MpiError::InvalidComm(c) => write!(f, "invalid communicator id {c}"),
            MpiError::Truncated {
                message_len,
                capacity,
            } => write!(
                f,
                "message of {message_len} bytes truncated by {capacity}-byte receive"
            ),
            MpiError::InvalidRequest(t) => write!(f, "invalid request token {t}"),
            MpiError::Cancelled => write!(f, "request was cancelled"),
            MpiError::WindowOutOfRange {
                offset,
                len,
                window_len,
            } => write!(
                f,
                "RMA access [{offset}, {}) outside window of {window_len} bytes",
                offset + len
            ),
            MpiError::InvalidWindow(w) => write!(f, "invalid window id {w}"),
            MpiError::MisalignedAtomic(off) => {
                write!(f, "atomic RMA op at misaligned offset {off}")
            }
        }
    }
}

impl std::error::Error for MpiError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MpiError::Truncated {
            message_len: 100,
            capacity: 10,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("10"));
        assert!(MpiError::InvalidRank(-3).to_string().contains("-3"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MpiError::Cancelled, MpiError::Cancelled);
        assert_ne!(MpiError::InvalidRank(0), MpiError::InvalidRank(1));
    }
}
