//! Error types for the runtime.

use std::fmt;

/// Errors surfaced by `fairmpi` operations, loosely mirroring MPI error
/// classes; [`MpiError::error_class`] gives the numeric class à la
/// `MPI_Error_class`.
///
/// Non-exhaustive: downstream matches need a wildcard arm, so future PRs
/// can add failure modes (the paper's fault-injection axis keeps growing)
/// without a breaking release.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MpiError {
    /// Destination or source rank outside the communicator (`MPI_ERR_RANK`).
    InvalidRank(i32),
    /// User tag outside the valid (non-negative) range (`MPI_ERR_TAG`).
    InvalidTag(i32),
    /// Unknown communicator id (`MPI_ERR_COMM`).
    InvalidComm(u32),
    /// Message longer than the posted receive buffer (`MPI_ERR_TRUNCATE`).
    Truncated {
        /// Bytes the sender shipped.
        message_len: usize,
        /// Capacity the receive posted.
        capacity: usize,
    },
    /// The request token does not name a live request (`MPI_ERR_REQUEST`).
    InvalidRequest(u64),
    /// The request was cancelled before completion.
    Cancelled,
    /// A window access fell outside the window (`MPI_ERR_RMA_RANGE`).
    WindowOutOfRange {
        /// First byte accessed.
        offset: usize,
        /// Bytes accessed.
        len: usize,
        /// Window size.
        window_len: usize,
    },
    /// Unknown window id (`MPI_ERR_WIN`).
    InvalidWindow(u64),
    /// An RMA op on a misaligned offset for a typed atomic operation.
    MisalignedAtomic(usize),
    /// A send exhausted its retransmit budget without an acknowledgment —
    /// the fault plan degraded the wire beyond what retry/backoff can
    /// recover (`MPI_ERR_OTHER` territory; no exact MPI class exists).
    RetryExhausted {
        /// Retransmit attempts made before giving up.
        attempts: u32,
    },
    /// Every communication instance of the rank is permanently dead; the
    /// operation could not be injected at all.
    InstanceFailed,
    /// A [`crate::DesignConfig`] builder was given an incompatible
    /// combination of axes (`MPI_ERR_ARG`); the message names the clash.
    InvalidDesign(&'static str),
}

impl MpiError {
    /// The numeric MPI error class of this error, following Open MPI's
    /// `mpi.h` numbering (`MPI_ERR_RANK` = 6, `MPI_ERR_TRUNCATE` = 15,
    /// ...). These values are stable API: tooling that files them into
    /// `MPI_Error_class`-keyed tables can rely on them across releases.
    ///
    /// Two variants have no exact class in the standard and borrow the
    /// closest one: [`MpiError::Cancelled`] reports `MPI_ERR_PENDING`
    /// (the operation never completed) and [`MpiError::InstanceFailed`]
    /// reports `MPI_ERR_INTERN` (total loss of the rank's communication
    /// resources — ULFM's `MPI_ERR_PROC_FAILED` has no stable number).
    pub fn error_class(&self) -> u32 {
        match self {
            MpiError::InvalidRank(_) => 6,           // MPI_ERR_RANK
            MpiError::InvalidTag(_) => 4,            // MPI_ERR_TAG
            MpiError::InvalidComm(_) => 5,           // MPI_ERR_COMM
            MpiError::Truncated { .. } => 15,        // MPI_ERR_TRUNCATE
            MpiError::InvalidRequest(_) => 7,        // MPI_ERR_REQUEST
            MpiError::Cancelled => 19,               // MPI_ERR_PENDING
            MpiError::WindowOutOfRange { .. } => 55, // MPI_ERR_RMA_RANGE
            MpiError::InvalidWindow(_) => 45,        // MPI_ERR_WIN
            MpiError::MisalignedAtomic(_) => 13,     // MPI_ERR_ARG
            MpiError::RetryExhausted { .. } => 16,   // MPI_ERR_OTHER
            MpiError::InstanceFailed => 17,          // MPI_ERR_INTERN
            MpiError::InvalidDesign(_) => 13,        // MPI_ERR_ARG
        }
    }
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            MpiError::InvalidTag(t) => write!(f, "invalid tag {t} (user tags must be >= 0)"),
            MpiError::InvalidComm(c) => write!(f, "invalid communicator id {c}"),
            MpiError::Truncated {
                message_len,
                capacity,
            } => write!(
                f,
                "message of {message_len} bytes truncated by {capacity}-byte receive"
            ),
            MpiError::InvalidRequest(t) => write!(f, "invalid request token {t}"),
            MpiError::Cancelled => write!(f, "request was cancelled"),
            MpiError::WindowOutOfRange {
                offset,
                len,
                window_len,
            } => write!(
                f,
                "RMA access [{offset}, {}) outside window of {window_len} bytes",
                offset + len
            ),
            MpiError::InvalidWindow(w) => write!(f, "invalid window id {w}"),
            MpiError::MisalignedAtomic(off) => {
                write!(f, "atomic RMA op at misaligned offset {off}")
            }
            MpiError::RetryExhausted { attempts } => write!(
                f,
                "send abandoned after {attempts} retransmit attempts without acknowledgment"
            ),
            MpiError::InstanceFailed => {
                write!(f, "all communication instances of this rank have failed")
            }
            MpiError::InvalidDesign(why) => write!(f, "invalid design configuration: {why}"),
        }
    }
}

impl std::error::Error for MpiError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MpiError::Truncated {
            message_len: 100,
            capacity: 10,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("10"));
        assert!(MpiError::InvalidRank(-3).to_string().contains("-3"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MpiError::Cancelled, MpiError::Cancelled);
        assert_ne!(MpiError::InvalidRank(0), MpiError::InvalidRank(1));
    }

    /// Every variant's `Display` output and MPI error class, asserted
    /// exactly. The closure at the bottom matches without a wildcard
    /// (allowed within the defining crate despite `#[non_exhaustive]`), so
    /// adding a variant fails to compile until its expected message and
    /// class are added here too.
    #[test]
    fn display_covers_every_variant_exactly() {
        let cases: Vec<(MpiError, &str, u32)> = vec![
            (MpiError::InvalidRank(-3), "invalid rank -3", 6),
            (
                MpiError::InvalidTag(-7),
                "invalid tag -7 (user tags must be >= 0)",
                4,
            ),
            (MpiError::InvalidComm(9), "invalid communicator id 9", 5),
            (
                MpiError::Truncated {
                    message_len: 100,
                    capacity: 10,
                },
                "message of 100 bytes truncated by 10-byte receive",
                15,
            ),
            (MpiError::InvalidRequest(42), "invalid request token 42", 7),
            (MpiError::Cancelled, "request was cancelled", 19),
            (
                MpiError::WindowOutOfRange {
                    offset: 8,
                    len: 16,
                    window_len: 12,
                },
                "RMA access [8, 24) outside window of 12 bytes",
                55,
            ),
            (MpiError::InvalidWindow(5), "invalid window id 5", 45),
            (
                MpiError::MisalignedAtomic(3),
                "atomic RMA op at misaligned offset 3",
                13,
            ),
            (
                MpiError::RetryExhausted { attempts: 20 },
                "send abandoned after 20 retransmit attempts without acknowledgment",
                16,
            ),
            (
                MpiError::InstanceFailed,
                "all communication instances of this rank have failed",
                17,
            ),
            (
                MpiError::InvalidDesign("offload workers under a global critical section"),
                "invalid design configuration: offload workers under a global critical section",
                13,
            ),
        ];
        for (err, expected, class) in &cases {
            assert_eq!(&err.to_string(), expected, "wrong Display for {err:?}");
            assert_eq!(err.error_class(), *class, "wrong class for {err:?}");
        }
        // Compile-time completeness: no wildcard arm, so a new variant
        // cannot ship without extending both this match and `cases`.
        let covered = |e: &MpiError| match e {
            MpiError::InvalidRank(_)
            | MpiError::InvalidTag(_)
            | MpiError::InvalidComm(_)
            | MpiError::Truncated { .. }
            | MpiError::InvalidRequest(_)
            | MpiError::Cancelled
            | MpiError::WindowOutOfRange { .. }
            | MpiError::InvalidWindow(_)
            | MpiError::MisalignedAtomic(_)
            | MpiError::RetryExhausted { .. }
            | MpiError::InstanceFailed
            | MpiError::InvalidDesign(_) => (),
        };
        assert_eq!(cases.len(), 12, "one case per variant");
        cases.iter().for_each(|(e, _, _)| covered(e));
    }

    /// Error classes are grouped sanely: argument-shaped errors share
    /// `MPI_ERR_ARG`, and no class collides with `MPI_SUCCESS` (0).
    #[test]
    fn error_classes_are_stable_and_nonzero() {
        assert_eq!(
            MpiError::MisalignedAtomic(0).error_class(),
            MpiError::InvalidDesign("x").error_class(),
            "both are MPI_ERR_ARG"
        );
        for e in [
            MpiError::InvalidRank(0),
            MpiError::Cancelled,
            MpiError::InstanceFailed,
        ] {
            assert_ne!(e.error_class(), 0, "{e:?} must not be MPI_SUCCESS");
        }
    }
}
