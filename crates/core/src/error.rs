//! Error types for the runtime.

use std::fmt;

/// Errors surfaced by `fairmpi` operations, loosely mirroring MPI error
/// classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Destination or source rank outside the communicator (`MPI_ERR_RANK`).
    InvalidRank(i32),
    /// User tag outside the valid (non-negative) range (`MPI_ERR_TAG`).
    InvalidTag(i32),
    /// Unknown communicator id (`MPI_ERR_COMM`).
    InvalidComm(u32),
    /// Message longer than the posted receive buffer (`MPI_ERR_TRUNCATE`).
    Truncated {
        /// Bytes the sender shipped.
        message_len: usize,
        /// Capacity the receive posted.
        capacity: usize,
    },
    /// The request token does not name a live request (`MPI_ERR_REQUEST`).
    InvalidRequest(u64),
    /// The request was cancelled before completion.
    Cancelled,
    /// A window access fell outside the window (`MPI_ERR_RMA_RANGE`).
    WindowOutOfRange {
        /// First byte accessed.
        offset: usize,
        /// Bytes accessed.
        len: usize,
        /// Window size.
        window_len: usize,
    },
    /// Unknown window id (`MPI_ERR_WIN`).
    InvalidWindow(u64),
    /// An RMA op on a misaligned offset for a typed atomic operation.
    MisalignedAtomic(usize),
    /// A send exhausted its retransmit budget without an acknowledgment —
    /// the fault plan degraded the wire beyond what retry/backoff can
    /// recover (`MPI_ERR_OTHER` territory; no exact MPI class exists).
    RetryExhausted {
        /// Retransmit attempts made before giving up.
        attempts: u32,
    },
    /// Every communication instance of the rank is permanently dead; the
    /// operation could not be injected at all.
    InstanceFailed,
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::InvalidRank(r) => write!(f, "invalid rank {r}"),
            MpiError::InvalidTag(t) => write!(f, "invalid tag {t} (user tags must be >= 0)"),
            MpiError::InvalidComm(c) => write!(f, "invalid communicator id {c}"),
            MpiError::Truncated {
                message_len,
                capacity,
            } => write!(
                f,
                "message of {message_len} bytes truncated by {capacity}-byte receive"
            ),
            MpiError::InvalidRequest(t) => write!(f, "invalid request token {t}"),
            MpiError::Cancelled => write!(f, "request was cancelled"),
            MpiError::WindowOutOfRange {
                offset,
                len,
                window_len,
            } => write!(
                f,
                "RMA access [{offset}, {}) outside window of {window_len} bytes",
                offset + len
            ),
            MpiError::InvalidWindow(w) => write!(f, "invalid window id {w}"),
            MpiError::MisalignedAtomic(off) => {
                write!(f, "atomic RMA op at misaligned offset {off}")
            }
            MpiError::RetryExhausted { attempts } => write!(
                f,
                "send abandoned after {attempts} retransmit attempts without acknowledgment"
            ),
            MpiError::InstanceFailed => {
                write!(f, "all communication instances of this rank have failed")
            }
        }
    }
}

impl std::error::Error for MpiError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MpiError::Truncated {
            message_len: 100,
            capacity: 10,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("10"));
        assert!(MpiError::InvalidRank(-3).to_string().contains("-3"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(MpiError::Cancelled, MpiError::Cancelled);
        assert_ne!(MpiError::InvalidRank(0), MpiError::InvalidRank(1));
    }

    /// Every variant's `Display` output, asserted exactly. The closure at
    /// the bottom matches without a wildcard, so adding a variant fails to
    /// compile until its expected message is added here too.
    #[test]
    fn display_covers_every_variant_exactly() {
        let cases: Vec<(MpiError, &str)> = vec![
            (MpiError::InvalidRank(-3), "invalid rank -3"),
            (
                MpiError::InvalidTag(-7),
                "invalid tag -7 (user tags must be >= 0)",
            ),
            (MpiError::InvalidComm(9), "invalid communicator id 9"),
            (
                MpiError::Truncated {
                    message_len: 100,
                    capacity: 10,
                },
                "message of 100 bytes truncated by 10-byte receive",
            ),
            (MpiError::InvalidRequest(42), "invalid request token 42"),
            (MpiError::Cancelled, "request was cancelled"),
            (
                MpiError::WindowOutOfRange {
                    offset: 8,
                    len: 16,
                    window_len: 12,
                },
                "RMA access [8, 24) outside window of 12 bytes",
            ),
            (MpiError::InvalidWindow(5), "invalid window id 5"),
            (
                MpiError::MisalignedAtomic(3),
                "atomic RMA op at misaligned offset 3",
            ),
            (
                MpiError::RetryExhausted { attempts: 20 },
                "send abandoned after 20 retransmit attempts without acknowledgment",
            ),
            (
                MpiError::InstanceFailed,
                "all communication instances of this rank have failed",
            ),
        ];
        for (err, expected) in &cases {
            assert_eq!(&err.to_string(), expected, "wrong Display for {err:?}");
        }
        // Compile-time completeness: no wildcard arm, so a new variant
        // cannot ship without extending both this match and `cases`.
        let covered = |e: &MpiError| match e {
            MpiError::InvalidRank(_)
            | MpiError::InvalidTag(_)
            | MpiError::InvalidComm(_)
            | MpiError::Truncated { .. }
            | MpiError::InvalidRequest(_)
            | MpiError::Cancelled
            | MpiError::WindowOutOfRange { .. }
            | MpiError::InvalidWindow(_)
            | MpiError::MisalignedAtomic(_)
            | MpiError::RetryExhausted { .. }
            | MpiError::InstanceFailed => (),
        };
        assert_eq!(cases.len(), 11, "one case per variant");
        cases.iter().for_each(|(e, _)| covered(e));
    }
}
