//! The world: a set of ranks wired to one fabric under one design.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use fairmpi_fabric::{Fabric, FabricConfig, MachineKind, Rank};
use fairmpi_spc::SpcSnapshot;

use crate::comm::{CommState, Communicator};
use crate::design::DesignConfig;
use crate::error::{MpiError, Result};
use crate::proc::{Proc, ProcState};
use crate::rma::{WindowId, WindowRegistry};

/// A running world of simulated MPI ranks.
///
/// Created through [`World::builder`]. Clone handles to individual ranks
/// with [`World::proc`] and hand them to as many OS threads as you like.
pub struct World {
    fabric: Arc<Fabric>,
    design: DesignConfig,
    procs: Vec<Arc<ProcState>>,
    next_comm: AtomicU32,
    windows: Arc<WindowRegistry>,
}

/// Builder for [`World`].
pub struct WorldBuilder {
    ranks: usize,
    fabric: FabricConfig,
    design: DesignConfig,
}

impl WorldBuilder {
    /// Number of ranks (default 2).
    pub fn ranks(mut self, n: usize) -> Self {
        assert!(n >= 1, "a world needs at least one rank");
        self.ranks = n;
        self
    }

    /// Fabric cost model (default: zero-cost test fabric).
    pub fn fabric(mut self, config: FabricConfig) -> Self {
        self.fabric = config;
        self
    }

    /// Fabric preset for one of the paper's testbeds.
    pub fn machine(mut self, kind: MachineKind) -> Self {
        self.fabric = FabricConfig::for_machine(kind);
        self
    }

    /// Internal design configuration (default: the original Open MPI
    /// threaded design — 1 CRI, serial progress).
    pub fn design(mut self, design: DesignConfig) -> Self {
        self.design = design;
        self
    }

    /// Construct the world: fabric, per-rank pools/engines, and
    /// `COMM_WORLD` (communicator id 0).
    pub fn build(self) -> World {
        let mut design = self.design;
        // The fault plan comes from the design builder or, failing that,
        // the `FAIRMPI_CHAOS_*` environment; inert plans are treated as
        // chaos-off so the happy path stays bit-identical. The resolved
        // plan lives in the design — single source of truth downstream.
        design.chaos = design
            .chaos
            .or_else(crate::env::fault_plan_from_env)
            .filter(|p| p.is_active());
        // Surface any unparsable FAIRMPI_* keys exactly once, now that
        // every subsystem that reads the environment has been resolved.
        crate::env::report_parse_errors();
        let contexts = self.fabric.clamp_contexts(design.num_instances);
        let fabric = Arc::new(Fabric::new(self.ranks, contexts, self.fabric));
        if let Some(plan) = design.chaos {
            fabric.enable_chaos(plan);
        }
        let windows = Arc::new(WindowRegistry::default());
        let procs: Vec<Arc<ProcState>> = (0..self.ranks)
            .map(|r| {
                ProcState::new(
                    r as Rank,
                    self.ranks,
                    design,
                    Arc::clone(&fabric),
                    Arc::clone(&windows),
                )
            })
            .collect();
        let world = World {
            fabric,
            design,
            procs,
            next_comm: AtomicU32::new(0),
            windows,
        };
        // COMM_WORLD.
        world.new_comm_with(design.allow_overtaking);
        world
    }
}

impl World {
    /// Start building a world.
    pub fn builder() -> WorldBuilder {
        WorldBuilder {
            ranks: 2,
            fabric: FabricConfig::test_default(),
            design: DesignConfig::default(),
        }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.procs.len()
    }

    /// The design this world runs.
    pub fn design(&self) -> &DesignConfig {
        &self.design
    }

    /// The fabric cost model.
    pub fn fabric_config(&self) -> &FabricConfig {
        self.fabric.config()
    }

    /// Handle to one rank.
    pub fn proc(&self, rank: Rank) -> Proc {
        Proc {
            state: Arc::clone(&self.procs[rank as usize]),
        }
    }

    /// Handles to every rank.
    pub fn procs(&self) -> Vec<Proc> {
        (0..self.num_ranks() as Rank)
            .map(|r| self.proc(r))
            .collect()
    }

    /// `MPI_COMM_WORLD` (id 0, created at build time).
    pub fn comm_world(&self) -> Communicator {
        Communicator { id: 0 }
    }

    /// Create a new communicator spanning all ranks (`MPI_Comm_dup` of
    /// world), inheriting the design's default overtaking flag.
    pub fn new_comm(&self) -> Communicator {
        self.new_comm_with(self.design.allow_overtaking)
    }

    /// Create a new communicator with an explicit
    /// `mpi_assert_allow_overtaking` info value (paper §IV-D).
    pub fn new_comm_with(&self, allow_overtaking: bool) -> Communicator {
        let id = self.next_comm.fetch_add(1, Ordering::Relaxed);
        for proc in &self.procs {
            proc.register_comm(Arc::new(CommState::new(
                id,
                self.num_ranks(),
                allow_overtaking,
                Arc::clone(&proc.spc),
            )));
        }
        Communicator { id }
    }

    /// Collectively allocate an RMA window of `len` bytes on every rank
    /// (`MPI_Win_allocate`). Resolve per-rank handles with
    /// [`Proc::window`].
    pub fn allocate_window(&self, len: usize) -> WindowId {
        self.windows.allocate(len, self.num_ranks())
    }

    /// Free a window (`MPI_Win_free`). Callers must have flushed.
    pub fn free_window(&self, id: WindowId) -> Result<()> {
        // Validate it exists first for a useful error.
        self.windows
            .get(id)
            .map_err(|_| MpiError::InvalidWindow(id.0 as u64))?;
        self.windows.free(id);
        Ok(())
    }

    /// Counters of every rank merged into one snapshot (sums, with maxes
    /// for high-water marks).
    pub fn spc_merged(&self) -> SpcSnapshot {
        let mut merged = SpcSnapshot::zero();
        for p in &self.procs {
            merged = merged.merged_with(&p.spc.snapshot());
        }
        merged
    }

    /// Reset every rank's counters (e.g. after warmup).
    pub fn spc_reset(&self) {
        for p in &self.procs {
            p.spc.reset();
        }
    }
}

impl Drop for World {
    /// Two-phase offload shutdown: first signal every rank's engine (so all
    /// workers enter their drain together and cross-rank traffic keeps
    /// being co-progressed), then join them. No accepted command is lost;
    /// `Proc` handles outliving the world fall back to the direct path.
    fn drop(&mut self) {
        for p in &self.procs {
            if let Some(rt) = p.offload.get() {
                rt.begin_shutdown();
            }
        }
        for p in &self.procs {
            if let Some(rt) = p.offload.get() {
                rt.join();
            }
        }
    }
}
