//! Simple collectives built on point-to-point.
//!
//! Internal messages use reserved *negative* tags, which user receives —
//! including `ANY_TAG` wildcards, which only match non-negative tags —
//! can never observe. They share each communicator's sequence-number
//! stream with user traffic, as collectives do inside OB1.

use fairmpi_fabric::{Rank, Tag, ANY_SOURCE};

use crate::comm::Communicator;
use crate::error::Result;
use crate::proc::Proc;
use crate::request::Message;

const TAG_BARRIER_IN: Tag = -16;
const TAG_BARRIER_OUT: Tag = -17;
const TAG_BCAST: Tag = -18;
const TAG_REDUCE: Tag = -19;
const TAG_GATHER: Tag = -20;
const TAG_SCATTER: Tag = -21;
const TAG_ALLTOALL: Tag = -23;
const TAG_REDUCE_ELEMS: Tag = -24;

/// Elementwise reduction operators for [`Proc::reduce_elems`]
/// (`MPI_Op` analogues over u64 lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// `MPI_SUM` (wrapping).
    Sum,
    /// `MPI_MAX`
    Max,
    /// `MPI_MIN`
    Min,
    /// `MPI_BAND`
    BitAnd,
    /// `MPI_BOR`
    BitOr,
}

impl ReduceOp {
    fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.wrapping_add(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::BitAnd => a & b,
            ReduceOp::BitOr => a | b,
        }
    }
}

impl Proc {
    fn send_internal(&self, buf: &[u8], dst: Rank, tag: Tag, comm: Communicator) -> Result<()> {
        let req = self.isend_unchecked(buf, dst, tag, comm)?;
        self.wait(&req).map(|_| ())
    }

    fn recv_internal(&self, src: i32, tag: Tag, comm: Communicator) -> Result<Message> {
        let req = self.irecv_unchecked(usize::MAX / 2, src, tag, comm)?;
        self.wait(&req)
    }

    /// Barrier across all ranks of the communicator (`MPI_Barrier`).
    ///
    /// Linear gather-release through rank 0. One call per rank; concurrent
    /// barriers on the *same* communicator from multiple threads of one
    /// rank are not meaningful (as in MPI).
    pub fn barrier(&self, comm: Communicator) -> Result<()> {
        let n = self.num_ranks();
        if n == 1 {
            return Ok(());
        }
        if self.rank() == 0 {
            for _ in 1..n {
                self.recv_internal(ANY_SOURCE, TAG_BARRIER_IN, comm)?;
            }
            for r in 1..n {
                self.send_internal(&[], r as Rank, TAG_BARRIER_OUT, comm)?;
            }
        } else {
            self.send_internal(&[], 0, TAG_BARRIER_IN, comm)?;
            self.recv_internal(0, TAG_BARRIER_OUT, comm)?;
        }
        Ok(())
    }

    /// Broadcast from `root` (`MPI_Bcast`). On the root, returns the input;
    /// elsewhere returns the received bytes.
    pub fn bcast(&self, data: &[u8], root: Rank, comm: Communicator) -> Result<Vec<u8>> {
        self.state.validate_rank(root)?;
        let n = self.num_ranks();
        if self.rank() == root {
            for r in 0..n as Rank {
                if r != root {
                    self.send_internal(data, r, TAG_BCAST, comm)?;
                }
            }
            Ok(data.to_vec())
        } else {
            Ok(self.recv_internal(root as i32, TAG_BCAST, comm)?.data)
        }
    }

    /// Sum-reduce one u64 per rank to `root` (`MPI_Reduce` with `MPI_SUM`).
    /// Non-root ranks receive 0.
    pub fn reduce_sum(&self, value: u64, root: Rank, comm: Communicator) -> Result<u64> {
        self.state.validate_rank(root)?;
        let n = self.num_ranks();
        if self.rank() == root {
            let mut acc = value;
            for _ in 0..n - 1 {
                let m = self.recv_internal(ANY_SOURCE, TAG_REDUCE, comm)?;
                let mut b = [0u8; 8];
                b.copy_from_slice(&m.data);
                acc = acc.wrapping_add(u64::from_le_bytes(b));
            }
            Ok(acc)
        } else {
            self.send_internal(&value.to_le_bytes(), root, TAG_REDUCE, comm)?;
            Ok(0)
        }
    }

    /// Sum-allreduce one u64 (`MPI_Allreduce` with `MPI_SUM`).
    pub fn allreduce_sum(&self, value: u64, comm: Communicator) -> Result<u64> {
        let total = self.reduce_sum(value, 0, comm)?;
        let bytes = self.bcast(&total.to_le_bytes(), 0, comm)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes);
        Ok(u64::from_le_bytes(b))
    }

    /// Scatter per-rank payloads from `root` (`MPI_Scatterv`-style): the
    /// root passes one buffer per rank (`chunks.len() == num_ranks`) and
    /// every rank returns its own chunk.
    pub fn scatter(
        &self,
        chunks: Option<&[Vec<u8>]>,
        root: Rank,
        comm: Communicator,
    ) -> Result<Vec<u8>> {
        self.state.validate_rank(root)?;
        let n = self.num_ranks();
        if self.rank() == root {
            let chunks = chunks.expect("root must supply the chunks");
            assert_eq!(chunks.len(), n, "one chunk per rank");
            for (r, chunk) in chunks.iter().enumerate() {
                if r as Rank != root {
                    self.send_internal(chunk, r as Rank, TAG_SCATTER, comm)?;
                }
            }
            Ok(chunks[root as usize].clone())
        } else {
            Ok(self.recv_internal(root as i32, TAG_SCATTER, comm)?.data)
        }
    }

    /// All-gather (`MPI_Allgatherv`-style): every rank contributes bytes
    /// and receives everyone's contribution, indexed by rank.
    pub fn allgather(&self, data: &[u8], comm: Communicator) -> Result<Vec<Vec<u8>>> {
        // Gather at 0, then broadcast the concatenation with a length
        // table (simple two-phase algorithm, as small MPI builds use).
        let gathered = self.gather(data, 0, comm)?;
        let packed = if self.rank() == 0 {
            let parts = gathered.expect("rank 0 gathered");
            let mut packed = Vec::new();
            packed.extend_from_slice(&(parts.len() as u64).to_le_bytes());
            for p in &parts {
                packed.extend_from_slice(&(p.len() as u64).to_le_bytes());
            }
            for p in &parts {
                packed.extend_from_slice(p);
            }
            packed
        } else {
            Vec::new()
        };
        let packed = self.bcast(&packed, 0, comm)?;
        let n = u64::from_le_bytes(packed[0..8].try_into().unwrap()) as usize;
        let mut lens = Vec::with_capacity(n);
        for i in 0..n {
            let off = 8 + i * 8;
            lens.push(u64::from_le_bytes(packed[off..off + 8].try_into().unwrap()) as usize);
        }
        let mut out = Vec::with_capacity(n);
        let mut cursor = 8 + n * 8;
        for len in lens {
            out.push(packed[cursor..cursor + len].to_vec());
            cursor += len;
        }
        Ok(out)
    }

    /// All-to-all (`MPI_Alltoallv`-style): rank *i* sends `sends[j]` to
    /// rank *j* and returns what every rank sent to *i*, indexed by rank.
    pub fn alltoall(&self, sends: &[Vec<u8>], comm: Communicator) -> Result<Vec<Vec<u8>>> {
        let n = self.num_ranks();
        assert_eq!(sends.len(), n, "one buffer per destination rank");
        let me = self.rank();
        // Post all receives, then all sends, then wait — deadlock-free for
        // any size mix.
        let rreqs: Vec<_> = (0..n)
            .map(|src| {
                self.irecv_unchecked(usize::MAX / 2, src as i32, TAG_ALLTOALL, comm)
                    .map(Some)
            })
            .collect::<Result<Vec<_>>>()?;
        let sreqs: Vec<_> = (0..n)
            .map(|dst| self.isend_unchecked(&sends[dst], dst as Rank, TAG_ALLTOALL, comm))
            .collect::<Result<Vec<_>>>()?;
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
        for req in rreqs.into_iter().flatten() {
            let msg = self.wait(&req)?;
            out[msg.src as usize] = msg.data;
        }
        for req in &sreqs {
            self.wait(req)?;
        }
        let _ = me;
        Ok(out)
    }

    /// Elementwise reduction of a u64 vector to `root` (`MPI_Reduce` with
    /// a choice of op). All ranks must pass equal-length slices; non-root
    /// ranks receive an empty vector.
    pub fn reduce_elems(
        &self,
        values: &[u64],
        op: ReduceOp,
        root: Rank,
        comm: Communicator,
    ) -> Result<Vec<u64>> {
        self.state.validate_rank(root)?;
        let n = self.num_ranks();
        let encode = |vs: &[u64]| {
            let mut out = Vec::with_capacity(vs.len() * 8);
            for v in vs {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out
        };
        if self.rank() == root {
            let mut acc = values.to_vec();
            for _ in 0..n - 1 {
                let m = self.recv_internal(ANY_SOURCE, TAG_REDUCE_ELEMS, comm)?;
                assert_eq!(m.data.len(), acc.len() * 8, "mismatched lengths");
                for (i, chunk) in m.data.chunks_exact(8).enumerate() {
                    let v = u64::from_le_bytes(chunk.try_into().unwrap());
                    acc[i] = op.apply(acc[i], v);
                }
            }
            Ok(acc)
        } else {
            self.send_internal(&encode(values), root, TAG_REDUCE_ELEMS, comm)?;
            Ok(Vec::new())
        }
    }

    /// Gather each rank's bytes at `root` (`MPI_Gatherv`-style, variable
    /// lengths). The root receives `Some(vec-per-rank)`, others `None`.
    pub fn gather(
        &self,
        data: &[u8],
        root: Rank,
        comm: Communicator,
    ) -> Result<Option<Vec<Vec<u8>>>> {
        self.state.validate_rank(root)?;
        let n = self.num_ranks();
        if self.rank() == root {
            let mut out: Vec<Vec<u8>> = vec![Vec::new(); n];
            out[root as usize] = data.to_vec();
            for _ in 0..n - 1 {
                let m = self.recv_internal(ANY_SOURCE, TAG_GATHER, comm)?;
                out[m.src as usize] = m.data;
            }
            Ok(Some(out))
        } else {
            self.send_internal(data, root, TAG_GATHER, comm)?;
            Ok(None)
        }
    }
}
