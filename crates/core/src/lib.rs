//! `fairmpi` — an MPI-like multithreaded message-passing runtime.
//!
//! This crate is the public face of the reproduction of *"Give MPI Threading
//! a Fair Chance: A Study of Multithreaded MPI Designs"* (CLUSTER 2019). It
//! assembles the substrates — the simulated fabric, the matching engine,
//! the CRI pool and the progress engine — into a runtime with a familiar
//! MPI-shaped API:
//!
//! * a [`World`] of simulated ranks connected by an in-memory fabric,
//! * two-sided point-to-point operations ([`Proc::send`], [`Proc::recv`],
//!   [`Proc::isend`], [`Proc::irecv`], [`Proc::wait`], probes, cancel) with
//!   the full MPI matching semantics (FIFO per (source, communicator),
//!   `ANY_SOURCE`/`ANY_TAG` wildcards, eager and rendezvous protocols),
//! * communicators ([`Communicator`]) with per-communicator matching and
//!   the `mpi_assert_allow_overtaking` info key,
//! * one-sided windows ([`Window`]) with put/get/accumulate and
//!   passive-target synchronization (`flush`), plus fence,
//! * simple collectives (barrier, broadcast, reductions) built on
//!   point-to-point,
//! * and — the point of the study — a configurable [`DesignConfig`]
//!   selecting the number of CRIs, the assignment strategy (round-robin or
//!   dedicated), the progress design (serial or concurrent), the matching
//!   layout (per-communicator or one global queue), and big-lock emulations
//!   of other MPI implementations' threading designs.
//!
//! Every rank can be driven by any number of OS threads concurrently
//! (`MPI_THREAD_MULTIPLE` is the default and the subject of the paper).
//!
//! # Quickstart
//!
//! ```
//! use fairmpi::{World, Tag};
//!
//! let world = World::builder().ranks(2).build();
//! let p0 = world.proc(0);
//! let p1 = world.proc(1);
//! let comm = world.comm_world();
//!
//! let sender = std::thread::spawn(move || {
//!     p0.send(b"hello", 1, 7 as Tag, comm).unwrap();
//! });
//! let msg = p1.recv(64, 0 as i32, 7 as Tag, comm).unwrap();
//! assert_eq!(&msg.data, b"hello");
//! assert_eq!(msg.src, 0);
//! sender.join().unwrap();
//! ```

mod collectives;
mod comm;
pub mod datatypes;
mod design;
pub mod env;
mod error;
mod handler;
mod offload;
mod p2p;
mod proc;
mod reliability;
mod request;
mod rma;
pub mod tuning;
mod world;

#[cfg(test)]
mod tests;

pub use collectives::ReduceOp;
pub use comm::Communicator;
pub use design::{
    Assignment, DesignConfig, DesignConfigBuilder, DesignPreset, ErrorHandler, LockModel,
    MatchMode, ProgressMode, ThreadLevel,
};
pub use error::{MpiError, Result};
pub use proc::Proc;
pub use reliability::DedupWindow;
pub use request::{Message, Request};
pub use rma::{AccumulateOp, EpochGuard, Window, WindowId};
pub use world::{World, WorldBuilder};

// Re-export the vocabulary types users need.
pub use fairmpi_chaos::{FaultPlan, KillSpec};
pub use fairmpi_fabric::{CommId, FabricConfig, MachineKind, Rank, Tag, ANY_SOURCE, ANY_TAG};
pub use fairmpi_offload::{Backpressure, OffloadConfig};
pub use fairmpi_spc::{Counter, SpcSet, SpcSnapshot};
