//! Communicators.

use fairmpi_sync::Mutex;
use std::sync::Arc;

use fairmpi_fabric::CommId;
use fairmpi_matching::{Matcher, SendSequencer};
use fairmpi_spc::SpcSet;

/// Lightweight communicator handle (`MPI_Comm`).
///
/// Copyable and valid on every rank of the world that created it. Resolve
/// per-rank state through a [`crate::Proc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Communicator {
    pub(crate) id: CommId,
}

impl Communicator {
    /// The communicator id (stable across ranks).
    pub fn id(&self) -> CommId {
        self.id
    }
}

/// Per-rank state of one communicator.
#[derive(Debug)]
pub(crate) struct CommState {
    pub(crate) id: CommId,
    /// Number of ranks in the communicator (== world size here; the runtime
    /// supports duplication, not yet subsetting).
    pub(crate) size: usize,
    /// OB1-style per-communicator matcher. Unused (but present) when the
    /// world runs a global matcher.
    pub(crate) matcher: Mutex<Matcher>,
    /// Send-side sequence counters toward each peer.
    pub(crate) sequencer: SendSequencer,
    /// `mpi_assert_allow_overtaking` for this communicator.
    pub(crate) allow_overtaking: bool,
}

impl CommState {
    pub(crate) fn new(id: CommId, size: usize, allow_overtaking: bool, spc: Arc<SpcSet>) -> Self {
        Self {
            id,
            size,
            matcher: Mutex::named(Matcher::new(spc, allow_overtaking), move || {
                format!("matching.comm[{id}]")
            }),
            sequencer: SendSequencer::new(size),
            allow_overtaking,
        }
    }
}
