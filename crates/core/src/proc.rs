//! Per-rank runtime state and the public `Proc` handle.

use fairmpi_sync::{Mutex, MutexGuard, RwLock};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use fairmpi_cri::CriPool;
use fairmpi_fabric::{busy_wait_ns, CommId, Completion, CompletionKind, Fabric, Rank};
use fairmpi_matching::Matcher;
use fairmpi_progress::ProgressEngine;
use fairmpi_spc::{Counter, SpcSet, SpcSnapshot};

use crate::comm::CommState;
use crate::design::{DesignConfig, LockModel, MatchMode};
use crate::error::{MpiError, Result};
use crate::offload::OffloadRuntime;
use crate::reliability::{Reliability, Watchdog};
use crate::request::RequestTable;
use crate::rma::{AccumulateOp, Window, WindowId, WindowRegistry, WindowState};

/// Handle to one simulated MPI process. Cloneable and `Send + Sync`; any
/// number of OS threads may drive the same rank concurrently
/// (`MPI_THREAD_MULTIPLE`).
#[derive(Clone)]
pub struct Proc {
    pub(crate) state: Arc<ProcState>,
}

impl Proc {
    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.state.rank
    }

    /// Number of ranks in the world.
    pub fn num_ranks(&self) -> usize {
        self.state.num_ranks
    }

    /// The design configuration this world runs.
    pub fn design(&self) -> &DesignConfig {
        &self.state.design
    }

    /// Live software performance counters of this rank.
    pub fn spc(&self) -> &Arc<SpcSet> {
        &self.state.spc
    }

    /// Snapshot this rank's counters.
    pub fn spc_snapshot(&self) -> SpcSnapshot {
        self.state.spc.snapshot()
    }

    /// Make one explicit progress pass (usually unnecessary: blocking calls
    /// progress internally).
    pub fn progress(&self) -> usize {
        self.state.progress_once()
    }

    /// Whether a communicator was created with
    /// `mpi_assert_allow_overtaking` (paper §IV-D).
    pub fn comm_allows_overtaking(&self, comm: crate::Communicator) -> Result<bool> {
        Ok(self.state.comm_state(comm.id)?.allow_overtaking)
    }

    /// Number of requests currently live on this rank (diagnostics).
    pub fn pending_requests(&self) -> usize {
        self.state.requests.len()
    }

    /// Number of reliability frames this rank has on the wire awaiting
    /// acknowledgment. Always 0 when no fault plan is armed.
    pub fn in_flight_frames(&self) -> usize {
        self.state.reliability.as_ref().map_or(0, |r| r.in_flight())
    }

    /// Resolve a window id into a handle bound to this rank.
    pub fn window(&self, id: WindowId) -> Result<Window> {
        let state = self.state.windows.get(id)?;
        Ok(Window {
            state,
            proc: self.clone(),
        })
    }

    /// Drop this thread's dedicated CRI binding (models a communicating
    /// thread exiting; its instance becomes an orphan other threads must
    /// keep progressing).
    pub fn forget_dedicated_instance(&self) {
        self.state.pool.forget_dedicated();
    }
}

/// Internal state of one rank.
pub(crate) struct ProcState {
    pub(crate) rank: Rank,
    pub(crate) num_ranks: usize,
    pub(crate) design: DesignConfig,
    pub(crate) fabric: Arc<Fabric>,
    pub(crate) pool: Arc<CriPool>,
    pub(crate) engine: ProgressEngine,
    pub(crate) spc: Arc<SpcSet>,
    pub(crate) requests: RequestTable,
    pub(crate) comms: RwLock<HashMap<CommId, Arc<CommState>>>,
    /// Single process-wide matcher for [`MatchMode::Global`] designs.
    pub(crate) global_matcher: Mutex<Matcher>,
    /// Process-wide critical section for big-lock design emulations.
    pub(crate) big_lock: Mutex<()>,
    pub(crate) windows: Arc<WindowRegistry>,
    /// The software-offload runtime, set at build time when the design has
    /// `offload_workers > 0` (the engine's workers hold an `Arc` back to
    /// this state, so it outlives them; `World::drop` runs the shutdown).
    pub(crate) offload: OnceLock<OffloadRuntime>,
    /// Ack/retransmit state, present exactly when the design armed a fault
    /// plan. `None` keeps the chaos-free send path bit-identical.
    pub(crate) reliability: Option<Reliability>,
    /// Progress stall detector, armed with the fault plan.
    pub(crate) watchdog: Option<Watchdog>,
}

impl ProcState {
    pub(crate) fn new(
        rank: Rank,
        num_ranks: usize,
        design: DesignConfig,
        fabric: Arc<Fabric>,
        windows: Arc<WindowRegistry>,
    ) -> Arc<Self> {
        let spc = Arc::new(SpcSet::new());
        let pool = Arc::new(CriPool::new(
            &fabric,
            rank,
            design.num_instances,
            Arc::clone(&spc),
        ));
        let engine = ProgressEngine::new(
            Arc::clone(&pool),
            design.progress,
            fabric.config().extraction_overhead_ns,
        );
        let state = Arc::new(Self {
            rank,
            num_ranks,
            design,
            fabric,
            pool,
            engine,
            spc: Arc::clone(&spc),
            requests: RequestTable::new(),
            comms: RwLock::new(HashMap::new()),
            global_matcher: Mutex::named(Matcher::new(spc, design.allow_overtaking), move || {
                format!("matching.global[rank={rank}]")
            }),
            big_lock: Mutex::named((), move || format!("core.big_lock[rank={rank}]")),
            windows,
            offload: OnceLock::new(),
            reliability: design.chaos.map(|plan| Reliability::new(plan, num_ranks)),
            watchdog: design.chaos.map(|_| Watchdog::new()),
        });
        if design.offload_workers > 0 {
            let config = crate::offload::offload_config_from_env(design.offload_workers);
            let _ = state.offload.set(OffloadRuntime::start(&state, config));
        }
        state
    }

    /// Register a communicator's per-rank state.
    pub(crate) fn register_comm(&self, state: Arc<CommState>) {
        self.comms.write().insert(state.id, state);
    }

    pub(crate) fn comm_state(&self, id: CommId) -> Result<Arc<CommState>> {
        self.comms
            .read()
            .get(&id)
            .cloned()
            .ok_or(MpiError::InvalidComm(id))
    }

    /// Hold the process-global critical section when emulating big-lock
    /// designs; free otherwise.
    pub(crate) fn maybe_big_lock(&self) -> Option<MutexGuard<'_, ()>> {
        match self.design.lock_model {
            LockModel::GlobalCriticalSection => Some(self.big_lock.lock()),
            LockModel::PerInstance => None,
        }
    }

    /// Run `f` holding the appropriate matching lock, charging the time to
    /// the match-time counter (lock acquisition included — contention on
    /// the matching lock is exactly what Table II's match time exposes).
    pub(crate) fn with_matcher<R>(
        &self,
        comm: CommId,
        f: impl FnOnce(&mut Matcher) -> R,
    ) -> Result<R> {
        let timer = fairmpi_spc::ScopedTimer::new(&self.spc, Counter::MatchTimeNanos);
        let result = match self.design.matching {
            MatchMode::Global => {
                let mut m = self.global_matcher.lock();
                f(&mut m)
            }
            MatchMode::PerCommunicator => {
                let cs = self.comm_state(comm)?;
                let mut m = cs.matcher.lock();
                f(&mut m)
            }
        };
        drop(timer);
        Ok(result)
    }

    /// The offload runtime, while it still accepts commands. `None` both
    /// for non-offload designs and after shutdown (callers then take the
    /// direct path, so `Proc` handles stay usable after the world drops).
    pub(crate) fn offload_runtime(&self) -> Option<&OffloadRuntime> {
        self.offload.get().filter(|rt| rt.active())
    }

    /// One raw pass over the progress engine. Offload workers call this
    /// through their backend; application threads must go through
    /// [`ProcState::progress_once`], which keeps them off the engine while
    /// offload is active.
    pub(crate) fn progress_engine(&self) -> usize {
        let mut count = {
            let _big = self.maybe_big_lock();
            self.engine.progress(self.design.assignment, self)
        };
        if self.reliability.is_some() {
            // Outside the big lock: the tick re-takes it per retransmit, and
            // a fatal error handler may panic out of it.
            count += self.reliability_tick();
            if let Some(w) = &self.watchdog {
                w.observe(count > 0, &self.spc);
            }
        }
        count
    }

    /// One progress pass under the configured design. A no-op while offload
    /// is active: the workers own the engine, and an application thread
    /// touching it would bind itself a dedicated CRI the workers rely on.
    pub(crate) fn progress_once(&self) -> usize {
        if self.offload_runtime().is_some() {
            return 0;
        }
        self.progress_engine()
    }

    /// What a blocked application thread does per spin: drain completion
    /// notifications in offload mode, drive the engine otherwise. Returns
    /// the number of events observed (0 = idle, caller may yield).
    pub(crate) fn advance(&self) -> usize {
        match self.offload_runtime() {
            Some(rt) => rt.poll_completions(),
            None => self.progress_once(),
        }
    }

    pub(crate) fn validate_rank(&self, rank: Rank) -> Result<()> {
        if (rank as usize) < self.num_ranks {
            Ok(())
        } else {
            Err(MpiError::InvalidRank(rank as i32))
        }
    }

    // ---- one-sided implementation (called from `Window`) ----

    /// Charge the origin-side cost of moving `len` payload bytes and return
    /// with the acquired instance still locked.
    pub(crate) fn rma_inject(&self, payload_len: usize) -> fairmpi_cri::CriGuard<'_> {
        let k = self.pool.instance_id(self.design.assignment);
        let guard = self.pool.instance(k).lock(&self.spc);
        let cfg = self.fabric.config();
        busy_wait_ns(
            cfg.injection_overhead_ns
                .max(cfg.serialization_time_ns(payload_len)),
        );
        guard
    }

    pub(crate) fn rma_token(win: &WindowState, target: Rank) -> u64 {
        ((win.id.0 as u64) << 32) | target as u64
    }

    pub(crate) fn rma_put(&self, win: &Arc<WindowState>, target: Rank, offset: usize, data: &[u8]) {
        // The pending count rises at initiation time — before any offload
        // enqueue — so a flush issued right behind the put always sees it.
        win.pending_inc(self.rank, target);
        if let Some(rt) = self.offload_runtime() {
            let cmd = fairmpi_offload::Command::Put {
                window: win.id.0 as u64,
                target,
                offset,
                data: data.to_vec(),
                token: 0,
            };
            if rt.submit_silent(cmd).is_ok() {
                return;
            }
            // Refused (fail-fast backpressure or shutdown): apply inline.
        }
        let _big = self.maybe_big_lock();
        let guard = self.rma_inject(data.len());
        win.store_bytes(target, offset, data);
        guard.post_completion(Completion {
            token: Self::rma_token(win, target),
            kind: CompletionKind::RmaDone,
        });
        self.spc.inc(Counter::RmaPuts);
        self.spc.add(Counter::BytesSent, data.len() as u64);
    }

    pub(crate) fn rma_get(
        &self,
        win: &Arc<WindowState>,
        target: Rank,
        offset: usize,
        len: usize,
    ) -> Vec<u8> {
        let _big = self.maybe_big_lock();
        let guard = self.rma_inject(len);
        let data = win.load_bytes(target, offset, len);
        win.pending_inc(self.rank, target);
        guard.post_completion(Completion {
            token: Self::rma_token(win, target),
            kind: CompletionKind::RmaDone,
        });
        self.spc.inc(Counter::RmaGets);
        self.spc.add(Counter::BytesReceived, len as u64);
        data
    }

    pub(crate) fn rma_accumulate(
        &self,
        win: &Arc<WindowState>,
        target: Rank,
        offset: usize,
        lanes: &[u64],
        op: AccumulateOp,
    ) {
        let _big = self.maybe_big_lock();
        let guard = self.rma_inject(lanes.len() * 8);
        win.accumulate_u64(target, offset, lanes, op);
        win.pending_inc(self.rank, target);
        guard.post_completion(Completion {
            token: Self::rma_token(win, target),
            kind: CompletionKind::RmaDone,
        });
        self.spc.inc(Counter::RmaAccumulates);
    }

    pub(crate) fn rma_fetch_op(
        &self,
        win: &Arc<WindowState>,
        target: Rank,
        offset: usize,
        value: u64,
    ) -> u64 {
        let _big = self.maybe_big_lock();
        let guard = self.rma_inject(8);
        let prev = win.accumulate_u64(target, offset, &[value], AccumulateOp::Sum);
        win.pending_inc(self.rank, target);
        guard.post_completion(Completion {
            token: Self::rma_token(win, target),
            kind: CompletionKind::RmaDone,
        });
        self.spc.inc(Counter::RmaAccumulates);
        prev
    }

    pub(crate) fn rma_compare_swap(
        &self,
        win: &Arc<WindowState>,
        target: Rank,
        offset: usize,
        compare: u64,
        swap: u64,
    ) -> u64 {
        let _big = self.maybe_big_lock();
        let guard = self.rma_inject(8);
        let prev = win.compare_swap_u64(target, offset, compare, swap);
        win.pending_inc(self.rank, target);
        guard.post_completion(Completion {
            token: Self::rma_token(win, target),
            kind: CompletionKind::RmaDone,
        });
        self.spc.inc(Counter::RmaAccumulates);
        prev
    }

    /// Progress until this rank's outstanding RMA ops (toward `target`, or
    /// all targets) have drained.
    pub(crate) fn rma_flush(&self, win: &Arc<WindowState>, target: Option<Rank>) {
        if let Some(rt) = self.offload_runtime() {
            // Ship a flush descriptor: the worker registers it and the
            // engine's progress pass completes the request once the pending
            // count drains (FIFO behind every queued put).
            let req = self.requests.new_send(self.rank, 0, None);
            let cmd = fairmpi_offload::Command::Flush {
                window: win.id.0 as u64,
                target,
                token: req.token,
            };
            if rt.submit(cmd).is_ok() {
                let mut idle_spins = 0u32;
                while !req.is_done() {
                    if rt.poll_completions() == 0 {
                        idle_spins += 1;
                        if idle_spins > 64 {
                            std::thread::yield_now();
                        }
                    } else {
                        idle_spins = 0;
                    }
                }
                self.requests.remove(req.token);
                // The backend counted RmaFlushes at completion.
                return;
            }
            self.requests.remove(req.token);
            // Refused: drain inline below (the workers still retire the
            // queued puts; progress_once only yields meanwhile).
        }
        loop {
            let pending = match target {
                Some(t) => win.pending_toward(self.rank, t),
                None => win.pending_total(self.rank),
            };
            if pending == 0 {
                break;
            }
            if self.progress_once() == 0 {
                std::thread::yield_now();
            }
        }
        self.spc.inc(Counter::RmaFlushes);
    }
}
