//! Per-rank runtime state and the public `Proc` handle.

use parking_lot::{Mutex, MutexGuard, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

use fairmpi_cri::CriPool;
use fairmpi_fabric::{busy_wait_ns, CommId, Completion, CompletionKind, Fabric, Rank};
use fairmpi_matching::Matcher;
use fairmpi_progress::ProgressEngine;
use fairmpi_spc::{Counter, SpcSet, SpcSnapshot};

use crate::comm::CommState;
use crate::design::{DesignConfig, LockModel, MatchMode};
use crate::error::{MpiError, Result};
use crate::request::RequestTable;
use crate::rma::{AccumulateOp, Window, WindowId, WindowRegistry, WindowState};

/// Handle to one simulated MPI process. Cloneable and `Send + Sync`; any
/// number of OS threads may drive the same rank concurrently
/// (`MPI_THREAD_MULTIPLE`).
#[derive(Clone)]
pub struct Proc {
    pub(crate) state: Arc<ProcState>,
}

impl Proc {
    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.state.rank
    }

    /// Number of ranks in the world.
    pub fn num_ranks(&self) -> usize {
        self.state.num_ranks
    }

    /// The design configuration this world runs.
    pub fn design(&self) -> &DesignConfig {
        &self.state.design
    }

    /// Live software performance counters of this rank.
    pub fn spc(&self) -> &Arc<SpcSet> {
        &self.state.spc
    }

    /// Snapshot this rank's counters.
    pub fn spc_snapshot(&self) -> SpcSnapshot {
        self.state.spc.snapshot()
    }

    /// Make one explicit progress pass (usually unnecessary: blocking calls
    /// progress internally).
    pub fn progress(&self) -> usize {
        self.state.progress_once()
    }

    /// Whether a communicator was created with
    /// `mpi_assert_allow_overtaking` (paper §IV-D).
    pub fn comm_allows_overtaking(&self, comm: crate::Communicator) -> Result<bool> {
        Ok(self.state.comm_state(comm.id)?.allow_overtaking)
    }

    /// Number of requests currently live on this rank (diagnostics).
    pub fn pending_requests(&self) -> usize {
        self.state.requests.len()
    }

    /// Resolve a window id into a handle bound to this rank.
    pub fn window(&self, id: WindowId) -> Result<Window> {
        let state = self.state.windows.get(id)?;
        Ok(Window {
            state,
            proc: self.clone(),
        })
    }

    /// Drop this thread's dedicated CRI binding (models a communicating
    /// thread exiting; its instance becomes an orphan other threads must
    /// keep progressing).
    pub fn forget_dedicated_instance(&self) {
        self.state.pool.forget_dedicated();
    }
}

/// Internal state of one rank.
pub(crate) struct ProcState {
    pub(crate) rank: Rank,
    pub(crate) num_ranks: usize,
    pub(crate) design: DesignConfig,
    pub(crate) fabric: Arc<Fabric>,
    pub(crate) pool: Arc<CriPool>,
    pub(crate) engine: ProgressEngine,
    pub(crate) spc: Arc<SpcSet>,
    pub(crate) requests: RequestTable,
    pub(crate) comms: RwLock<HashMap<CommId, Arc<CommState>>>,
    /// Single process-wide matcher for [`MatchMode::Global`] designs.
    pub(crate) global_matcher: Mutex<Matcher>,
    /// Process-wide critical section for big-lock design emulations.
    pub(crate) big_lock: Mutex<()>,
    pub(crate) windows: Arc<WindowRegistry>,
}

impl ProcState {
    pub(crate) fn new(
        rank: Rank,
        num_ranks: usize,
        design: DesignConfig,
        fabric: Arc<Fabric>,
        windows: Arc<WindowRegistry>,
    ) -> Arc<Self> {
        let spc = Arc::new(SpcSet::new());
        let pool = Arc::new(CriPool::new(
            &fabric,
            rank,
            design.num_instances,
            Arc::clone(&spc),
        ));
        let engine = ProgressEngine::new(
            Arc::clone(&pool),
            design.progress,
            fabric.config().extraction_overhead_ns,
        );
        Arc::new(Self {
            rank,
            num_ranks,
            design,
            fabric,
            pool,
            engine,
            spc: Arc::clone(&spc),
            requests: RequestTable::new(),
            comms: RwLock::new(HashMap::new()),
            global_matcher: Mutex::new(Matcher::new(spc, design.allow_overtaking)),
            big_lock: Mutex::new(()),
            windows,
        })
    }

    /// Register a communicator's per-rank state.
    pub(crate) fn register_comm(&self, state: Arc<CommState>) {
        self.comms.write().insert(state.id, state);
    }

    pub(crate) fn comm_state(&self, id: CommId) -> Result<Arc<CommState>> {
        self.comms
            .read()
            .get(&id)
            .cloned()
            .ok_or(MpiError::InvalidComm(id))
    }

    /// Hold the process-global critical section when emulating big-lock
    /// designs; free otherwise.
    pub(crate) fn maybe_big_lock(&self) -> Option<MutexGuard<'_, ()>> {
        match self.design.lock_model {
            LockModel::GlobalCriticalSection => Some(self.big_lock.lock()),
            LockModel::PerInstance => None,
        }
    }

    /// Run `f` holding the appropriate matching lock, charging the time to
    /// the match-time counter (lock acquisition included — contention on
    /// the matching lock is exactly what Table II's match time exposes).
    pub(crate) fn with_matcher<R>(
        &self,
        comm: CommId,
        f: impl FnOnce(&mut Matcher) -> R,
    ) -> Result<R> {
        let timer = fairmpi_spc::ScopedTimer::new(&self.spc, Counter::MatchTimeNanos);
        let result = match self.design.matching {
            MatchMode::Global => {
                let mut m = self.global_matcher.lock();
                f(&mut m)
            }
            MatchMode::PerCommunicator => {
                let cs = self.comm_state(comm)?;
                let mut m = cs.matcher.lock();
                f(&mut m)
            }
        };
        drop(timer);
        Ok(result)
    }

    /// One progress pass under the configured design.
    pub(crate) fn progress_once(&self) -> usize {
        let _big = self.maybe_big_lock();
        self.engine.progress(self.design.assignment, self)
    }

    pub(crate) fn validate_rank(&self, rank: Rank) -> Result<()> {
        if (rank as usize) < self.num_ranks {
            Ok(())
        } else {
            Err(MpiError::InvalidRank(rank as i32))
        }
    }

    // ---- one-sided implementation (called from `Window`) ----

    /// Charge the origin-side cost of moving `len` payload bytes and return
    /// with the acquired instance still locked.
    fn rma_inject(&self, payload_len: usize) -> fairmpi_cri::CriGuard<'_> {
        let k = self.pool.instance_id(self.design.assignment);
        let guard = self.pool.instance(k).lock(&self.spc);
        let cfg = self.fabric.config();
        busy_wait_ns(
            cfg.injection_overhead_ns
                .max(cfg.serialization_time_ns(payload_len)),
        );
        guard
    }

    fn rma_token(win: &WindowState, target: Rank) -> u64 {
        ((win.id.0 as u64) << 32) | target as u64
    }

    pub(crate) fn rma_put(&self, win: &Arc<WindowState>, target: Rank, offset: usize, data: &[u8]) {
        let _big = self.maybe_big_lock();
        let guard = self.rma_inject(data.len());
        win.store_bytes(target, offset, data);
        win.pending_inc(self.rank, target);
        guard.post_completion(Completion {
            token: Self::rma_token(win, target),
            kind: CompletionKind::RmaDone,
        });
        self.spc.inc(Counter::RmaPuts);
        self.spc.add(Counter::BytesSent, data.len() as u64);
    }

    pub(crate) fn rma_get(
        &self,
        win: &Arc<WindowState>,
        target: Rank,
        offset: usize,
        len: usize,
    ) -> Vec<u8> {
        let _big = self.maybe_big_lock();
        let guard = self.rma_inject(len);
        let data = win.load_bytes(target, offset, len);
        win.pending_inc(self.rank, target);
        guard.post_completion(Completion {
            token: Self::rma_token(win, target),
            kind: CompletionKind::RmaDone,
        });
        self.spc.inc(Counter::RmaGets);
        self.spc.add(Counter::BytesReceived, len as u64);
        data
    }

    pub(crate) fn rma_accumulate(
        &self,
        win: &Arc<WindowState>,
        target: Rank,
        offset: usize,
        lanes: &[u64],
        op: AccumulateOp,
    ) {
        let _big = self.maybe_big_lock();
        let guard = self.rma_inject(lanes.len() * 8);
        win.accumulate_u64(target, offset, lanes, op);
        win.pending_inc(self.rank, target);
        guard.post_completion(Completion {
            token: Self::rma_token(win, target),
            kind: CompletionKind::RmaDone,
        });
        self.spc.inc(Counter::RmaAccumulates);
    }

    pub(crate) fn rma_fetch_op(
        &self,
        win: &Arc<WindowState>,
        target: Rank,
        offset: usize,
        value: u64,
    ) -> u64 {
        let _big = self.maybe_big_lock();
        let guard = self.rma_inject(8);
        let prev = win.accumulate_u64(target, offset, &[value], AccumulateOp::Sum);
        win.pending_inc(self.rank, target);
        guard.post_completion(Completion {
            token: Self::rma_token(win, target),
            kind: CompletionKind::RmaDone,
        });
        self.spc.inc(Counter::RmaAccumulates);
        prev
    }

    pub(crate) fn rma_compare_swap(
        &self,
        win: &Arc<WindowState>,
        target: Rank,
        offset: usize,
        compare: u64,
        swap: u64,
    ) -> u64 {
        let _big = self.maybe_big_lock();
        let guard = self.rma_inject(8);
        let prev = win.compare_swap_u64(target, offset, compare, swap);
        win.pending_inc(self.rank, target);
        guard.post_completion(Completion {
            token: Self::rma_token(win, target),
            kind: CompletionKind::RmaDone,
        });
        self.spc.inc(Counter::RmaAccumulates);
        prev
    }

    /// Progress until this rank's outstanding RMA ops (toward `target`, or
    /// all targets) have drained.
    pub(crate) fn rma_flush(&self, win: &Arc<WindowState>, target: Option<Rank>) {
        loop {
            let pending = match target {
                Some(t) => win.pending_toward(self.rank, t),
                None => win.pending_total(self.rank),
            };
            if pending == 0 {
                break;
            }
            if self.progress_once() == 0 {
                std::thread::yield_now();
            }
        }
        self.spc.inc(Counter::RmaFlushes);
    }
}
