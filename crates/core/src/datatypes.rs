//! Typed send/receive helpers.
//!
//! The wire carries bytes; these helpers add the little-endian
//! encode/decode boilerplate for the common fixed-width element types, the
//! moral equivalent of passing `MPI_UINT64_T`/`MPI_DOUBLE` datatypes.

use fairmpi_fabric::{Rank, Tag};

use crate::comm::Communicator;
use crate::error::{MpiError, Result};
use crate::proc::Proc;

/// A fixed-width element that can cross the wire.
pub trait Datatype: Copy {
    /// Encoded size in bytes.
    const WIDTH: usize;
    /// Append the little-endian encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decode one element from exactly [`Self::WIDTH`] bytes.
    fn decode(bytes: &[u8]) -> Self;
}

macro_rules! impl_datatype {
    ($($t:ty),*) => {$(
        impl Datatype for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("width checked"))
            }
        }
    )*};
}

impl_datatype!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

/// Encode a slice of elements into wire bytes.
pub fn encode_slice<T: Datatype>(values: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * T::WIDTH);
    for v in values {
        v.encode(&mut out);
    }
    out
}

/// Decode wire bytes into elements; errors if the length is not a whole
/// number of elements.
pub fn decode_slice<T: Datatype>(bytes: &[u8]) -> Result<Vec<T>> {
    if !bytes.len().is_multiple_of(T::WIDTH) {
        return Err(MpiError::Truncated {
            message_len: bytes.len(),
            capacity: (bytes.len() / T::WIDTH) * T::WIDTH,
        });
    }
    Ok(bytes.chunks_exact(T::WIDTH).map(T::decode).collect())
}

impl Proc {
    /// Typed blocking send (`MPI_Send` with a fixed-width datatype).
    pub fn send_slice<T: Datatype>(
        &self,
        values: &[T],
        dst: Rank,
        tag: Tag,
        comm: Communicator,
    ) -> Result<()> {
        self.send(&encode_slice(values), dst, tag, comm)
    }

    /// Typed blocking receive of up to `max_elems` elements.
    pub fn recv_slice<T: Datatype>(
        &self,
        max_elems: usize,
        src: i32,
        tag: Tag,
        comm: Communicator,
    ) -> Result<Vec<T>> {
        let msg = self.recv(max_elems * T::WIDTH, src, tag, comm)?;
        decode_slice(&msg.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::World;

    #[test]
    fn encode_decode_round_trip() {
        let xs = [1u64, u64::MAX, 42];
        let bytes = encode_slice(&xs);
        assert_eq!(bytes.len(), 24);
        assert_eq!(decode_slice::<u64>(&bytes).unwrap(), xs);
        let fs = [1.5f64, -0.25, f64::INFINITY];
        assert_eq!(decode_slice::<f64>(&encode_slice(&fs)).unwrap(), fs);
    }

    #[test]
    fn ragged_length_is_an_error() {
        assert!(decode_slice::<u32>(&[1, 2, 3]).is_err());
        assert!(decode_slice::<u32>(&[]).unwrap().is_empty());
    }

    #[test]
    fn typed_send_recv() {
        let world = World::builder().ranks(2).build();
        let comm = world.comm_world();
        let p0 = world.proc(0);
        let p1 = world.proc(1);
        let t = std::thread::spawn(move || {
            p0.send_slice(&[3.25f64, -1.0, 0.5], 1, 0, comm).unwrap();
        });
        let got: Vec<f64> = p1.recv_slice(8, 0, 0, comm).unwrap();
        t.join().unwrap();
        assert_eq!(got, vec![3.25, -1.0, 0.5]);
    }
}
