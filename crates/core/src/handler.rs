//! The runtime's progress callbacks: what happens to extracted packets and
//! completion events.

use std::time::Instant;

use fairmpi_fabric::{Completion, CompletionKind, Envelope, Packet, PacketKind, Rank};
use fairmpi_matching::MatchEvent;
use fairmpi_progress::ProgressHandler;
use fairmpi_spc::Counter;
use fairmpi_trace as trace;

use crate::design::ErrorHandler;
use crate::error::MpiError;
use crate::proc::ProcState;
use crate::reliability::PendingFrame;
use crate::request::Message;
use crate::rma::WindowId;

impl ProcState {
    /// Inject a packet on an instance chosen by the configured assignment.
    /// Does *not* take the big lock: callers on the progress path already
    /// hold it, callers on the API path take it around the whole call.
    ///
    /// Without a fault plan this is the whole story: inject and post the
    /// local `SendDone`. With one, the packet is first registered with the
    /// reliability layer (assigning its transport sequence number) and its
    /// completion is deferred to the receiver's ack; injection may also be
    /// transiently refused (the CQ-full analog), in which case the frame
    /// just waits for the retransmit tick to carry it.
    pub(crate) fn send_packet(&self, mut packet: Packet, token: u64) {
        let Some(rel) = &self.reliability else {
            let k = self.pool.instance_id(self.design.assignment);
            let guard = self.pool.instance(k).lock(&self.spc);
            guard.send(&self.fabric, packet, token, &self.spc);
            return;
        };
        rel.register(&mut packet, token);
        if self.fabric.chaos().is_some_and(|c| c.decide_refusal()) {
            self.spc.inc(Counter::ChaosRefusals);
            trace::instant("chaos.refusal");
            rel.expire_now(packet.envelope.dst, packet.tseq);
            return;
        }
        if let Err(err) = self.inject_frame(&packet, true) {
            if let Some(frame) = rel.retire(packet.envelope.dst, packet.tseq) {
                self.fail_frame(&frame, err);
            }
        }
    }

    /// Put one reliability frame on the wire via a *living* instance.
    /// `Err(InstanceFailed)` means every instance of this rank is dead.
    fn inject_frame(&self, packet: &Packet, first_attempt: bool) -> crate::error::Result<()> {
        let k = self
            .pool
            .alive_instance_id(self.design.assignment)
            .ok_or(MpiError::InstanceFailed)?;
        let guard = self.pool.instance(k).lock(&self.spc);
        guard.send_frame(&self.fabric, packet.clone(), first_attempt, &self.spc);
        Ok(())
    }

    /// One pass of the retransmit machinery: re-inject every frame past its
    /// deadline, fail every frame past its retry budget. Returns the number
    /// of user-visible completions produced (failed requests count — the
    /// caller's wait unblocks).
    pub(crate) fn reliability_tick(&self) -> usize {
        let Some(rel) = &self.reliability else {
            return 0;
        };
        let work = rel.tick(Instant::now());
        if work.backoff_ns > 0 {
            self.spc.add(Counter::RetryBackoffNanos, work.backoff_ns);
        }
        let mut count = 0;
        for packet in work.retransmit {
            self.spc.inc(Counter::Retransmits);
            trace::instant("reliability.retransmit");
            let _big = self.maybe_big_lock();
            if let Err(err) = self.inject_frame(&packet, false) {
                if let Some(frame) = rel.retire(packet.envelope.dst, packet.tseq) {
                    self.fail_frame(&frame, err);
                    count += 1;
                }
            }
        }
        for frame in work.exhausted {
            self.fail_frame(
                &frame,
                MpiError::RetryExhausted {
                    attempts: frame.attempts,
                },
            );
            count += 1;
        }
        count
    }

    /// Surface a permanently undeliverable frame through the error-handler
    /// machinery: fail the user request it carried (`MPI_ERRORS_RETURN`) or
    /// abort the rank (`MPI_ERRORS_ARE_FATAL`).
    fn fail_frame(&self, frame: &PendingFrame, err: MpiError) {
        if self.design.error_handler == ErrorHandler::ErrorsAreFatal {
            panic!("fatal MPI error on rank {}: {err}", self.rank);
        }
        // Control frames carry their request token inside the kind, not in
        // the completion-queue slot: an RTS that dies must fail the *send*,
        // a CTS that dies must fail the *receive* that granted it.
        let token = match frame.packet.kind {
            PacketKind::RendezvousRts { sender_token, .. } => sender_token,
            PacketKind::RendezvousCts { receiver_token, .. } => receiver_token,
            _ => frame.cq_token,
        };
        if token == 0 {
            return;
        }
        if let Some(req) = self.requests.get(token) {
            req.fail(err);
        }
    }

    /// An ack arrived: retire the frame and complete the send request it
    /// carried. Control frames (RTS/CTS) complete nothing — their user
    /// requests finish through the protocol, the ack only stops retransmit.
    fn handle_ack(&self, peer: Rank, tseq: u64) -> usize {
        let Some(rel) = &self.reliability else {
            return 0;
        };
        let Some(frame) = rel.retire(peer, tseq) else {
            return 0; // duplicate ack, or the frame already failed locally
        };
        let token = match frame.packet.kind {
            PacketKind::RendezvousRts { .. } | PacketKind::RendezvousCts { .. } => 0,
            _ => frame.cq_token,
        };
        if token == 0 {
            return 0;
        }
        let Some(req) = self.requests.get(token) else {
            return 0;
        };
        req.complete_send();
        1
    }

    /// Acknowledge receipt of transport sequence `tseq` back to `src`.
    /// Fire-and-forget: unsequenced, never retransmitted (the peer's
    /// retransmit of the original frame triggers a fresh ack), and charged
    /// to no message counter.
    fn send_ack(&self, dst: Rank, tseq: u64) {
        let ack = Packet::with_kind(
            Envelope {
                src: self.rank,
                dst,
                comm: 0,
                tag: 0,
                seq: 0,
            },
            PacketKind::Ack { tseq },
            Vec::new(),
        );
        // All-instances-dead is ignorable here: the peer keeps retransmitting
        // and eventually fails the frame itself.
        let _ = self.inject_frame(&ack, false);
    }

    /// Route a matchable packet (eager or rendezvous-RTS) through the
    /// matching engine and complete whatever it produced.
    fn handle_matchable(&self, packet: Packet) -> usize {
        let comm = packet.envelope.comm;
        let mut events = Vec::new();
        let delivered = self.with_matcher(comm, |m| m.deliver(packet, &mut events));
        if delivered.is_err() {
            debug_assert!(false, "packet for unknown communicator {comm}");
            return 0;
        }
        let mut count = 0;
        for ev in events {
            count += self.complete_match(ev);
        }
        count
    }

    /// A matching engine event: a posted receive met its message.
    pub(crate) fn complete_match(&self, ev: MatchEvent) -> usize {
        let env = ev.packet.envelope;
        match ev.packet.kind {
            PacketKind::Eager => {
                let Some(req) = self.requests.get(ev.token) else {
                    debug_assert!(false, "matched token {} has no request", ev.token);
                    return 0;
                };
                if ev.packet.payload.len() > req.capacity {
                    req.fail(MpiError::Truncated {
                        message_len: ev.packet.payload.len(),
                        capacity: req.capacity,
                    });
                    return 1;
                }
                self.spc
                    .add(Counter::BytesReceived, ev.packet.payload.len() as u64);
                req.complete_with(Message {
                    data: ev.packet.payload,
                    src: env.src,
                    tag: env.tag,
                });
                1
            }
            PacketKind::RendezvousRts { sender_token, .. } => {
                // Grant the transfer: CTS back to the sender, echoing the
                // user tag so the DATA packet can reconstruct the message
                // identity for the receiver.
                let cts = Packet::with_kind(
                    Envelope {
                        src: self.rank,
                        dst: env.src,
                        comm: env.comm,
                        tag: env.tag,
                        seq: 0,
                    },
                    PacketKind::RendezvousCts {
                        sender_token,
                        receiver_token: ev.token,
                    },
                    Vec::new(),
                );
                self.send_packet(cts, 0);
                // Not yet a user-visible completion.
                0
            }
            _ => {
                debug_assert!(false, "control packet reached the matcher");
                0
            }
        }
    }

    /// Sender side: a CTS arrived, ship the stashed payload.
    fn handle_cts(&self, sender_token: u64, receiver_token: u64, env: Envelope) -> usize {
        let Some(req) = self.requests.get(sender_token) else {
            debug_assert!(false, "CTS for unknown send request {sender_token}");
            return 0;
        };
        let payload = req.stash.lock().take().unwrap_or_default();
        let data = Packet::with_kind(
            Envelope {
                src: self.rank,
                dst: env.src,
                comm: env.comm,
                tag: env.tag,
                seq: 0,
            },
            PacketKind::RendezvousData { receiver_token },
            payload,
        );
        // The DATA packet's send completion carries the sender's token, so
        // draining it completes the user's send request.
        self.send_packet(data, sender_token);
        0
    }

    /// Receiver side: the rendezvous bulk data arrived.
    fn handle_rendezvous_data(&self, receiver_token: u64, packet: Packet) -> usize {
        let Some(req) = self.requests.get(receiver_token) else {
            debug_assert!(false, "DATA for unknown recv request {receiver_token}");
            return 0;
        };
        if packet.payload.len() > req.capacity {
            req.fail(MpiError::Truncated {
                message_len: packet.payload.len(),
                capacity: req.capacity,
            });
            return 1;
        }
        self.spc
            .add(Counter::BytesReceived, packet.payload.len() as u64);
        self.spc.inc(Counter::MessagesReceived);
        req.complete_with(Message {
            data: packet.payload,
            src: packet.envelope.src,
            tag: packet.envelope.tag,
        });
        1
    }
}

impl ProgressHandler for ProcState {
    fn on_packet(&self, packet: Packet) -> usize {
        if let Some(rel) = &self.reliability {
            if let PacketKind::Ack { tseq } = packet.kind {
                return self.handle_ack(packet.envelope.src, tseq);
            }
            if packet.tseq != 0 {
                let fresh = rel.accept(packet.envelope.src, packet.tseq);
                // Always (re-)ack — a duplicate usually means our previous
                // ack was lost, and silence would strand the sender in
                // retransmit until its budget runs out.
                self.send_ack(packet.envelope.src, packet.tseq);
                if !fresh {
                    self.spc.inc(Counter::DuplicatesSuppressed);
                    trace::instant("reliability.duplicate_suppressed");
                    return 0;
                }
            }
        }
        match packet.kind {
            PacketKind::Eager | PacketKind::RendezvousRts { .. } => self.handle_matchable(packet),
            PacketKind::RendezvousCts {
                sender_token,
                receiver_token,
            } => self.handle_cts(sender_token, receiver_token, packet.envelope),
            PacketKind::RendezvousData { receiver_token } => {
                self.handle_rendezvous_data(receiver_token, packet)
            }
            // Without a fault plan nothing emits acks; with one they were
            // intercepted above.
            PacketKind::Ack { .. } => 0,
        }
    }

    fn on_completion(&self, completion: Completion) -> usize {
        match completion.kind {
            CompletionKind::SendDone => {
                // Token 0 marks control packets with no request behind them.
                if completion.token == 0 {
                    return 0;
                }
                let Some(req) = self.requests.get(completion.token) else {
                    // The request may already have been reaped by `wait`.
                    return 0;
                };
                req.complete_send();
                1
            }
            CompletionKind::RmaDone => {
                let window = WindowId((completion.token >> 32) as u32);
                let target = (completion.token & 0xffff_ffff) as Rank;
                match self.windows.get(window) {
                    Ok(win) => {
                        win.pending_dec(self.rank, target);
                        1
                    }
                    Err(_) => {
                        // Window freed with ops in flight; nothing to do.
                        0
                    }
                }
            }
            // Present in the fabric vocabulary for alternative designs;
            // this runtime returns get/fetch results synchronously.
            CompletionKind::RmaGetDone(_) | CompletionKind::RmaFetchDone(_) => 0,
        }
    }
}
