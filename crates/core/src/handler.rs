//! The runtime's progress callbacks: what happens to extracted packets and
//! completion events.

use fairmpi_fabric::{Completion, CompletionKind, Envelope, Packet, PacketKind, Rank};
use fairmpi_matching::MatchEvent;
use fairmpi_progress::ProgressHandler;
use fairmpi_spc::Counter;

use crate::error::MpiError;
use crate::proc::ProcState;
use crate::request::Message;
use crate::rma::WindowId;

impl ProcState {
    /// Inject a packet on an instance chosen by the configured assignment.
    /// Does *not* take the big lock: callers on the progress path already
    /// hold it, callers on the API path take it around the whole call.
    pub(crate) fn send_packet(&self, packet: Packet, token: u64) {
        let k = self.pool.instance_id(self.design.assignment);
        let guard = self.pool.instance(k).lock(&self.spc);
        guard.send(&self.fabric, packet, token, &self.spc);
    }

    /// Route a matchable packet (eager or rendezvous-RTS) through the
    /// matching engine and complete whatever it produced.
    fn handle_matchable(&self, packet: Packet) -> usize {
        let comm = packet.envelope.comm;
        let mut events = Vec::new();
        let delivered = self.with_matcher(comm, |m| m.deliver(packet, &mut events));
        if delivered.is_err() {
            debug_assert!(false, "packet for unknown communicator {comm}");
            return 0;
        }
        let mut count = 0;
        for ev in events {
            count += self.complete_match(ev);
        }
        count
    }

    /// A matching engine event: a posted receive met its message.
    pub(crate) fn complete_match(&self, ev: MatchEvent) -> usize {
        let env = ev.packet.envelope;
        match ev.packet.kind {
            PacketKind::Eager => {
                let Some(req) = self.requests.get(ev.token) else {
                    debug_assert!(false, "matched token {} has no request", ev.token);
                    return 0;
                };
                if ev.packet.payload.len() > req.capacity {
                    req.fail(MpiError::Truncated {
                        message_len: ev.packet.payload.len(),
                        capacity: req.capacity,
                    });
                    return 1;
                }
                self.spc
                    .add(Counter::BytesReceived, ev.packet.payload.len() as u64);
                req.complete_with(Message {
                    data: ev.packet.payload,
                    src: env.src,
                    tag: env.tag,
                });
                1
            }
            PacketKind::RendezvousRts { sender_token, .. } => {
                // Grant the transfer: CTS back to the sender, echoing the
                // user tag so the DATA packet can reconstruct the message
                // identity for the receiver.
                let cts = Packet {
                    envelope: Envelope {
                        src: self.rank,
                        dst: env.src,
                        comm: env.comm,
                        tag: env.tag,
                        seq: 0,
                    },
                    kind: PacketKind::RendezvousCts {
                        sender_token,
                        receiver_token: ev.token,
                    },
                    payload: Vec::new(),
                };
                self.send_packet(cts, 0);
                // Not yet a user-visible completion.
                0
            }
            _ => {
                debug_assert!(false, "control packet reached the matcher");
                0
            }
        }
    }

    /// Sender side: a CTS arrived, ship the stashed payload.
    fn handle_cts(&self, sender_token: u64, receiver_token: u64, env: Envelope) -> usize {
        let Some(req) = self.requests.get(sender_token) else {
            debug_assert!(false, "CTS for unknown send request {sender_token}");
            return 0;
        };
        let payload = req.stash.lock().take().unwrap_or_default();
        let data = Packet {
            envelope: Envelope {
                src: self.rank,
                dst: env.src,
                comm: env.comm,
                tag: env.tag,
                seq: 0,
            },
            kind: PacketKind::RendezvousData { receiver_token },
            payload,
        };
        // The DATA packet's send completion carries the sender's token, so
        // draining it completes the user's send request.
        self.send_packet(data, sender_token);
        0
    }

    /// Receiver side: the rendezvous bulk data arrived.
    fn handle_rendezvous_data(&self, receiver_token: u64, packet: Packet) -> usize {
        let Some(req) = self.requests.get(receiver_token) else {
            debug_assert!(false, "DATA for unknown recv request {receiver_token}");
            return 0;
        };
        if packet.payload.len() > req.capacity {
            req.fail(MpiError::Truncated {
                message_len: packet.payload.len(),
                capacity: req.capacity,
            });
            return 1;
        }
        self.spc
            .add(Counter::BytesReceived, packet.payload.len() as u64);
        self.spc.inc(Counter::MessagesReceived);
        req.complete_with(Message {
            data: packet.payload,
            src: packet.envelope.src,
            tag: packet.envelope.tag,
        });
        1
    }
}

impl ProgressHandler for ProcState {
    fn on_packet(&self, packet: Packet) -> usize {
        match packet.kind {
            PacketKind::Eager | PacketKind::RendezvousRts { .. } => self.handle_matchable(packet),
            PacketKind::RendezvousCts {
                sender_token,
                receiver_token,
            } => self.handle_cts(sender_token, receiver_token, packet.envelope),
            PacketKind::RendezvousData { receiver_token } => {
                self.handle_rendezvous_data(receiver_token, packet)
            }
        }
    }

    fn on_completion(&self, completion: Completion) -> usize {
        match completion.kind {
            CompletionKind::SendDone => {
                // Token 0 marks control packets with no request behind them.
                if completion.token == 0 {
                    return 0;
                }
                let Some(req) = self.requests.get(completion.token) else {
                    // The request may already have been reaped by `wait`.
                    return 0;
                };
                req.complete_send();
                1
            }
            CompletionKind::RmaDone => {
                let window = WindowId((completion.token >> 32) as u32);
                let target = (completion.token & 0xffff_ffff) as Rank;
                match self.windows.get(window) {
                    Ok(win) => {
                        win.pending_dec(self.rank, target);
                        1
                    }
                    Err(_) => {
                        // Window freed with ops in flight; nothing to do.
                        0
                    }
                }
            }
            // Present in the fabric vocabulary for alternative designs;
            // this runtime returns get/fetch results synchronously.
            CompletionKind::RmaGetDone(_) | CompletionKind::RmaFetchDone(_) => 0,
        }
    }
}
