//! Typed `FAIRMPI_*` environment parsing, consolidated.
//!
//! Every tuning knob the runtime (and the bench harness) reads from the
//! process environment goes through an [`EnvKey`], which gives each key a
//! single typed definition and uniform error handling: a value that fails
//! to parse is *ignored* (the default applies — a tuning key must never
//! turn a working world into a panic) but the failure is recorded and
//! reported once, on stderr, at the next `World` construction
//! ([`report_parse_errors`]) instead of silently defaulting.
//!
//! The keys themselves are defined next to the subsystem that consumes
//! them (`offload`, `reliability`, the chaos plan below); this module owns
//! the mechanism.

use std::sync::Mutex;

use fairmpi_chaos::FaultPlan;

/// Types readable from an environment string.
pub trait EnvValue: Sized {
    /// Parse `raw`; `Err` carries a human-readable expectation.
    fn parse_env(raw: &str) -> Result<Self, String>;
}

macro_rules! env_uint {
    ($($t:ty),*) => {$(
        impl EnvValue for $t {
            fn parse_env(raw: &str) -> Result<Self, String> {
                raw.parse()
                    .map_err(|_| format!("expected an unsigned integer, got {raw:?}"))
            }
        }
    )*};
}
env_uint!(u16, u32, u64, usize);

impl EnvValue for String {
    fn parse_env(raw: &str) -> Result<Self, String> {
        Ok(raw.to_string())
    }
}

/// A `rank:context:after` triple (the `FAIRMPI_CHAOS_KILL` grammar).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillTriple {
    /// Victim rank.
    pub rank: u32,
    /// Victim context (CRI index) on that rank.
    pub context: usize,
    /// Packets delivered before the kill fires.
    pub after: u64,
}

impl EnvValue for KillTriple {
    fn parse_env(raw: &str) -> Result<Self, String> {
        let parts: Vec<u64> = raw.split(':').filter_map(|p| p.parse().ok()).collect();
        if parts.len() != 3 || raw.split(':').count() != 3 {
            return Err(format!("expected rank:context:after, got {raw:?}"));
        }
        Ok(KillTriple {
            rank: parts[0] as u32,
            context: parts[1] as usize,
            after: parts[2],
        })
    }
}

/// One typed environment key. Construct as a `const` next to the consumer:
///
/// ```
/// use fairmpi::env::EnvKey;
/// const ITERS: EnvKey<usize> = EnvKey::new("FAIRMPI_ITERS");
/// let iters = ITERS.get_or(40);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EnvKey<T> {
    name: &'static str,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: EnvValue> EnvKey<T> {
    /// Define a key by its environment variable name.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            _marker: std::marker::PhantomData,
        }
    }

    /// The environment variable name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The parsed value, or `None` when unset *or* unparsable (the parse
    /// failure is recorded for [`report_parse_errors`]).
    pub fn get(&self) -> Option<T> {
        let raw = std::env::var(self.name).ok()?;
        match T::parse_env(&raw) {
            Ok(v) => Some(v),
            Err(why) => {
                record_parse_error(format!("{}: {why}", self.name));
                None
            }
        }
    }

    /// The parsed value, or `default` when unset/unparsable.
    pub fn get_or(&self, default: T) -> T {
        self.get().unwrap_or(default)
    }
}

/// Raw (unparsed) read, for subsystems with their own validation pipeline
/// (the MPI_T cvar layer validates at bind time, mirroring `MPI_T`
/// semantics).
pub fn raw(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// Parse any `FAIRMPI_*`-style key by dynamic name — the escape hatch for
/// harness code whose key names are data. Parse failures are recorded like
/// [`EnvKey::get`].
pub fn parse_or<T: EnvValue>(name: &str, default: T) -> T {
    let Some(raw) = std::env::var(name).ok() else {
        return default;
    };
    match T::parse_env(&raw) {
        Ok(v) => v,
        Err(why) => {
            record_parse_error(format!("{name}: {why}"));
            default
        }
    }
}

/// Parse errors accumulated since the last [`report_parse_errors`] call.
static PARSE_ERRORS: Mutex<Vec<String>> = Mutex::new(Vec::new());

fn record_parse_error(message: String) {
    let mut errors = PARSE_ERRORS.lock().unwrap_or_else(|e| e.into_inner());
    if !errors.contains(&message) {
        errors.push(message);
    }
}

/// Report every pending env parse error on stderr, once each. `World`
/// construction calls this after resolving its configuration, so a typo'd
/// knob is visible exactly once per distinct message instead of panicking
/// the run or vanishing into a silent default.
pub fn report_parse_errors() {
    let drained: Vec<String> =
        std::mem::take(&mut *PARSE_ERRORS.lock().unwrap_or_else(|e| e.into_inner()));
    for message in drained {
        eprintln!("fairmpi: ignoring unparsable environment key {message}");
    }
}

/// Pending parse errors without reporting them (test hook).
pub fn pending_parse_errors() -> Vec<String> {
    PARSE_ERRORS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

// ---------------------------------------------------------------------------
// The chaos plan's keys (formerly `FaultPlan::from_env` in fairmpi-chaos)
// ---------------------------------------------------------------------------

const CHAOS_SEED: EnvKey<u64> = EnvKey::new("FAIRMPI_CHAOS_SEED");
const CHAOS_DROP: EnvKey<u16> = EnvKey::new("FAIRMPI_CHAOS_DROP");
const CHAOS_DUP: EnvKey<u16> = EnvKey::new("FAIRMPI_CHAOS_DUP");
const CHAOS_REORDER: EnvKey<u16> = EnvKey::new("FAIRMPI_CHAOS_REORDER");
const CHAOS_REFUSE: EnvKey<u16> = EnvKey::new("FAIRMPI_CHAOS_REFUSE");
const CHAOS_DELAY: EnvKey<u16> = EnvKey::new("FAIRMPI_CHAOS_DELAY");
const CHAOS_DELAY_NS: EnvKey<u64> = EnvKey::new("FAIRMPI_CHAOS_DELAY_NS");
const CHAOS_KILL: EnvKey<KillTriple> = EnvKey::new("FAIRMPI_CHAOS_KILL");
const CHAOS_TIMEOUT_NS: EnvKey<u64> = EnvKey::new("FAIRMPI_CHAOS_TIMEOUT_NS");
const CHAOS_RETRIES: EnvKey<u32> = EnvKey::new("FAIRMPI_CHAOS_RETRIES");

/// Build a fault plan from the `FAIRMPI_CHAOS_*` keys, or `None` when
/// `FAIRMPI_CHAOS_SEED` is unset (chaos disabled).
///
/// Keys: `FAIRMPI_CHAOS_SEED`, `FAIRMPI_CHAOS_DROP` / `_DUP` / `_REORDER`
/// / `_REFUSE` / `_DELAY` (per-mille), `FAIRMPI_CHAOS_DELAY_NS`,
/// `FAIRMPI_CHAOS_KILL` (`rank:context:after`), `FAIRMPI_CHAOS_TIMEOUT_NS`,
/// `FAIRMPI_CHAOS_RETRIES`.
pub fn fault_plan_from_env() -> Option<FaultPlan> {
    let seed = CHAOS_SEED.get()?;
    let mut plan = FaultPlan::seeded(seed)
        .drop(CHAOS_DROP.get_or(0))
        .dup(CHAOS_DUP.get_or(0))
        .reorder(CHAOS_REORDER.get_or(0))
        .refuse(CHAOS_REFUSE.get_or(0));
    if let Some(pm) = CHAOS_DELAY.get() {
        plan = plan.delay(pm, CHAOS_DELAY_NS.get_or(10_000));
    }
    if let Some(kill) = CHAOS_KILL.get() {
        plan = plan.kill(kill.rank, kill.context, kill.after);
    }
    if let Some(ns) = CHAOS_TIMEOUT_NS.get() {
        plan = plan.timeout_ns(ns);
    }
    if let Some(n) = CHAOS_RETRIES.get() {
        plan = plan.max_retries(n);
    }
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairmpi_chaos::KillSpec;

    #[test]
    fn kill_triple_grammar() {
        assert_eq!(
            KillTriple::parse_env("1:0:500"),
            Ok(KillTriple {
                rank: 1,
                context: 0,
                after: 500
            })
        );
        assert!(KillTriple::parse_env("1:0").is_err());
        assert!(KillTriple::parse_env("1:0:500:9").is_err());
        assert!(KillTriple::parse_env("1:x:500").is_err());
    }

    #[test]
    fn chaos_env_round_trip() {
        // This is the only test in the binary that touches FAIRMPI_CHAOS_*
        // keys, so parallel test threads can't observe a half-set plan.
        assert_eq!(fault_plan_from_env(), None, "no seed means chaos off");
        std::env::set_var("FAIRMPI_CHAOS_SEED", "99");
        std::env::set_var("FAIRMPI_CHAOS_DROP", "100");
        std::env::set_var("FAIRMPI_CHAOS_KILL", "1:0:500");
        std::env::set_var("FAIRMPI_CHAOS_RETRIES", "7");
        let plan = fault_plan_from_env().expect("seed set means chaos on");
        std::env::remove_var("FAIRMPI_CHAOS_SEED");
        std::env::remove_var("FAIRMPI_CHAOS_DROP");
        std::env::remove_var("FAIRMPI_CHAOS_KILL");
        std::env::remove_var("FAIRMPI_CHAOS_RETRIES");
        assert_eq!(plan.seed, 99);
        assert_eq!(plan.drop_pm, 100);
        assert_eq!(
            plan.kill,
            Some(KillSpec {
                rank: 1,
                context: 0,
                after: 500
            })
        );
        assert_eq!(plan.max_retries, 7);
        assert!(plan.is_active());
    }

    #[test]
    fn unparsable_values_are_recorded_not_fatal() {
        // Key chosen to be unique to this test (see the note above about
        // env-touching tests staying disjoint).
        std::env::set_var("FAIRMPI_ENVTEST_BOGUS", "not-a-number");
        let key: EnvKey<u64> = EnvKey::new("FAIRMPI_ENVTEST_BOGUS");
        assert_eq!(key.get(), None);
        assert_eq!(key.get_or(42), 42);
        assert_eq!(parse_or("FAIRMPI_ENVTEST_BOGUS", 7usize), 7);
        std::env::remove_var("FAIRMPI_ENVTEST_BOGUS");
        let pending = pending_parse_errors();
        assert!(
            pending.iter().any(|m| m.contains("FAIRMPI_ENVTEST_BOGUS")),
            "parse failure must be recorded, got {pending:?}"
        );
        // Recording dedups: three failed reads above, one message.
        assert_eq!(
            pending
                .iter()
                .filter(|m| m.contains("FAIRMPI_ENVTEST_BOGUS"))
                .count(),
            1
        );
        report_parse_errors();
        assert!(pending_parse_errors()
            .iter()
            .all(|m| !m.contains("FAIRMPI_ENVTEST_BOGUS")));
    }
}
